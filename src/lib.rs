//! # pcpower — power-efficient multiple producer-consumer
//!
//! Umbrella crate for the reproduction of *"Power-efficient Multiple
//! Producer-Consumer"* (Medhat, Bonakdarpour, Fischmeister — IPDPS 2014).
//!
//! The paper's contribution, **PBPL** (periodic batch processing with
//! latching), lives in [`core`]; the substrates it rests on each have
//! their own crate, re-exported here:
//!
//! * [`sim`] — deterministic discrete-event simulation of a multicore
//!   machine (the stand-in for the paper's Arndale board).
//! * [`power`] — C-state ladder, energy accounting and a PowerTop-like
//!   meter (the stand-in for the oscilloscope + PowerTop).
//! * [`trace`] — workload generation, including a synthetic World-Cup-'98
//!   style web log (the stand-in for the paper's dataset \[4\]).
//! * [`queues`] — lock-free SPSC ring, semaphores, bounded queues and the
//!   elastic segmented buffer with a shared global pool (§V-C).
//! * [`stats`] — confidence intervals, correlation and hypothesis tests
//!   used by the evaluation.
//! * [`core`] — slot track, core manager, rate predictors, the ρ cost
//!   function, dynamic resizing, the seven baseline strategies and PBPL
//!   itself, plus the experiment driver.
//! * [`runtime`] — all strategies on real OS threads with wakeup/usage
//!   instrumentation.
//! * [`trace_events`] — deterministic structured event log (bounded
//!   recorder, typed events, FNV digests) consumed by the replay oracle
//!   in `pc-bench`.
//! * [`faults`] — deterministic fault-injection plans: seeded schedules
//!   of typed faults (rate shocks, stalls, slowdowns, timer drift,
//!   dropped wakeups, pool squeezes) at integer sim-time.
//!
//! ## Quick start
//!
//! ```
//! use pcpower::core::{Experiment, StrategyKind};
//! use pcpower::trace::WorldCupConfig;
//! use pcpower::sim::SimDuration;
//!
//! // Two producer-consumer pairs on two cores, PBPL strategy, 100ms run.
//! let trace_cfg = WorldCupConfig::quick_test();
//! let metrics = Experiment::builder()
//!     .pairs(2)
//!     .cores(2)
//!     .duration(SimDuration::from_millis(100))
//!     .strategy(StrategyKind::pbpl_default())
//!     .trace(trace_cfg)
//!     .seed(42)
//!     .run();
//! assert!(metrics.items_consumed > 0);
//! ```

pub use pc_core as core;
pub use pc_faults as faults;
pub use pc_power as power;
pub use pc_queues as queues;
pub use pc_runtime as runtime;
pub use pc_sim as sim;
pub use pc_stats as stats;
pub use pc_trace as trace;
pub use pc_trace_events as trace_events;

//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! Provides the API surface the workspace benches use and actually
//! times the closures (median of `sample_size` samples, one warm-up),
//! printing one line per benchmark. No statistical analysis, HTML
//! reports, or regression detection — this exists so `cargo bench`
//! still measures something useful without the real crate.
//!
//! Like upstream criterion, `cargo bench -- --test` runs every
//! benchmark in test mode: a single sample per benchmark, no timing
//! report — CI's bench-smoke step uses it to keep the benches
//! compiling and panic-free without paying for real measurement.

use std::time::{Duration, Instant};

/// Whether `--test` was passed (upstream: run benches once as tests).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 20, None, f);
        self
    }
}

/// Throughput annotation for per-element/byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        run_bench(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.0);
        run_bench(&id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one call of `f`, recording the sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size + 1),
    };
    if test_mode() {
        // `--test`: one un-timed pass per benchmark, like upstream.
        f(&mut bencher);
        println!("{id:<50} ok (--test)");
        return;
    }
    // One warm-up sample, discarded.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples: closure never called iter)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{id:<50} median {median:>12.3?}{rate}");
}

/// Groups benchmark functions into a runnable set.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for `crossbeam` (see `shims/README.md`). Only the
//! piece this workspace uses: `utils::CachePadded`.

/// Utilities (mirror of `crossbeam::utils`).
pub mod utils {
    /// Pads and aligns a value to 128 bytes so neighbouring fields land
    /// on distinct cache lines (two prefetched 64-byte lines on x86-64,
    /// one 128-byte line on apple-silicon class ARM).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

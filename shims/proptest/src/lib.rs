//! Offline stand-in for `proptest` (see `shims/README.md`).
//!
//! A working property-test runner covering the surface this workspace
//! uses: the `proptest!` macro over `ident in strategy` arguments,
//! integer/float range strategies, `prop_map`, `Just`, tuple and
//! `prop::collection::vec` composition, `prop_oneof!`, `any::<bool>()`
//! and the `prop_assert*` macros. Differences from upstream: failing
//! cases are not shrunk, and generation is deterministic per test name
//! and case index, so re-running a failed test replays the exact same
//! cases.

use std::ops::Range;

/// Runner configuration. Only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG (splitmix64) seeded from test name + case index.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from the property's fully qualified name and case index.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`. Modulo bias is irrelevant at test
    /// scale.
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            0
        } else {
            self.next_u64() % span
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees to support shrinking; this shim generates values directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Boxed generator closure for one `prop_oneof!` alternative.
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between boxed alternatives (`prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Builds from the alternatives' generator closures.
    pub fn new(options: Vec<UnionArm<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        (self.options[idx])(rng)
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Fair-coin strategy for `bool`.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest file conventionally imports.
pub mod prelude {
    /// Alias of the crate root so `prop::collection::vec` resolves.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(
                {
                    let s = $strategy;
                    ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                        $crate::Strategy::generate(&s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
                }
            ),+
        ])
    };
}

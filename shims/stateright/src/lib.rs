//! Offline stand-in for the `stateright` explicit-state model checker.
//!
//! Provides the small slice of the real crate's API this workspace
//! uses: a [`Model`] trait (states, actions, transition function,
//! properties) and a bounded breadth-first [`Checker`] that explores
//! the reachable state space deterministically and reports
//! counterexample paths for violated `always` properties and witness
//! paths for discovered `sometimes` properties.
//!
//! Differences from the real crate, by design:
//!
//! * exploration is single-threaded and fully deterministic — states
//!   are visited in BFS order, successors in the order `actions`
//!   pushes them, so a violation report is stable across runs and
//!   platforms (the same determinism contract the rest of the
//!   workspace lives by);
//! * the frontier is bounded by `max_depth` and `max_states` instead
//!   of running to closure by default — the callers here check small
//!   protocol models where a bounded sweep is the point;
//! * no `eventually` properties, no symmetry reduction, no UI.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeSet;
use std::fmt::Debug;

/// A transition system to check: states, enabled actions, a (partial)
/// transition function, and the properties that must hold.
pub trait Model: Sized {
    /// State of the system. `Ord` keeps the visited set deterministic
    /// (a `BTreeSet`, not a hash set — no iteration-order surprises).
    type State: Clone + Ord;
    /// One enabled transition out of a state.
    type Action: Clone + Debug;

    /// Initial states of the system.
    fn init_states(&self) -> Vec<Self::State>;

    /// Pushes every action enabled in `state` onto `actions`, in a
    /// deterministic order.
    fn actions(&self, state: &Self::State, actions: &mut Vec<Self::Action>);

    /// Applies `action` to `state`; `None` means the action turned out
    /// to be disabled (guards may be cheaper to re-check here).
    fn next_state(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;

    /// The properties the checker evaluates at every reachable state.
    fn properties(&self) -> Vec<Property<Self>>;
}

/// What a property claims about the reachable state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The condition holds in every reachable state; one failing state
    /// is a violation (reported with its path).
    Always,
    /// The condition holds in at least one reachable state; never
    /// finding one within the bound is a violation.
    Sometimes,
}

/// A named condition over model states.
pub struct Property<M: Model> {
    /// `always` or `sometimes`.
    pub expectation: Expectation,
    /// Stable name used in reports and assertions.
    pub name: &'static str,
    /// The condition itself.
    pub condition: fn(&M, &M::State) -> bool,
}

impl<M: Model> Property<M> {
    /// An `always` property: `condition` must hold in every reachable
    /// state.
    pub fn always(name: &'static str, condition: fn(&M, &M::State) -> bool) -> Self {
        Property {
            expectation: Expectation::Always,
            name,
            condition,
        }
    }

    /// A `sometimes` property: some reachable state must satisfy
    /// `condition`.
    pub fn sometimes(name: &'static str, condition: fn(&M, &M::State) -> bool) -> Self {
        Property {
            expectation: Expectation::Sometimes,
            name,
            condition,
        }
    }
}

/// One property failure: an `always` property that some reachable
/// state falsifies, or a `sometimes` property no explored state
/// satisfied.
pub struct Violation<M: Model> {
    /// Name of the violated property.
    pub property: &'static str,
    /// Whether the property was `always` or `sometimes`.
    pub expectation: Expectation,
    /// For `always` violations: the actions leading from an initial
    /// state to the failing state, in order. Empty for an initial-state
    /// violation and for undiscovered `sometimes` properties.
    pub path: Vec<M::Action>,
    /// For `always` violations: the failing state itself. `None` for
    /// undiscovered `sometimes` properties.
    pub state: Option<M::State>,
}

impl<M: Model> std::fmt::Debug for Violation<M>
where
    M::State: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Violation")
            .field("property", &self.property)
            .field("expectation", &self.expectation)
            .field("path", &self.path)
            .field("state", &self.state)
            .finish()
    }
}

/// Outcome of one bounded BFS sweep.
pub struct CheckResult<M: Model> {
    /// Distinct states visited.
    pub states_explored: usize,
    /// Deepest BFS layer reached (initial states are depth 0).
    pub depth_reached: usize,
    /// Whether the sweep closed the reachable space within its bounds
    /// (`false` means the frontier was cut by `max_depth` or
    /// `max_states`, so `sometimes` non-discovery is inconclusive).
    pub complete: bool,
    /// Every property failure, in property order.
    pub violations: Vec<Violation<M>>,
}

impl<M: Model> CheckResult<M> {
    /// Whether every property held over the explored space.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violation of `name`, if any.
    pub fn violation(&self, name: &str) -> Option<&Violation<M>> {
        self.violations.iter().find(|v| v.property == name)
    }
}

/// Bounded breadth-first explicit-state checker.
pub struct Checker {
    max_depth: usize,
    max_states: usize,
}

impl Checker {
    /// A checker bounded to `max_depth` BFS layers and `max_states`
    /// distinct states.
    pub fn bounded(max_depth: usize, max_states: usize) -> Self {
        Checker {
            max_depth,
            max_states,
        }
    }

    /// Explores `model`'s reachable states breadth-first and evaluates
    /// every property at every visited state. `always` violations stop
    /// the search for *that property* at the first (shallowest) failing
    /// state — its action path is reported — while exploration continues
    /// for the remaining properties.
    pub fn check<M: Model>(&self, model: &M) -> CheckResult<M> {
        let properties = model.properties();
        // Per-property bookkeeping: first always-failure (path + failing
        // state), any sometimes-witness.
        type Failure<M> = (Vec<<M as Model>::Action>, <M as Model>::State);
        let mut always_failed: Vec<Option<Failure<M>>> = properties.iter().map(|_| None).collect();
        let mut sometimes_found: Vec<bool> = properties.iter().map(|_| false).collect();

        // BFS over distinct states; each queue entry remembers its
        // parent index and incoming action so violation paths can be
        // reconstructed without storing a path per state.
        struct Node<M: Model> {
            state: M::State,
            parent: Option<usize>,
            action: Option<M::Action>,
            depth: usize,
        }
        let mut nodes: Vec<Node<M>> = Vec::new();
        let mut seen: BTreeSet<M::State> = BTreeSet::new();
        let mut complete = true;
        let mut depth_reached = 0;

        for state in model.init_states() {
            if seen.insert(state.clone()) {
                if nodes.len() >= self.max_states {
                    complete = false;
                    break;
                }
                nodes.push(Node {
                    state,
                    parent: None,
                    action: None,
                    depth: 0,
                });
            }
        }

        let path_to = |nodes: &[Node<M>], mut i: usize| -> Vec<M::Action> {
            let mut path = Vec::new();
            while let (Some(a), Some(p)) = (&nodes[i].action, nodes[i].parent) {
                path.push(a.clone());
                i = p;
            }
            path.reverse();
            path
        };

        let mut cursor = 0;
        let mut scratch: Vec<M::Action> = Vec::new();
        while cursor < nodes.len() {
            let depth = nodes[cursor].depth;
            depth_reached = depth_reached.max(depth);

            for (p, property) in properties.iter().enumerate() {
                let holds = (property.condition)(model, &nodes[cursor].state);
                match property.expectation {
                    Expectation::Always => {
                        if !holds && always_failed[p].is_none() {
                            always_failed[p] =
                                Some((path_to(&nodes, cursor), nodes[cursor].state.clone()));
                        }
                    }
                    Expectation::Sometimes => {
                        if holds {
                            sometimes_found[p] = true;
                        }
                    }
                }
            }

            if depth >= self.max_depth {
                // Unexpanded frontier: the sweep is bounded, not closed.
                complete = false;
                cursor += 1;
                continue;
            }
            scratch.clear();
            model.actions(&nodes[cursor].state, &mut scratch);
            for action in &scratch {
                let Some(next) = model.next_state(&nodes[cursor].state, action) else {
                    continue;
                };
                if !seen.insert(next.clone()) {
                    continue;
                }
                if nodes.len() >= self.max_states {
                    complete = false;
                    break;
                }
                nodes.push(Node {
                    state: next,
                    parent: Some(cursor),
                    action: Some(action.clone()),
                    depth: depth + 1,
                });
            }
            cursor += 1;
        }

        let mut violations = Vec::new();
        for (p, property) in properties.iter().enumerate() {
            match property.expectation {
                Expectation::Always => {
                    if let Some((path, state)) = always_failed[p].take() {
                        violations.push(Violation {
                            property: property.name,
                            expectation: Expectation::Always,
                            path,
                            state: Some(state),
                        });
                    }
                }
                Expectation::Sometimes => {
                    if !sometimes_found[p] {
                        violations.push(Violation {
                            property: property.name,
                            expectation: Expectation::Sometimes,
                            path: Vec::new(),
                            state: None,
                        });
                    }
                }
            }
        }

        CheckResult {
            states_explored: nodes.len(),
            depth_reached,
            complete,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that increments up to `cap`; optionally with a "bug"
    /// that lets it jump past the cap.
    struct Counter {
        cap: u32,
        buggy: bool,
    }

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Inc,
        Jump,
    }

    impl Model for Counter {
        type State = u32;
        type Action = Op;

        fn init_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn actions(&self, state: &u32, actions: &mut Vec<Op>) {
            if *state < self.cap {
                actions.push(Op::Inc);
            }
            if self.buggy {
                actions.push(Op::Jump);
            }
        }

        fn next_state(&self, state: &u32, action: &Op) -> Option<u32> {
            match action {
                Op::Inc => Some(state + 1),
                Op::Jump => Some(state + 10),
            }
        }

        fn properties(&self) -> Vec<Property<Self>> {
            vec![
                Property::always("bounded", |m, s| *s <= m.cap),
                Property::sometimes("reaches cap", |m, s| *s == m.cap),
            ]
        }
    }

    #[test]
    fn clean_model_passes_and_discovers() {
        let result = Checker::bounded(10, 1000).check(&Counter {
            cap: 3,
            buggy: false,
        });
        assert!(result.is_clean(), "unexpected violations");
        assert!(result.complete);
        assert_eq!(result.states_explored, 4);
        assert_eq!(result.depth_reached, 3);
    }

    #[test]
    fn buggy_model_yields_shortest_counterexample() {
        let result = Checker::bounded(10, 1000).check(&Counter {
            cap: 3,
            buggy: true,
        });
        let v = result.violation("bounded").expect("violation found");
        assert_eq!(v.expectation, Expectation::Always);
        // One Jump from the initial state is the shallowest failure.
        assert_eq!(v.path.len(), 1);
        assert_eq!(v.state, Some(10));
    }

    #[test]
    fn undiscovered_sometimes_is_reported() {
        let result = Checker::bounded(1, 1000).check(&Counter {
            cap: 3,
            buggy: false,
        });
        assert!(!result.complete, "depth bound cut the frontier");
        assert!(result.violation("reaches cap").is_some());
    }

    #[test]
    fn state_bound_marks_incomplete() {
        let result = Checker::bounded(100, 2).check(&Counter {
            cap: 50,
            buggy: false,
        });
        assert!(!result.complete);
        assert_eq!(result.states_explored, 2);
    }
}

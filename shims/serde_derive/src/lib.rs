//! Offline stand-in for the real `serde_derive` (see `shims/README.md`).
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! shim's `Value` tree. Supports exactly the shapes this workspace
//! derives on: non-generic named-field structs, tuple structs, unit
//! structs, and enums with unit / named-field / tuple variants. No
//! `#[serde(...)]` attributes (none are used in-tree).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Shape {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => {
            let expr = ser_fields_expr(fields, &SelfAccess);
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| ser_variant_arm(name, v, fields))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => {
            let expr = de_fields_expr(name, &format!("{name} "), fields, "v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({expr})\n\
                 }} }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    let expr = match fields {
                        Fields::Unit => format!("{name}::{v}"),
                        _ => de_fields_expr(name, &format!("{name}::{v} "), fields, "inner"),
                    };
                    format!("{v:?} => ::std::result::Result::Ok({expr}),\n")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(other, {name:?})),\n\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (key, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match key.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(other, {name:?})),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::expected({name:?})),\n\
                 }} }} }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

/// How serialisation code reaches the fields: `&self.f` for structs,
/// bound names for enum-variant match arms.
struct SelfAccess;

impl SelfAccess {
    fn named(&self, field: &str) -> String {
        format!("&self.{field}")
    }
    fn indexed(&self, index: usize) -> String {
        format!("&self.{index}")
    }
}

fn ser_fields_expr(fields: &Fields, access: &SelfAccess) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let entries: String = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value({})),",
                        access.named(f)
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Fields::Tuple(1) => format!("::serde::Serialize::to_value({})", access.indexed(0)),
        Fields::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value({}),", access.indexed(i)))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
    }
}

fn ser_variant_arm(enum_name: &str, variant: &str, fields: &Fields) -> String {
    let tag = |inner: String| {
        format!(
            "::serde::Value::Object(::std::vec![\
             (::std::string::String::from({variant:?}), {inner})])"
        )
    };
    match fields {
        Fields::Unit => format!(
            "{enum_name}::{variant} => \
             ::serde::Value::Str(::std::string::String::from({variant:?})),\n"
        ),
        Fields::Named(names) => {
            let binds = names.join(", ");
            let entries: String = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value({f})),"
                    )
                })
                .collect();
            let inner = format!("::serde::Value::Object(::std::vec![{entries}])");
            format!("{enum_name}::{variant} {{ {binds} }} => {},\n", tag(inner))
        }
        Fields::Tuple(1) => format!(
            "{enum_name}::{variant}(f0) => {},\n",
            tag("::serde::Serialize::to_value(f0)".to_string())
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            let inner = format!("::serde::Value::Array(::std::vec![{items}])");
            format!(
                "{enum_name}::{variant}({}) => {},\n",
                binds.join(", "),
                tag(inner)
            )
        }
    }
}

/// Expression constructing `ctor ...` (e.g. `Row ` or `StrategyKind::Pbp `)
/// from the `Value` named `src`.
fn de_fields_expr(type_name: &str, ctor: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Unit => ctor.trim_end().to_string(),
        Fields::Named(names) => {
            let inits: String = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::expect_field(fields, {f:?}, {type_name:?})?)?,"
                    )
                })
                .collect();
            format!(
                "{{ let fields = ::serde::expect_object({src}, {type_name:?})?; \
                 {ctor}{{ {inits} }} }}"
            )
        }
        Fields::Tuple(1) => {
            format!(
                "{}(::serde::Deserialize::from_value({src})?)",
                ctor.trim_end()
            )
        }
        Fields::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "{{ let items = ::serde::expect_array({src}, {n}, {type_name:?})?; \
                 {}({items}) }}",
                ctor.trim_end()
            )
        }
    }
}

// ---------------------------------------------------------------------
// Token-stream parsing (no syn): just enough for the shapes above.
// ---------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly pub(crate): consume optional group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(iter.next(), "struct name");
                return Shape::Struct {
                    name,
                    fields: parse_struct_body(&mut iter),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(iter.next(), "enum name");
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Shape::Enum {
                            name,
                            variants: parse_variants(g.stream()),
                        };
                    }
                    other => panic!("serde_derive: expected enum body, found {other:?}"),
                }
            }
            Some(other) => panic!("serde_derive: unexpected token {other:?}"),
            None => panic!("serde_derive: ran out of tokens before struct/enum"),
        }
    }
}

fn expect_ident(tt: Option<TokenTree>, what: &str) -> String {
    match tt {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected {what}, found {other:?}"),
    }
}

fn parse_struct_body(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Fields {
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim does not support generic types")
        }
        other => panic!("serde_derive: expected struct body, found {other:?}"),
    }
}

/// Field names of a `{ ... }` body; skips attributes, visibility, and
/// the type after each `:` (tracking `<`/`>` depth so commas inside
/// generic arguments don't split fields; parenthesised types are opaque
/// groups, so their commas are invisible here).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected ':' after field, found {other:?}"),
                }
                let mut depth = 0i64;
                for tt in iter.by_ref() {
                    if let TokenTree::Punct(p) = &tt {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => break,
                            _ => {}
                        }
                    }
                }
            }
            Some(other) => panic!("serde_derive: unexpected field token {other:?}"),
        }
    }
    fields
}

/// Number of fields in a `( ... )` tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i64;
    let mut pending = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    count + usize::from(pending)
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let fields = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream()));
                        iter.next();
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(count_tuple_fields(g.stream()));
                        iter.next();
                        f
                    }
                    _ => Fields::Unit,
                };
                variants.push((name, fields));
            }
            Some(other) => panic!("serde_derive: unexpected variant token {other:?}"),
        }
    }
    variants
}

//! Offline stand-in for `serde_json` (see `shims/README.md`).
//!
//! Deterministic JSON writer and a recursive-descent parser over the
//! serde shim's ordered [`Value`]. Output formatting mirrors
//! `serde_json`'s conventions (2-space pretty indent, non-finite floats
//! as `null`) and depends only on the value — identical values always
//! print identical bytes, which the suite determinism gate relies on.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialisation/deserialisation error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialises `value` to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

// -- writer ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats and
                // round-trips exactly, like serde_json's ryu output.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline_indent(out, level);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline_indent(out, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("bad \\u code point".into()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
            ("c".into(), Value::Str("x\n\"y\"".into())),
            ("d".into(), Value::Int(-3)),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn non_finite_floats_print_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn pretty_format_matches_serde_json_shape() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::UInt(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }
}

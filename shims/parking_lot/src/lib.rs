//! Offline stand-in for `parking_lot` (see `shims/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly and condition-variable waits take
//! `&mut MutexGuard`. Poisoned locks are recovered transparently (a
//! panicking holder already aborts the test that cared).

use std::sync::PoisonError;
use std::time::Instant;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside a condition-variable wait.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                Some(MutexGuard(Some(poisoned.into_inner())))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified (spurious wakeups possible, as upstream).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

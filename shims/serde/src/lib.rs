//! Offline stand-in for `serde` (see `shims/README.md` for why).
//!
//! The real crates are unavailable in this build environment, so this
//! shim provides the exact surface the workspace uses: `Serialize` /
//! `Deserialize` traits (plus same-named derive macros under the
//! `derive` feature) over an ordered JSON [`Value`] tree. Object keys
//! keep insertion order, so serialisation is deterministic — a property
//! the suite determinism CI gate depends on.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An ordered JSON value. Objects preserve insertion order (no hashing),
/// keeping output byte-deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (u64 exact).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialisation error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X" error.
    pub fn expected(what: &str) -> DeError {
        DeError(format!("expected {what}"))
    }

    /// Unknown enum variant error.
    pub fn unknown_variant(got: &str, enum_name: &str) -> DeError {
        DeError(format!("unknown variant `{got}` for {enum_name}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types serialisable into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// Types reconstructable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// -- derive support helpers (stable API for generated code) ------------

/// Expects `v` to be an object; used by derived code.
pub fn expect_object<'a>(v: &'a Value, type_name: &str) -> Result<&'a [(String, Value)], DeError> {
    v.as_object()
        .ok_or_else(|| DeError(format!("expected object for {type_name}")))
}

/// Looks up a field in derived struct deserialisation.
pub fn expect_field<'a>(
    fields: &'a [(String, Value)],
    name: &str,
    type_name: &str,
) -> Result<&'a Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}` for {type_name}")))
}

/// Expects an array of exactly `len` items; used by derived code.
pub fn expect_array<'a>(v: &'a Value, len: usize, type_name: &str) -> Result<&'a [Value], DeError> {
    match v.as_array() {
        Some(items) if items.len() == len => Ok(items),
        _ => Err(DeError(format!(
            "expected {len}-element array for {type_name}"
        ))),
    }
}

// -- primitive impls ---------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t))),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t))),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $i; 1 })+;
                match v.as_array() {
                    Some(items) if items.len() == N => {
                        Ok(($($t::from_value(&items[$i])?,)+))
                    }
                    _ => Err(DeError::expected("tuple array")),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

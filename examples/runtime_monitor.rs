//! Runtime-monitoring scenario — the paper's §I example: "events
//! produced by the environment or internal system processes are consumed
//! and processed by a runtime monitor", and §VIII names runtime
//! monitoring as a target domain.
//!
//! A monitor must bound how stale an observed event may be before it is
//! checked. This example sweeps PBPL's maximum response latency and maps
//! out the power/freshness trade-off a monitoring deployment would tune,
//! comparing against the always-fresh (Mutex) monitor.
//!
//! ```sh
//! cargo run --release --example runtime_monitor
//! ```

use pcpower::core::{Experiment, PbplConfig, StrategyKind};
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::WorldCupConfig;

fn event_stream() -> WorldCupConfig {
    // Sporadic event bursts from the monitored system.
    WorldCupConfig {
        horizon: SimTime::from_secs(10),
        mean_rate: 900.0,
        diurnal_swing: 4.0,
        diurnal_cycles: 2.0,
        ..WorldCupConfig::paper_default()
    }
}

fn main() {
    println!("runtime monitor: 4 monitored event streams, 2 cores, 10 s, ~900 events/s each\n");

    let run = |strategy: StrategyKind| {
        Experiment::builder()
            .pairs(4)
            .cores(2)
            .duration(SimDuration::from_secs(10))
            .buffer_capacity(50)
            .trace(event_stream())
            .strategy(strategy)
            .seed(11)
            .run()
    };

    let mutex = run(StrategyKind::Mutex);
    println!(
        "always-fresh monitor (Mutex):  {:>7.1} mW, mean staleness {}, max {}\n",
        mutex.extra_power_mw(),
        mutex.mean_latency(),
        mutex.max_latency()
    );

    println!(
        "{:>14} | {:>10} | {:>12} | {:>12} | {:>12}",
        "latency bound", "power mW", "mean stale", "max stale", "vs Mutex"
    );
    for bound_ms in [10u64, 25, 50, 100, 250] {
        let cfg = PbplConfig {
            slot: SimDuration::from_millis((bound_ms / 4).max(5)),
            max_latency: SimDuration::from_millis(bound_ms),
            ..PbplConfig::default()
        };
        let m = run(StrategyKind::Pbpl(cfg));
        println!(
            "{:>11} ms | {:>10.1} | {:>12} | {:>12} | {:>+10.1}%",
            bound_ms,
            m.extra_power_mw(),
            format!("{}", m.mean_latency()),
            format!("{}", m.max_latency()),
            (m.extra_power_mw() / mutex.extra_power_mw() - 1.0) * 100.0,
        );
    }

    println!(
        "\nBatching monitors trade bounded staleness for power: pick the loosest bound \
         the property being monitored tolerates."
    );
}

//! Device-driver scenario — the paper's first §I example: "Operating
//! systems primitives … read and consume data received from I/O devices,
//! e.g., in device drivers."
//!
//! A NIC delivers packets; the driver can take an interrupt per packet
//! train (the Mutex-like baseline), poll on a fixed NAPI-style period
//! (SPBP), wake on a full RX ring (BP), or run PBPL across several queues
//! sharing the CPU — interrupt coalescing with predicted, latched wakeup
//! slots. Power is the battery cost of RX interrupts on an idle-ish
//! mobile device.
//!
//! ```sh
//! cargo run --release --example device_driver
//! ```

use pcpower::core::{Experiment, PbplConfig, StrategyKind};
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::WorldCupConfig;

/// Packet arrivals on a mostly-idle device: long silences, short bursts
/// (push notifications, keep-alives, a page load).
fn packet_trace() -> WorldCupConfig {
    WorldCupConfig {
        horizon: SimTime::from_secs(10),
        mean_rate: 400.0,
        diurnal_swing: 1.5,
        diurnal_cycles: 0.5,
        bursts: 6,
        burst_amplitude: 12.0, // a page load is a big multiple of idle chatter
        burst_decay: SimDuration::from_millis(250),
        cluster_size_mean: 30.0, // packets per burst train
        cluster_gap: SimDuration::from_micros(50),
        ..WorldCupConfig::paper_default()
    }
}

fn main() {
    println!(
        "NIC RX path: 4 queues, 2 CPUs, 10 s, ~400 pkt/s/queue idle with 12x page-load bursts\n"
    );
    let run = |strategy: StrategyKind| {
        Experiment::builder()
            .pairs(4) // RX queues
            .cores(2)
            .duration(SimDuration::from_secs(10))
            .buffer_capacity(64) // ring descriptors per queue
            .trace(packet_trace())
            .strategy(strategy)
            .seed(17)
            .run()
    };

    println!(
        "{:>22} | {:>9} | {:>10} | {:>11} | {:>11}",
        "driver model", "power mW", "IRQ-ish/s", "mean lat", "p99 lat"
    );
    let configs: Vec<(&str, StrategyKind)> = vec![
        ("per-train interrupts", StrategyKind::Mutex),
        ("ring-full interrupt", StrategyKind::Bp),
        (
            "NAPI-style 5ms poll",
            StrategyKind::Spbp {
                period: SimDuration::from_millis(5),
            },
        ),
        (
            "PBPL coalescing",
            StrategyKind::Pbpl(PbplConfig {
                slot: SimDuration::from_millis(10),
                max_latency: SimDuration::from_millis(40),
                ..PbplConfig::default()
            }),
        ),
    ];

    let mut results = Vec::new();
    for (label, strategy) in configs {
        let m = run(strategy);
        println!(
            "{:>22} | {:>9.1} | {:>10.1} | {:>11} | {:>11}",
            label,
            m.extra_power_mw(),
            m.wakeups_per_sec(),
            format!("{}", m.mean_latency()),
            format!("{}", m.latency_percentile(99.0).unwrap_or_default()),
        );
        assert!(m.all_items_consumed());
        results.push((label, m));
    }

    let (_, irq) = &results[0];
    let (_, pbpl) = &results[3];
    println!(
        "\nPBPL coalescing vs per-train interrupts: {:+.1}% power with a {} p99 delivery bound —",
        (pbpl.extra_power_mw() / irq.extra_power_mw() - 1.0) * 100.0,
        pbpl.latency_percentile(99.0).unwrap_or_default(),
    );
    println!("the §VIII 'operating system kernels' future-work direction, sketched.");
}

//! The strategies on real OS threads: replay a bursty trace in wall-clock
//! time and count *actual* thread wakeups and CPU busy time, strategy by
//! strategy.
//!
//! This is the `pc-runtime` crate in action — the same algorithms the
//! simulator measures for power, demonstrated as runnable concurrent
//! code with PBPL's core-manager threads arming real timers.
//!
//! ```sh
//! cargo run --release --example native_threads
//! ```

use pcpower::core::StrategyKind;
use pcpower::runtime::NativeHarness;
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::WorldCupConfig;

fn main() {
    let trace = WorldCupConfig {
        horizon: SimTime::from_secs(2),
        mean_rate: 3_000.0,
        ..WorldCupConfig::quick_test()
    };
    println!("native run: 4 pairs, 2 s wall time, ~3000 items/s/pair\n");
    println!(
        "{:>6} | {:>9} | {:>11} | {:>12} | {:>11} | {:>10}",
        "impl", "items", "wakeups/s", "usage ms/s", "mean lat", "sched/ovfl"
    );

    let strategies = vec![
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::Spbp {
            period: SimDuration::from_millis(10),
        },
        StrategyKind::pbpl_default(),
    ];

    for strategy in strategies {
        let report = NativeHarness {
            strategy,
            pairs: 4,
            cores: 2,
            duration: SimDuration::from_secs(2),
            time_scale: 1.0,
            trace: trace.clone(),
            buffer_capacity: 25,
            seed: 42,
            ..NativeHarness::default()
        }
        .run();
        let sched: u64 = report.pairs.iter().map(|p| p.scheduled).sum();
        let ovfl: u64 = report.pairs.iter().map(|p| p.overflows).sum();
        println!(
            "{:>6} | {:>9} | {:>11.1} | {:>12.2} | {:>11} | {:>5}/{:<5}",
            report.strategy,
            report.items_consumed(),
            report.wakeups_per_sec(),
            report.usage_ms_per_sec(),
            format!("{}", report.mean_latency()),
            sched,
            ovfl,
        );
        assert_eq!(report.items_produced(), report.items_consumed());
    }

    println!("\nwakeups here are measured at the blocking primitives of real threads —");
    println!("the same quantity PowerTop attributes per process in the paper's setup.");
}

//! Web-server scenario — the paper's motivating §I example: "HTTP
//! requests produced by web browsers are stored in buffers that are
//! consumed and processed by multiple threads in a web server."
//!
//! Simulates a flash-crowd day (a match kick-off in WC'98 terms) across
//! worker shards and shows how each §III strategy — and PBPL — rides it:
//! power, wakeups, latency, and how PBPL's elastic buffers move capacity
//! toward the shard under the crowd.
//!
//! ```sh
//! cargo run --release --example web_server
//! ```

use pcpower::core::{Experiment, RunMetrics, StrategyKind};
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::WorldCupConfig;

fn flash_crowd_day() -> WorldCupConfig {
    WorldCupConfig {
        horizon: SimTime::from_secs(10),
        mean_rate: 2_500.0,
        // One big kick-off surge on a quiet diurnal background.
        diurnal_swing: 2.0,
        diurnal_cycles: 0.5,
        bursts: 3,
        burst_amplitude: 6.0,
        burst_decay: SimDuration::from_millis(900),
        ..WorldCupConfig::paper_default()
    }
}

fn run(strategy: StrategyKind) -> RunMetrics {
    Experiment::builder()
        .pairs(8) // 8 listener shards
        .cores(2)
        .duration(SimDuration::from_secs(10))
        .buffer_capacity(50)
        .trace(flash_crowd_day())
        .strategy(strategy)
        .seed(7)
        .run()
}

fn main() {
    println!("flash-crowd web server: 8 shards, 2 cores, 10 s, ~2500 req/s/shard with 6x surges\n");
    println!(
        "{:>6} | {:>10} | {:>10} | {:>11} | {:>11} | {:>9}",
        "impl", "power mW", "wakeups/s", "p-lat mean", "p-lat max", "avg buf"
    );

    let strategies = vec![
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::pbpl_default(),
    ];
    let mut results = Vec::new();
    for s in strategies {
        let m = run(s);
        println!(
            "{:>6} | {:>10.1} | {:>10.1} | {:>11} | {:>11} | {:>9.1}",
            m.strategy,
            m.extra_power_mw(),
            m.wakeups_per_sec(),
            format!("{}", m.mean_latency()),
            format!("{}", m.max_latency()),
            m.mean_capacity(),
        );
        results.push(m);
    }

    // Show the elasticity at work: per-shard mean allocated capacity
    // under PBPL. Shards that sat under the surge borrowed from the rest.
    let pbpl = results.last().expect("PBPL ran");
    println!("\nPBPL per-shard mean buffer allocation (B0 = 50, pool = 400):");
    for p in &pbpl.pairs {
        let bar = "#".repeat((p.mean_capacity() / 2.0) as usize);
        println!("shard {:>2}: {:>5.1}  {}", p.pair.0, p.mean_capacity(), bar);
    }
    let spread = pbpl
        .pairs
        .iter()
        .map(|p| p.mean_capacity())
        .fold(f64::NEG_INFINITY, f64::max)
        - pbpl
            .pairs
            .iter()
            .map(|p| p.mean_capacity())
            .fold(f64::INFINITY, f64::min);
    println!("\ncapacity spread across shards: {spread:.1} items (elastic walls, §V-C)");

    let mutex = &results[0];
    println!(
        "\nPBPL vs Mutex on this day: {:+.1}% power, {:+.1}% wakeups, mean latency {} vs {}",
        (pbpl.extra_power_mw() / mutex.extra_power_mw() - 1.0) * 100.0,
        (pbpl.wakeups_per_sec() / mutex.wakeups_per_sec() - 1.0) * 100.0,
        pbpl.mean_latency(),
        mutex.mean_latency(),
    );
}

//! Quickstart: run the paper's algorithm (PBPL) against the classic
//! mutex implementation on the same workload and compare the power
//! profile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pcpower::core::{Experiment, StrategyKind};
use pcpower::sim::SimDuration;
use pcpower::trace::WorldCupConfig;

fn main() {
    // A web-server-like workload: bursty, non-constant rate (the stand-in
    // for the paper's World Cup '98 access log).
    let workload = WorldCupConfig::paper_default();

    // Five producer-consumer pairs on a dual-core system, 5 simulated
    // seconds, buffers of 25 items — the paper's Figure 9 configuration.
    let run = |strategy: StrategyKind| {
        Experiment::builder()
            .pairs(5)
            .cores(2)
            .duration(SimDuration::from_secs(5))
            .buffer_capacity(25)
            .trace(workload.clone())
            .strategy(strategy)
            .seed(42)
            .run()
    };

    let mutex = run(StrategyKind::Mutex);
    let pbpl = run(StrategyKind::pbpl_default());

    println!("metric                    Mutex        PBPL");
    println!(
        "power over idle (mW)   {:>8.1}    {:>8.1}",
        mutex.extra_power_mw(),
        pbpl.extra_power_mw()
    );
    println!(
        "core wakeups/s         {:>8.1}    {:>8.1}",
        mutex.wakeups_per_sec(),
        pbpl.wakeups_per_sec()
    );
    println!(
        "CPU usage (ms/s)       {:>8.2}    {:>8.2}",
        mutex.usage_ms_per_sec(),
        pbpl.usage_ms_per_sec()
    );
    println!(
        "mean latency           {:>8}    {:>8}",
        format!("{}", mutex.mean_latency()),
        format!("{}", pbpl.mean_latency())
    );
    println!(
        "items consumed         {:>8}    {:>8}",
        mutex.items_consumed, pbpl.items_consumed
    );

    let saving = (1.0 - pbpl.extra_power_mw() / mutex.extra_power_mw()) * 100.0;
    println!(
        "\nPBPL saves {saving:.1}% power by batching work into shared, predicted CPU wakeups."
    );
    assert!(pbpl.extra_power_mw() < mutex.extra_power_mw());
}

//! Replaying a *real* access log — the road back to the paper's exact
//! dataset.
//!
//! The paper drives everything with the 1998 World Cup web log. Anyone
//! holding that dataset (or any access log) can reproduce our experiments
//! on it through `pc-trace`'s ingestion path; this example demonstrates
//! the pipeline on an embedded Common Log Format sample: parse →
//! rebase/spread/compress → phase-shift per consumer → run the strategy
//! comparison.
//!
//! ```sh
//! cargo run --release --example replay_log            # embedded sample
//! cargo run --release --example replay_log access.log # your own log
//! ```

use pcpower::core::{Experiment, StrategyKind};
use pcpower::sim::SimDuration;
use pcpower::trace::{parse_common_log, parse_timestamp_lines, to_trace, ReplayOptions};
use std::io::BufRead;

/// A synthetic-but-realistic CLF snippet: a quiet minute, then a burst
/// (what a match kick-off looked like in the WC'98 log).
const SAMPLE: &str = include_str!("sample_access.log");

fn main() {
    let raw = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).expect("open log file");
            let reader = std::io::BufReader::new(file);
            // Try CLF first; fall back to timestamp-per-line.
            let head = std::fs::read_to_string(&path).expect("read log");
            if head.lines().take(5).any(|l| l.contains('[')) {
                parse_common_log(std::io::Cursor::new(head)).expect("parse CLF")
            } else {
                let _ = reader.lines();
                parse_timestamp_lines(std::io::Cursor::new(
                    std::fs::read_to_string(&path).expect("read log"),
                ))
                .expect("parse timestamps")
            }
        }
        None => parse_common_log(std::io::Cursor::new(SAMPLE)).expect("embedded sample parses"),
    };
    println!("parsed {} requests", raw.len());

    // Compress the log window into a 2-second experiment, spreading
    // same-second stamps so replay isn't lumpy at second boundaries.
    let trace = to_trace(
        &raw,
        &ReplayOptions {
            compress_to: Some(SimDuration::from_secs(2)),
            spread_seed: Some(42),
        },
    )
    .expect("trace conversion");
    println!(
        "replaying as {} items over {} ({:.0} items/s mean)\n",
        trace.len(),
        trace.horizon(),
        trace.mean_rate()
    );

    println!(
        "{:>6} | {:>10} | {:>11} | {:>11}",
        "impl", "power mW", "wakeups/s", "mean lat"
    );
    for strategy in [
        StrategyKind::Mutex,
        StrategyKind::Bp,
        StrategyKind::pbpl_default(),
    ] {
        // Four consumers share the log with 1/M phase shifts (§VI-A).
        let traces = (0..4).map(|i| trace.phase_shift(i as f64 / 4.0)).collect();
        let m = Experiment::builder()
            .pairs(4)
            .cores(2)
            .duration(SimDuration::from_secs(2))
            .strategy(strategy)
            .traces(traces)
            .buffer_capacity(25)
            .run();
        println!(
            "{:>6} | {:>10.1} | {:>11.1} | {:>11}",
            m.strategy,
            m.extra_power_mw(),
            m.wakeups_per_sec(),
            format!("{}", m.mean_latency())
        );
        assert!(m.all_items_consumed());
    }
}

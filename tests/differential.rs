//! Differential tests: the same workload class under the same strategy
//! on both engines — the discrete-event simulator (`pc-core`) and the
//! native-thread runtime (`pc-runtime`) — must tell the same story.
//!
//! The two engines are *not* bit-comparable: the simulator is
//! deterministic virtual time while the runtime schedules real threads
//! against the wall clock, and each generates its own workload instance
//! (same `WorldCupConfig`, different internal seeds/phases). What must
//! agree:
//!
//! * **Item conservation, exactly** — on either engine, every produced
//!   item is consumed by end-of-run flush. This is the invariant; no
//!   tolerance.
//! * **Volume and invocation counts, statistically** — both engines draw
//!   from the same arrival process at the same mean rate, so totals may
//!   only differ by generator phase and scheduling noise. The documented
//!   tolerance is a factor of 2 on items produced and a factor of 8 on
//!   invocations. Invocation *sessions* are where engine semantics
//!   legitimately diverge most: under Mutex the native consumer often
//!   wakes once per pushed item (producer and consumer interleave
//!   tightly on real cores, observed ~4.4x more sessions), while the
//!   simulator dispatches one session per arrival cluster.
//! * **The replay oracle** — traces recorded on either engine replay
//!   clean. Native traces carry no `Buffer*`/`CoreSpan` events, so the
//!   oracle exercises item conservation and (for PBPL) reservation
//!   consistency there; sim traces exercise every check.

use pc_bench::oracle;
use pcpower::core::{Experiment, StrategyKind};
use pcpower::runtime::NativeHarness;
use pcpower::sim::SimDuration;
use pcpower::trace::WorldCupConfig;
use pcpower::trace_events::{Recorder, TraceLog};

const PAIRS: usize = 2;
const CORES: usize = 2;
const BUFFER: usize = 25;
const SEED: u64 = 42;
const DURATION_MS: u64 = 250;

struct EngineOutcome {
    produced: u64,
    consumed: u64,
    invocations: u64,
    log: TraceLog,
}

fn run_sim(strategy: StrategyKind) -> EngineOutcome {
    let recorder = Recorder::new();
    let m = Experiment::builder()
        .pairs(PAIRS)
        .cores(CORES)
        .duration(SimDuration::from_millis(DURATION_MS))
        .strategy(strategy)
        .trace(WorldCupConfig::quick_test())
        .seed(SEED)
        .buffer_capacity(BUFFER)
        .record_events(recorder.handle())
        .run();
    assert!(m.all_items_consumed(), "sim lost items");
    EngineOutcome {
        produced: m.items_produced,
        consumed: m.items_consumed,
        invocations: m.pairs.iter().map(|p| p.invocations).sum(),
        log: recorder.take(),
    }
}

fn run_native(strategy: StrategyKind) -> EngineOutcome {
    let recorder = Recorder::new();
    let report = NativeHarness {
        strategy,
        pairs: PAIRS,
        cores: CORES,
        duration: SimDuration::from_millis(DURATION_MS),
        buffer_capacity: BUFFER,
        seed: SEED,
        trace_events: recorder.handle(),
        ..NativeHarness::default()
    }
    .run();
    EngineOutcome {
        produced: report.items_produced(),
        consumed: report.items_consumed(),
        invocations: report.pairs.iter().map(|p| p.invocations).sum(),
        log: recorder.take(),
    }
}

fn assert_within_factor(label: &str, sim: u64, native: u64, factor: u64) {
    assert!(
        sim > 0 && native > 0,
        "{label}: degenerate counts (sim {sim}, native {native})"
    );
    assert!(
        sim <= native * factor && native <= sim * factor,
        "{label}: sim {sim} vs native {native} exceeds documented {factor}x tolerance"
    );
}

fn differential(strategy: StrategyKind) {
    let sim = run_sim(strategy.clone());
    let native = run_native(strategy);

    // Exact conservation on each engine.
    assert_eq!(sim.produced, sim.consumed, "sim conservation");
    assert_eq!(native.produced, native.consumed, "native conservation");

    // Statistical agreement between engines (documented tolerances).
    assert_within_factor("items produced", sim.produced, native.produced, 2);
    assert_within_factor("invocations", sim.invocations, native.invocations, 8);

    // Both traces replay clean, and the events re-derive the same
    // conservation totals the counters reported.
    for (engine, outcome) in [("sim", &sim), ("native", &native)] {
        assert_eq!(outcome.log.dropped, 0, "{engine} trace truncated");
        assert!(!outcome.log.events.is_empty(), "{engine} trace empty");
        let report = oracle::check(&outcome.log);
        assert!(
            report.is_clean(),
            "{engine} oracle violations: {:?}",
            report.violations
        );
    }
}

#[test]
fn mutex_agrees_across_engines() {
    differential(StrategyKind::Mutex);
}

#[test]
fn bp_agrees_across_engines() {
    differential(StrategyKind::Bp);
}

//! The paper's own experimental sanity checks (§III-C-1), mirrored
//! against the simulator:
//!
//! 1. "a busy waiting multithreaded program running on both cores … no
//!    experiment reaches the power consumption found in that
//!    implementation" — BW saturating every core is the power ceiling.
//! 2. "no background processes … the power consumed in this experiment
//!    is less than any other experiment" — an idle system (empty traces)
//!    is the floor.
//! 3. measured voltages reasonable — here: power figures sit between
//!    floor and ceiling and scale with the number of active cores.
//! 4. statistical confidence — replicate spread is small relative to the
//!    between-strategy differences.

use pcpower::core::{Experiment, RunMetrics, StrategyKind};
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::{Trace, WorldCupConfig};

fn run(strategy: StrategyKind, seed: u64) -> RunMetrics {
    Experiment::builder()
        .pairs(4)
        .cores(2)
        .duration(SimDuration::from_millis(400))
        .strategy(strategy)
        .trace(WorldCupConfig::quick_test())
        .buffer_capacity(25)
        .seed(seed)
        .run()
}

/// Sanity check 1: busy-waiting on every core is the ceiling no other
/// implementation reaches.
#[test]
fn busy_wait_on_all_cores_is_the_power_ceiling() {
    let ceiling = run(StrategyKind::BusyWait, 1).extra_power_mw();
    for strategy in [
        StrategyKind::Yield,
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::Pbp {
            period: SimDuration::from_millis(5),
        },
        StrategyKind::Spbp {
            period: SimDuration::from_millis(5),
        },
        StrategyKind::pbpl_default(),
    ] {
        let p = run(strategy.clone(), 1).extra_power_mw();
        assert!(
            p < ceiling,
            "{} ({p:.1} mW) must stay below the BW ceiling ({ceiling:.1} mW)",
            strategy.name()
        );
    }
}

/// Sanity check 2: a system with nothing to consume is the power floor.
#[test]
fn idle_system_is_the_power_floor() {
    let horizon = SimTime::from_millis(400);
    let empty: Vec<Trace> = (0..4).map(|_| Trace::new(vec![], horizon)).collect();
    let floor = Experiment::builder()
        .pairs(4)
        .cores(2)
        .duration(SimDuration::from_millis(400))
        .strategy(StrategyKind::pbpl_default())
        .traces(empty)
        .buffer_capacity(25)
        .run()
        .extra_power_mw();
    // An idle PBPL system still takes its latency-bound peeks, so the
    // floor is near — but not exactly — zero.
    assert!(floor < 10.0, "idle floor {floor:.2} mW");
    for strategy in [
        StrategyKind::Mutex,
        StrategyKind::Bp,
        StrategyKind::pbpl_default(),
    ] {
        let p = run(strategy.clone(), 1).extra_power_mw();
        assert!(
            p > floor,
            "{} ({p:.1} mW) must exceed the idle floor ({floor:.2} mW)",
            strategy.name()
        );
    }
}

/// Sanity check 3: power scales with the hardware actually used — BW on
/// one core draws about half of BW on two.
#[test]
fn power_scales_with_active_cores() {
    let one = Experiment::builder()
        .pairs(1)
        .cores(1)
        .duration(SimDuration::from_millis(200))
        .strategy(StrategyKind::BusyWait)
        .trace(WorldCupConfig::quick_test())
        .seed(2)
        .run()
        .extra_power_mw();
    let two = Experiment::builder()
        .pairs(2)
        .cores(2)
        .duration(SimDuration::from_millis(200))
        .strategy(StrategyKind::BusyWait)
        .trace(WorldCupConfig::quick_test())
        .seed(2)
        .run()
        .extra_power_mw();
    let ratio = two / one;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "2-core BW should be ≈2x 1-core BW, got {ratio:.2}"
    );
}

/// Sanity check 4: replicate spread is small relative to the
/// between-strategy gaps (the paper's "conclusions are not based on
/// outliers").
#[test]
fn replicate_spread_below_strategy_gaps() {
    let reps = |s: StrategyKind| -> Vec<f64> {
        (0..3)
            .map(|k| run(s.clone(), 10 + k).extra_power_mw())
            .collect()
    };
    let mutex = reps(StrategyKind::Mutex);
    let bp = reps(StrategyKind::Bp);
    let spread = |xs: &[f64]| {
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    };
    let mutex_mean = mutex.iter().sum::<f64>() / 3.0;
    let bp_mean = bp.iter().sum::<f64>() / 3.0;
    let gap = (mutex_mean - bp_mean).abs();
    assert!(
        spread(&mutex) < gap && spread(&bp) < gap,
        "replicate spread (Mutex {:.1}, BP {:.1}) must stay below the gap ({gap:.1})",
        spread(&mutex),
        spread(&bp)
    );
}

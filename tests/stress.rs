//! Stress and failure-injection tests: extreme configurations the
//! calibrated experiments never hit must still run clean.

use pcpower::core::{Experiment, PbplConfig, StrategyKind};
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::{Trace, WorldCupConfig};

#[test]
fn many_consumers_on_one_core() {
    // 32 consumers fighting over a single core: heavy slot sharing,
    // serialised drains, queueing delays.
    let m = Experiment::builder()
        .pairs(32)
        .cores(1)
        .duration(SimDuration::from_millis(300))
        .strategy(StrategyKind::pbpl_default())
        .trace(WorldCupConfig::quick_test())
        .buffer_capacity(10)
        .seed(5)
        .run();
    assert!(m.all_items_consumed());
    for r in &m.core_reports {
        r.validate().unwrap();
    }
}

#[test]
fn tiny_buffers_survive_bursts() {
    // B = 2: almost every cluster overflows; conservation and timeline
    // sanity must hold regardless.
    for strategy in [StrategyKind::Bp, StrategyKind::pbpl_default()] {
        let m = Experiment::builder()
            .pairs(4)
            .cores(2)
            .duration(SimDuration::from_millis(300))
            .strategy(strategy.clone())
            .trace(WorldCupConfig::quick_test())
            .buffer_capacity(2)
            .seed(6)
            .run();
        assert!(m.all_items_consumed(), "{}", strategy.name());
        assert!(m.overflow_wakeups() > 0, "{}", strategy.name());
    }
}

#[test]
fn rate_cliff_hundredfold_jump() {
    // 50 items/s for 150ms, then ~5000/s: the predictor is maximally
    // wrong at the cliff; overflow handling and upsizing must absorb it.
    let horizon = SimTime::from_millis(300);
    let mut times: Vec<SimTime> = (0..8u64).map(|k| SimTime::from_millis(k * 20)).collect();
    times.extend((0..750u64).map(|k| SimTime::from_nanos(150_000_000 + k * 200_000)));
    let trace = Trace::new(times, horizon);
    let m = Experiment::builder()
        .pairs(1)
        .cores(1)
        .duration(SimDuration::from_millis(300))
        .strategy(StrategyKind::pbpl_default())
        .traces(vec![trace])
        .buffer_capacity(25)
        .run();
    assert_eq!(m.items_produced, 758);
    assert!(m.all_items_consumed());
}

#[test]
fn slot_larger_than_run() {
    // A slot size beyond the run length: the initial reservation never
    // fires; overflow wakes plus the end-of-run flush must still drain
    // everything.
    let cfg = PbplConfig {
        slot: SimDuration::from_secs(10),
        max_latency: SimDuration::from_secs(40),
        ..PbplConfig::default()
    };
    let m = Experiment::builder()
        .pairs(2)
        .cores(1)
        .duration(SimDuration::from_millis(200))
        .strategy(StrategyKind::Pbpl(cfg))
        .trace(WorldCupConfig::quick_test())
        .buffer_capacity(25)
        .seed(8)
        .run();
    assert!(m.all_items_consumed());
}

#[test]
fn one_item_periods() {
    // Periodic batching with a period shorter than any inter-arrival
    // gap: every batch is 0 or 1 items; dispatch overhead dominates but
    // nothing breaks.
    let m = Experiment::builder()
        .pairs(2)
        .cores(2)
        .duration(SimDuration::from_millis(100))
        .strategy(StrategyKind::Spbp {
            period: SimDuration::from_micros(50),
        })
        .trace(WorldCupConfig {
            mean_rate: 200.0,
            cluster_size_mean: 1.0,
            ..WorldCupConfig::quick_test()
        })
        .buffer_capacity(25)
        .seed(9)
        .run();
    assert!(m.all_items_consumed());
    assert!(m.scheduled_wakeups() > 1000, "timer must dominate");
}

#[test]
fn extreme_pair_count_scales() {
    // 64 pairs across 8 cores at low rate: exercises per-core manager
    // independence and round-robin assignment.
    let m = Experiment::builder()
        .pairs(64)
        .cores(8)
        .duration(SimDuration::from_millis(200))
        .strategy(StrategyKind::pbpl_default())
        .trace(WorldCupConfig {
            mean_rate: 300.0,
            ..WorldCupConfig::quick_test()
        })
        .buffer_capacity(10)
        .seed(10)
        .run();
    assert!(m.all_items_consumed());
    assert_eq!(m.core_reports.len(), 8);
    // Every core hosted 8 consumers; all should have woken at least once
    // given a 200ms run with items on every pair.
    let active_cores = m.core_reports.iter().filter(|r| r.wakeups > 0).count();
    assert_eq!(active_cores, 8);
}

#[test]
fn zero_latency_budget_equivalence() {
    // max_latency == slot: the consumer may only ever reserve the very
    // next slot — PBPL degenerates toward fine periodic batching but must
    // stay correct.
    let cfg = PbplConfig {
        slot: SimDuration::from_millis(5),
        max_latency: SimDuration::from_millis(5),
        ..PbplConfig::default()
    };
    let m = Experiment::builder()
        .pairs(3)
        .cores(2)
        .duration(SimDuration::from_millis(200))
        .strategy(StrategyKind::Pbpl(cfg))
        .trace(WorldCupConfig::quick_test())
        .buffer_capacity(25)
        .seed(11)
        .run();
    assert!(m.all_items_consumed());
    assert!(
        m.mean_latency() < SimDuration::from_millis(10),
        "tight budget must yield tight latency, got {}",
        m.mean_latency()
    );
}

/// Full paper-protocol soak: 50 s, all four evaluated strategies. Run
/// with `cargo test -- --ignored` (several minutes in debug).
#[test]
#[ignore = "multi-minute soak; run explicitly"]
fn full_protocol_soak() {
    for strategy in [
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::pbpl_default(),
    ] {
        let m = Experiment::builder()
            .pairs(5)
            .cores(2)
            .duration(SimDuration::from_secs(50))
            .strategy(strategy.clone())
            .trace(WorldCupConfig::paper_default())
            .buffer_capacity(25)
            .seed(1)
            .run();
        assert!(m.all_items_consumed(), "{}", strategy.name());
        for r in &m.core_reports {
            r.validate().unwrap();
        }
    }
}

//! Integration tests for the native-thread runtime: short wall-clock
//! runs of each strategy, checking conservation and the headline wakeup
//! ordering on real threads.

use pcpower::core::StrategyKind;
use pcpower::runtime::NativeHarness;
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::WorldCupConfig;

fn harness(strategy: StrategyKind) -> NativeHarness {
    NativeHarness {
        strategy,
        pairs: 3,
        cores: 2,
        duration: SimDuration::from_millis(300),
        time_scale: 1.0,
        trace: WorldCupConfig {
            horizon: SimTime::from_millis(300),
            mean_rate: 2_000.0,
            ..WorldCupConfig::quick_test()
        },
        buffer_capacity: 25,
        seed: 9,
        ..NativeHarness::default()
    }
}

#[test]
fn all_native_strategies_conserve_items() {
    let strategies = vec![
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::Pbp {
            period: SimDuration::from_millis(10),
        },
        StrategyKind::Spbp {
            period: SimDuration::from_millis(10),
        },
        StrategyKind::pbpl_default(),
    ];
    for strategy in strategies {
        let name = strategy.name();
        let report = harness(strategy).run();
        assert!(report.items_produced() > 0, "{name}: nothing produced");
        assert_eq!(
            report.items_produced(),
            report.items_consumed(),
            "{name}: item loss"
        );
    }
}

#[test]
fn native_batchers_wake_less_than_item_driven() {
    let mutex = harness(StrategyKind::Mutex).run();
    let bp = harness(StrategyKind::Bp).run();
    let pbpl = harness(StrategyKind::pbpl_default()).run();
    assert!(
        bp.wakeups_per_sec() < mutex.wakeups_per_sec(),
        "bp {} vs mutex {}",
        bp.wakeups_per_sec(),
        mutex.wakeups_per_sec()
    );
    assert!(
        pbpl.wakeups_per_sec() < mutex.wakeups_per_sec(),
        "pbpl {} vs mutex {}",
        pbpl.wakeups_per_sec(),
        mutex.wakeups_per_sec()
    );
}

#[test]
fn native_pbpl_uses_slot_scheduling() {
    let report = harness(StrategyKind::pbpl_default()).run();
    let scheduled: u64 = report.pairs.iter().map(|p| p.scheduled).sum();
    assert!(scheduled > 0, "PBPL slot wakes must fire on real timers");
    assert!(
        report.manager_fires.iter().sum::<u64>() > 0,
        "core managers must dispatch"
    );
    // Group latching on real threads: manager timer fires do not exceed
    // scheduled invocations (several consumers per fire is the point).
    assert!(report.manager_fires.iter().sum::<u64>() <= scheduled);
}

#[test]
fn native_busywait_has_no_wakeups_and_high_usage() {
    let report = harness(StrategyKind::BusyWait).run();
    let wakeups: u64 = report.pairs.iter().map(|p| p.wakeups).sum();
    assert_eq!(wakeups, 0);
    // Three spinning consumers ≈ 3 busy threads.
    assert!(
        report.usage_ms_per_sec() > 1000.0,
        "usage {}",
        report.usage_ms_per_sec()
    );
}

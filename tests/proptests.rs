//! Property-based integration tests (proptest): invariants that must
//! hold for *arbitrary* workloads and operation sequences, not just the
//! calibrated ones.

use pcpower::core::{Experiment, SlotTrack, StrategyKind};
use pcpower::queues::{ElasticBuffer, GlobalPool};
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::Trace;
use proptest::prelude::*;
use std::sync::Arc;

fn arbitrary_trace(max_items: usize, horizon_ms: u64) -> impl Strategy<Value = Trace> {
    prop::collection::vec(0..horizon_ms * 1_000_000, 0..max_items).prop_map(move |mut ns| {
        ns.sort_unstable();
        let times = ns.into_iter().map(SimTime::from_nanos).collect();
        Trace::new(times, SimTime::from_millis(horizon_ms))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_trace_is_fully_consumed_by_every_strategy(
        trace in arbitrary_trace(400, 50),
        strategy_idx in 0usize..4,
    ) {
        let strategy = match strategy_idx {
            0 => StrategyKind::Mutex,
            1 => StrategyKind::Bp,
            2 => StrategyKind::Spbp { period: SimDuration::from_millis(5) },
            _ => StrategyKind::pbpl_default(),
        };
        let n = trace.len() as u64;
        let m = Experiment::builder()
            .pairs(1)
            .cores(1)
            .duration(SimDuration::from_millis(50))
            .strategy(strategy)
            .traces(vec![trace])
            .buffer_capacity(16)
            .run();
        prop_assert_eq!(m.items_produced, n);
        prop_assert!(m.all_items_consumed());
        for r in &m.core_reports {
            prop_assert!(r.validate().is_ok());
        }
    }

    #[test]
    fn runs_are_reproducible_for_any_seed(seed in 0u64..10_000) {
        let run = || Experiment::builder()
            .pairs(2)
            .cores(2)
            .duration(SimDuration::from_millis(60))
            .strategy(StrategyKind::pbpl_default())
            .trace(pcpower::trace::WorldCupConfig::quick_test())
            .seed(seed)
            .run();
        let a = run();
        let b = run();
        prop_assert_eq!(a.items_consumed, b.items_consumed);
        prop_assert_eq!(a.energy.energy_j.to_bits(), b.energy.energy_j.to_bits());
    }

    #[test]
    fn pool_units_conserved_under_arbitrary_ops(
        ops in prop::collection::vec((0u8..5, 1usize..60), 1..200)
    ) {
        let total = 120usize;
        let pool = GlobalPool::new(total);
        let mut bufs: Vec<ElasticBuffer<u8>> = (0..3)
            .map(|_| ElasticBuffer::new(Arc::clone(&pool), 20).expect("fits"))
            .collect();
        let mut sink = Vec::new();
        for (op, arg) in ops {
            let b = &mut bufs[arg % 3];
            match op {
                0 => { b.grow_to(arg); }
                1 => { b.shrink_to(arg % 40); }
                2 => { let _ = b.push(0); }
                3 => { b.pop(); }
                // Batch drain: exercises the segment free list (emptied
                // segments recycled, later pushes reuse them) under the
                // same conservation assertions as the item ops.
                _ => { sink.clear(); b.drain_into(&mut sink); }
            }
            let held: usize = bufs.iter().map(|b| b.capacity()).sum();
            prop_assert_eq!(held + pool.available(), total);
            for b in &bufs {
                prop_assert!(b.len() <= b.capacity());
            }
        }
        drop(bufs);
        prop_assert_eq!(pool.available(), total);
    }

    #[test]
    fn traced_elastic_ops_replay_clean(
        ops in prop::collection::vec((0u8..7, 1usize..60), 1..200)
    ) {
        // Random interleavings of grow/shrink/push/pop/drain/destroy/create
        // over traced elastic buffers: the direct conservation check must
        // hold at every step, and the recorded `Buffer*` event stream
        // must replay clean through the oracle (conservation after every
        // transaction, no double-free, grants within requests).
        use pcpower::trace_events::Recorder;
        let total = 120usize;
        let pool = GlobalPool::new(total);
        let recorder = Recorder::new();
        let mut next_owner = 0u32;
        let make = |pool: &Arc<GlobalPool>, next_owner: &mut u32| {
            let mut b = ElasticBuffer::<u8>::new(Arc::clone(pool), 20)?;
            b.set_trace(recorder.handle(), *next_owner);
            *next_owner += 1;
            Some(b)
        };
        let mut bufs: Vec<Option<ElasticBuffer<u8>>> = (0..3)
            .map(|_| make(&pool, &mut next_owner))
            .collect();
        for (op, arg) in ops {
            let k = arg % 3;
            match (op, bufs[k].as_mut()) {
                (0, Some(b)) => { b.grow_to(arg); }
                (1, Some(b)) => { b.shrink_to(arg % 40); }
                (2, Some(b)) => { let _ = b.push(0); }
                (3, Some(b)) => { b.pop(); }
                (4, Some(b)) => { let mut out = Vec::new(); b.drain_into(&mut out); }
                (5, _) => { bufs[k] = None; } // destroy
                (_, slot) => {
                    if slot.is_none() {
                        bufs[k] = make(&pool, &mut next_owner); // recreate
                    }
                }
            }
            let held: usize = bufs.iter().flatten().map(|b| b.capacity()).sum();
            prop_assert_eq!(held + pool.available(), total);
        }
        drop(bufs);
        prop_assert_eq!(pool.available(), total);
        let log = recorder.take();
        prop_assert_eq!(log.dropped, 0);
        prop_assert!(!log.events.is_empty());
        let report = pc_bench::oracle::check(&log);
        prop_assert!(report.is_clean(), "oracle violations: {:?}", report.violations);
    }

    #[test]
    fn any_fault_plan_preserves_item_and_pool_conservation(
        scenario_idx in 0usize..8,
        seed in 0u64..10_000,
    ) {
        // Arbitrary fault interleavings — any scenario, any expansion
        // seed — may reshape arrivals, stall producers, slow consumers,
        // drop wakeups, drift timers and squeeze the pool, but they must
        // never lose an item or a pool unit: the run flushes clean and
        // the recorded trace replays clean through the extended oracle
        // (item conservation, squeeze-aware pool conservation, paired
        // fault windows).
        use pcpower::faults::{ExpandEnv, FaultPlan, FaultScenario};
        use pcpower::trace_events::Recorder;
        let (pairs, cores, buffer) = (3usize, 2usize, 25usize);
        let duration = SimDuration::from_millis(60);
        let scenario = FaultScenario::all()[scenario_idx];
        let plan = FaultPlan::expand(scenario, seed, &ExpandEnv {
            horizon_ns: duration.as_nanos(),
            pairs: pairs as u32,
            cores: cores as u32,
            pool_total: (buffer * pairs) as u64,
        });
        let recorder = Recorder::new();
        let m = Experiment::builder()
            .pairs(pairs)
            .cores(cores)
            .duration(duration)
            .strategy(StrategyKind::pbpl_degraded())
            .trace(pcpower::trace::WorldCupConfig::quick_test())
            .seed(seed)
            .buffer_capacity(buffer)
            .faults(plan)
            .record_events(recorder.handle())
            .run();
        prop_assert!(m.all_items_consumed(),
            "{}: {} produced, {} consumed",
            scenario.name(), m.items_produced, m.items_consumed);
        let log = recorder.take();
        prop_assert_eq!(log.dropped, 0);
        let report = pc_bench::oracle::check(&log);
        prop_assert!(report.is_clean(),
            "{} seed {}: oracle violations: {:?}",
            scenario.name(), seed, report.violations);
    }

    #[test]
    fn overload_control_keeps_the_shed_ledger_balanced_for_any_scenario(
        scenario_idx in 0usize..10,
        seed in 0u64..10_000,
    ) {
        // Overload control changes the conservation law to
        // `produced == consumed + shed` — for *any* fault scenario
        // (including the correlated ones built to trip it) and any
        // expansion seed, the ledger must balance, every
        // `OverloadEntered` must pair with an `OverloadCleared` whose
        // shed count matches the `ItemShed` events in the window
        // (the oracle enforces both), and the recording must replay
        // bit-identically through the executable replay path from its
        // `CellMeta` recipe alone (the `(overload)` label carries the
        // whole overload config).
        use pc_bench::oracle::CellMeta;
        use pc_bench::replay::{first_divergence, rerun_cell};
        use pcpower::core::OverloadConfig;
        use pcpower::faults::{ExpandEnv, FaultPlan, FaultScenario};
        use pcpower::trace_events::{Recorder, TraceEvent};
        let scenarios: Vec<FaultScenario> = FaultScenario::correlated()
            .into_iter()
            .chain(FaultScenario::all())
            .collect();
        let scenario = scenarios[scenario_idx];
        let (pairs, cores, buffer) = (5usize, 2usize, 25usize);
        let duration = SimDuration::from_millis(250);
        let plan = FaultPlan::expand(scenario, seed, &ExpandEnv {
            horizon_ns: duration.as_nanos(),
            pairs: pairs as u32,
            cores: cores as u32,
            pool_total: (buffer * pairs) as u64,
        });
        let recorder = Recorder::bounded(pc_bench::sweep::trace_capacity_from_env());
        let m = Experiment::builder()
            .pairs(pairs)
            .cores(cores)
            .duration(duration)
            .strategy(StrategyKind::pbpl_default())
            .trace(pcpower::trace::WorldCupConfig::quick_test())
            .seed(seed)
            .buffer_capacity(buffer)
            .faults(plan)
            .overload(OverloadConfig::standard())
            .record_events(recorder.handle())
            .run();
        prop_assert_eq!(m.items_produced, m.items_consumed + m.items_shed,
            "{} seed {}: {} produced != {} consumed + {} shed",
            scenario.name(), seed, m.items_produced, m.items_consumed, m.items_shed);
        prop_assert!(m.all_items_consumed());
        let log = recorder.take();
        prop_assert_eq!(log.dropped, 0);
        let entered = log.events.iter()
            .filter(|e| matches!(e.kind, TraceEvent::OverloadEntered { .. })).count();
        let cleared = log.events.iter()
            .filter(|e| matches!(e.kind, TraceEvent::OverloadCleared { .. })).count();
        prop_assert_eq!(entered, cleared, "windows must pair up");
        let shed_events = log.events.iter()
            .filter(|e| matches!(e.kind, TraceEvent::ItemShed { .. })).count();
        prop_assert_eq!(shed_events as u64, m.items_shed);
        let report = pc_bench::oracle::check(&log);
        prop_assert!(report.is_clean(),
            "{} seed {}: oracle violations: {:?}",
            scenario.name(), seed, report.violations);
        let meta = CellMeta {
            experiment: "proptest_overload".to_string(),
            strategy: "PBPL(overload)".to_string(),
            pairs: pairs as u64,
            cores: cores as u64,
            buffer: buffer as u64,
            seed,
            duration_ns: duration.as_nanos(),
            workload: "worldcup_quick".to_string(),
            scenario: scenario.name().to_string(),
            period_ns: 0,
            events: log.events.len() as u64,
            dropped: log.dropped,
            digest: log.digest(),
        };
        let rerun = rerun_cell(&meta);
        prop_assert!(rerun.is_ok(), "rerun failed: {:?}", rerun.as_ref().err());
        let rerun = rerun.unwrap();
        prop_assert!(first_divergence(&log.events, &rerun.events).is_none(),
            "{} seed {}: replay diverged", scenario.name(), seed);
        prop_assert_eq!(rerun.digest(), log.digest());
    }

    #[test]
    fn slot_g_properties(delta_us in 1u64..100_000, t_ns in 0u64..10_000_000_000) {
        let track = SlotTrack::new(SimDuration::from_micros(delta_us));
        let t = SimTime::from_nanos(t_ns);
        let g = track.g(t);
        // Eq. 6: g(t) ≤ t, on the slot grid, within Δ of t.
        prop_assert!(g <= t);
        prop_assert!(t.saturating_since(g) < SimDuration::from_micros(delta_us));
        prop_assert_eq!(track.slot_start(track.slot_index(t)), g);
        // Idempotence: g(g(t)) = g(t).
        prop_assert_eq!(track.g(g), g);
    }

    #[test]
    fn phase_shift_is_a_permutation(
        trace in arbitrary_trace(200, 40),
        numer in 0u64..8,
    ) {
        let fraction = numer as f64 / 8.0;
        let shifted = trace.phase_shift(fraction);
        prop_assert_eq!(shifted.len(), trace.len());
        prop_assert_eq!(shifted.horizon(), trace.horizon());
        prop_assert!(shifted.times().windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(shifted.times().iter().all(|&t| t < trace.horizon()));
    }
}

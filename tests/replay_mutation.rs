//! Mutation testing for the trace replayer: `replay` must (a) pass an
//! untampered recording for **every** fault scenario, and (b) pinpoint
//! the exact first-divergence position when a single event is flipped,
//! dropped, reordered or retimed anywhere in the stream. A replayer
//! that diffed digests only, compared prefixes sloppily, or resynced
//! after a mismatch would fail (b); one that re-ran with the wrong
//! fault plan or workload would fail (a).

use pc_bench::oracle::CellMeta;
use pc_bench::replay::{first_divergence, replay_cell, rerun_cell, CellReplay, CellTrace};
use pcpower::faults::FaultScenario;
use pcpower::trace_events::{Event, TraceEvent};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// The chaos point (M=5 on 2 cores, B₀=25) under degraded PBPL — the
/// strategy that exercises every event family (slots, pool, watchdog).
fn cell_meta(scenario: &FaultScenario, seed: u64) -> CellMeta {
    CellMeta {
        experiment: format!("mutation_{}", scenario.name()),
        strategy: "PBPL(degraded)".to_string(),
        pairs: 5,
        cores: 2,
        buffer: 25,
        seed,
        duration_ns: 60_000_000,
        workload: "worldcup_quick".to_string(),
        scenario: if *scenario == FaultScenario::Baseline {
            String::new()
        } else {
            scenario.name().to_string()
        },
        period_ns: 0,
        events: 0,
        dropped: 0,
        digest: 0,
    }
}

/// Recorded base streams, generated once per (scenario, seed).
fn base_stream(scenario_idx: usize, seed: u64) -> Vec<Event> {
    static CACHE: Mutex<BTreeMap<(usize, u64), Vec<Event>>> = Mutex::new(BTreeMap::new());
    let mut cache = CACHE.lock().unwrap();
    cache
        .entry((scenario_idx, seed))
        .or_insert_with(|| {
            let scenario = FaultScenario::all()[scenario_idx];
            rerun_cell(&cell_meta(&scenario, seed))
                .expect("base cell replays")
                .events
        })
        .clone()
}

fn cell_with_events(scenario_idx: usize, seed: u64, events: Vec<Event>) -> CellTrace {
    let scenario = FaultScenario::all()[scenario_idx];
    let mut meta = cell_meta(&scenario, seed);
    meta.events = events.len() as u64;
    meta.digest = pcpower::trace_events::digest(&events);
    CellTrace { meta, events }
}

#[test]
fn unmutated_streams_replay_clean_for_every_scenario_and_seed() {
    for (idx, scenario) in FaultScenario::all().iter().enumerate() {
        for seed in [1u64, 2] {
            let base = base_stream(idx, seed);
            assert!(
                base.len() > 50,
                "{}/{seed}: stream too small to be meaningful",
                scenario.name()
            );
            let cell = cell_with_events(idx, seed, base);
            for digest_only in [false, true] {
                match replay_cell(&cell, digest_only) {
                    CellReplay::Match { .. } => {}
                    CellReplay::Diverged { report, .. } => panic!(
                        "{}/{seed} (digest_only={digest_only}) diverged:\n{report}",
                        scenario.name()
                    ),
                    CellReplay::Unreplayable(e) => {
                        panic!("{}/{seed}: unreplayable: {e}", scenario.name())
                    }
                }
            }
        }
    }
}

/// The four single-event mutations.
fn mutate(events: &mut Vec<Event>, kind: usize, index: usize) {
    match kind {
        // Flip: replace the payload with a different variant.
        0 => {
            events[index].kind = match &events[index].kind {
                TraceEvent::Produce { pair } => TraceEvent::Wakeup { pair: *pair },
                _ => TraceEvent::Produce { pair: 999 },
            };
        }
        // Drop: remove the event entirely.
        1 => {
            events.remove(index);
        }
        // Reorder: swap with the next event.
        2 => events.swap(index, index + 1),
        // Retime: shift the event by one sim nanosecond.
        _ => events[index].t_ns += 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_single_event_mutation_is_pinpointed(
        scenario_idx in 0usize..8,
        seed in 1u64..3,
        kind in 0usize..4,
        pos in 0.05f64..0.95,
    ) {
        let base = base_stream(scenario_idx, seed);
        // Leave room for the reorder mutation's `index + 1`.
        let index = ((base.len() - 2) as f64 * pos) as usize;
        let mut mutated = base.clone();
        mutate(&mut mutated, kind, index);
        prop_assert_ne!(&mutated, &base, "mutation must change the stream");

        let cell = cell_with_events(scenario_idx, seed, mutated.clone());

        // Event-by-event replay names the exact first divergent index:
        // every mutation first differs at `index` (drop shifts the
        // suffix left onto it; reorder changes it in place).
        let regenerated = rerun_cell(&cell.meta).unwrap().events;
        let d = first_divergence(&cell.events, &regenerated)
            .expect("mutated stream must diverge");
        prop_assert_eq!(d.index, index);
        // The reported seq is the recording's event at the divergent
        // position: the original seq for in-place mutations (flip,
        // retime), the shifted successor's for drop/reorder.
        prop_assert_eq!(d.seq(), mutated[index].seq);
        prop_assert_eq!(
            mutated[index].seq,
            match kind {
                1 | 2 => base[index + 1].seq,
                _ => base[index].seq,
            }
        );

        // And the CLI-facing verdict agrees in both modes.
        for digest_only in [false, true] {
            match replay_cell(&cell, digest_only) {
                CellReplay::Diverged { seq, report } => {
                    if !digest_only {
                        prop_assert_eq!(seq, d.seq());
                        prop_assert!(report.contains("first divergence"), "{}", report);
                    }
                }
                CellReplay::Match { .. } => {
                    prop_assert!(false, "mutation not detected (digest_only={digest_only})");
                }
                CellReplay::Unreplayable(e) => {
                    prop_assert!(false, "unreplayable: {e}");
                }
            }
        }
    }
}

//! Trace-to-model bridge (DESIGN.md §12): the reservation-protocol
//! model checker runs against constants harvested from a *real*
//! recorded execution, not hand-picked toys. A pool-squeeze chaos cell
//! is re-run through the replayer, `ModelConfig::from_trace` reads B₀,
//! the pool total, the geometry, the slot range and the squeeze
//! schedule out of the event stream, and the bounded checker then
//! explores every interleaving of the scaled-down instance:
//!
//! * the faithful protocol must come out clean (and *discover* both
//!   `sometimes` properties — consumption and full squeeze recovery),
//! * the floor-skipping rebalance bug must be caught with a
//!   counterexample path ending in the buggy action.

use pc_bench::oracle::CellMeta;
use pc_bench::replay::rerun_cell;
use pcpower::sim::model::{BookAction, ModelConfig, ReservationModel};
use stateright::Checker;

fn squeeze_cell() -> CellMeta {
    CellMeta {
        experiment: "bridge_pool_squeeze".to_string(),
        strategy: "PBPL(degraded)".to_string(),
        pairs: 5,
        cores: 2,
        buffer: 25,
        seed: 9,
        duration_ns: 60_000_000,
        workload: "worldcup_quick".to_string(),
        scenario: "pool_squeeze".to_string(),
        period_ns: 0,
        events: 0,
        dropped: 0,
        digest: 0,
    }
}

#[test]
fn model_constants_come_from_the_recorded_trace() {
    let log = rerun_cell(&squeeze_cell()).expect("bridge cell replays");
    let raw = ModelConfig::from_trace(&log.events);
    assert_eq!(raw.pairs, 5);
    assert_eq!(raw.cores, 2);
    assert_eq!(raw.b0, 25);
    assert_eq!(raw.pool_total, 125, "chaos pool is B₀·M");
    assert_eq!(raw.floor, 14, "⌈0.55·25⌉, PbplConfig's floor ratio");
    assert!(
        !raw.squeezes.is_empty(),
        "pool_squeeze scenario must contribute a squeeze schedule"
    );
    assert!(raw.slots >= 2, "PBPL cells reserve real slots");
}

#[test]
fn checked_protocol_instance_from_trace_is_clean() {
    let log = rerun_cell(&squeeze_cell()).expect("bridge cell replays");
    let cfg = ModelConfig::from_trace(&log.events).scaled();
    assert!(!cfg.squeezes.is_empty());
    let result = Checker::bounded(14, 300_000).check(&ReservationModel::new(cfg));
    assert!(
        result.is_clean(),
        "violations: {:?} (explored {} states)",
        result.violations,
        result.states_explored
    );
    assert!(result.states_explored > 500, "space too small to mean much");
}

#[test]
fn broken_rebalance_is_caught_on_the_trace_derived_instance() {
    let log = rerun_cell(&squeeze_cell()).expect("bridge cell replays");
    let cfg = ModelConfig::from_trace(&log.events).scaled().broken();
    let result = Checker::bounded(14, 300_000).check(&ReservationModel::new(cfg));
    let v = result
        .violation("capacity respects floor")
        .expect("floor-skipping rebalance must be caught");
    assert!(
        matches!(v.path.last(), Some(BookAction::DegradedRebalance { .. })),
        "counterexample must end in the buggy action, got {:?}",
        v.path.last()
    );
    let state = v.state.as_ref().expect("always-violations carry the state");
    let floor = 2; // ⌈0.55·3⌉ on the scaled instance
    assert!(state.capacity.iter().any(|&c| c < floor));
}

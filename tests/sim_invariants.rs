//! Cross-crate integration tests: end-to-end invariants of the simulated
//! multiple producer-consumer system.

use pcpower::core::{Experiment, PbplConfig, RunMetrics, StrategyKind};
use pcpower::power::GovernorKind;
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::{Trace, WorldCupConfig};

fn all_strategies() -> Vec<StrategyKind> {
    vec![
        StrategyKind::BusyWait,
        StrategyKind::Yield,
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::Pbp {
            period: SimDuration::from_millis(5),
        },
        StrategyKind::Spbp {
            period: SimDuration::from_millis(5),
        },
        StrategyKind::pbpl_default(),
    ]
}

fn run(strategy: StrategyKind, pairs: usize, cores: usize, seed: u64) -> RunMetrics {
    Experiment::builder()
        .pairs(pairs)
        .cores(cores)
        .duration(SimDuration::from_millis(400))
        .strategy(strategy)
        .trace(WorldCupConfig::quick_test())
        .buffer_capacity(25)
        .seed(seed)
        .run()
}

#[test]
fn every_strategy_conserves_items_across_configs() {
    for strategy in all_strategies() {
        for (pairs, cores) in [(1, 1), (3, 2), (6, 2), (5, 4)] {
            let m = run(strategy.clone(), pairs, cores, 42);
            assert!(m.items_produced > 0, "{} {pairs}x{cores}", strategy.name());
            assert!(
                m.all_items_consumed(),
                "{} {pairs}x{cores}: {} produced, {} consumed",
                strategy.name(),
                m.items_produced,
                m.items_consumed
            );
        }
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    for strategy in all_strategies() {
        let a = run(strategy.clone(), 4, 2, 7);
        let b = run(strategy.clone(), 4, 2, 7);
        assert_eq!(a.items_consumed, b.items_consumed, "{}", strategy.name());
        assert_eq!(
            a.energy.energy_j.to_bits(),
            b.energy.energy_j.to_bits(),
            "{} energy must be bit-identical",
            strategy.name()
        );
        assert_eq!(
            a.meter.wakeups_per_sec.to_bits(),
            b.meter.wakeups_per_sec.to_bits(),
            "{}",
            strategy.name()
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(StrategyKind::pbpl_default(), 4, 2, 1);
    let b = run(StrategyKind::pbpl_default(), 4, 2, 2);
    assert_ne!(a.items_consumed, b.items_consumed);
}

#[test]
fn core_timelines_are_well_formed_for_all_strategies() {
    for strategy in all_strategies() {
        let m = run(strategy.clone(), 5, 3, 13);
        assert_eq!(m.core_reports.len(), 3);
        for report in &m.core_reports {
            report
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", strategy.name()));
        }
    }
}

#[test]
fn energy_identity_holds() {
    // Energy must equal active + idle + wakeup parts; extra power must be
    // non-negative for any workload.
    for strategy in all_strategies() {
        let m = run(strategy.clone(), 3, 2, 21);
        assert!(m.energy.energy_j > 0.0);
        assert!(
            m.extra_power_mw() >= 0.0,
            "{}: extra power {}",
            strategy.name(),
            m.extra_power_mw()
        );
        assert!(m.energy.wakeup_energy_j <= m.energy.energy_j);
    }
}

#[test]
fn paper_headline_ordering_on_bursty_traces() {
    // The §III/§VI qualitative result at a glance: busy-waiting is the
    // power disaster, batching beats item-at-a-time, PBPL is at least as
    // good as plain batching with several consumers per core.
    let bw = run(StrategyKind::BusyWait, 5, 2, 3);
    let mutex = run(StrategyKind::Mutex, 5, 2, 3);
    let bp = run(StrategyKind::Bp, 5, 2, 3);
    let pbpl = run(StrategyKind::pbpl_default(), 5, 2, 3);
    assert!(mutex.extra_power_mw() < 0.5 * bw.extra_power_mw());
    assert!(bp.extra_power_mw() < mutex.extra_power_mw());
    assert!(pbpl.extra_power_mw() < mutex.extra_power_mw());
    assert!(pbpl.wakeups_per_sec() < mutex.wakeups_per_sec());
}

#[test]
fn pbpl_latency_respects_bound_with_margin() {
    let cfg = PbplConfig {
        slot: SimDuration::from_millis(5),
        max_latency: SimDuration::from_millis(20),
        ..PbplConfig::default()
    };
    let m = run(StrategyKind::Pbpl(cfg), 4, 2, 17);
    // Scheduled slots come within the bound; allow slack for queueing,
    // the end-of-run flush and timer jitter.
    assert!(
        m.max_latency() < SimDuration::from_millis(30),
        "max latency {}",
        m.max_latency()
    );
}

#[test]
fn pbpl_scales_better_with_more_consumers() {
    // Fig. 10's scalability claim, as a trend test: PBPL's power
    // advantage over Mutex grows with the consumer count.
    let gap = |pairs: usize| {
        let mutex = run(StrategyKind::Mutex, pairs, 2, 5);
        let pbpl = run(StrategyKind::pbpl_default(), pairs, 2, 5);
        pbpl.extra_power_mw() / mutex.extra_power_mw()
    };
    let at2 = gap(2);
    let at8 = gap(8);
    assert!(
        at8 < at2,
        "PBPL/Mutex power ratio should shrink with M: {at2:.2} → {at8:.2}"
    );
}

#[test]
fn pathological_traces_run_clean() {
    let horizon = SimTime::from_millis(100);
    let cases: Vec<(&str, Vec<SimTime>)> = vec![
        ("empty", vec![]),
        ("single", vec![SimTime::from_millis(50)]),
        ("same-instant burst", vec![SimTime::from_millis(10); 200]),
        ("constant", (1..100).map(SimTime::from_millis).collect()),
        (
            "everything at the end",
            (0..100)
                .map(|k| SimTime::from_nanos(99_000_000 + k))
                .collect(),
        ),
    ];
    for (name, times) in cases {
        for strategy in [
            StrategyKind::Mutex,
            StrategyKind::Bp,
            StrategyKind::pbpl_default(),
        ] {
            let trace = Trace::new(times.clone(), horizon);
            let m = Experiment::builder()
                .pairs(1)
                .cores(1)
                .duration(SimDuration::from_millis(100))
                .strategy(strategy.clone())
                .traces(vec![trace])
                .buffer_capacity(25)
                .run();
            assert!(
                m.all_items_consumed(),
                "{name} under {}: {} vs {}",
                strategy.name(),
                m.items_produced,
                m.items_consumed
            );
        }
    }
}

#[test]
fn producer_stall_and_resume() {
    // A producer that goes silent mid-run must not wedge PBPL: the
    // predictor decays and the consumer keeps latching cheaply.
    let horizon = SimTime::from_millis(300);
    let mut times: Vec<SimTime> = (0..500u64)
        .map(|k| SimTime::from_nanos(k * 100_000))
        .collect(); // 0–50ms busy
    times.extend((0..500u64).map(|k| SimTime::from_nanos(250_000_000 + k * 80_000))); // resume at 250ms
    let trace = Trace::new(times, horizon);
    let m = Experiment::builder()
        .pairs(1)
        .cores(1)
        .duration(SimDuration::from_millis(300))
        .strategy(StrategyKind::pbpl_default())
        .traces(vec![trace])
        .buffer_capacity(25)
        .run();
    assert!(m.all_items_consumed());
    assert_eq!(m.items_produced, 1000);
}

#[test]
fn meter_and_energy_agree_on_wakeups() {
    let m = run(StrategyKind::Bp, 4, 2, 31);
    let total_wakeups: u64 = m.core_reports.iter().map(|r| r.wakeups).sum();
    assert_eq!(m.energy.wakeups, total_wakeups);
    let per_sec = total_wakeups as f64 / m.duration.as_secs_f64();
    assert!((m.wakeups_per_sec() - per_sec).abs() < 1e-9);
}

#[test]
fn menu_governor_never_beats_the_oracle() {
    // The oracle picks the energy-optimal C-state for each actual idle
    // interval; a predictive governor can only match or lose.
    for strategy in [StrategyKind::Mutex, StrategyKind::pbpl_default()] {
        let run = |gov| {
            Experiment::builder()
                .pairs(4)
                .cores(2)
                .duration(SimDuration::from_millis(400))
                .strategy(strategy.clone())
                .trace(WorldCupConfig::quick_test())
                .seed(19)
                .governor(gov)
                .run()
        };
        let oracle = run(GovernorKind::Oracle);
        let menu = run(GovernorKind::Menu);
        assert!(
            menu.energy.energy_j >= oracle.energy.energy_j - 1e-12,
            "{}: menu {} < oracle {}",
            strategy.name(),
            menu.energy.energy_j,
            oracle.energy.energy_j
        );
        // Same behaviour, different accounting: wakeups identical.
        assert_eq!(menu.energy.wakeups, oracle.energy.wakeups);
    }
}

#[test]
fn per_consumer_latency_bounds_honoured() {
    // §IV-A: each consumer defines its own maximum response latency;
    // §V-A: the slot size defaults to the minimum of them. On separate
    // cores (no latching interaction), a 10ms-bound consumer must see
    // tight latencies while its 200ms-bound peer batches far longer.
    // (On a *shared* core the algorithm legitimately couples them: the
    // loose consumer rides the tight one's wakeups for free.)
    use pcpower::trace::WorldCupConfig;
    let m = Experiment::builder()
        .pairs(2)
        .cores(2)
        .duration(SimDuration::from_millis(800))
        .strategy(StrategyKind::pbpl_default())
        .trace(WorldCupConfig {
            mean_rate: 800.0,
            ..WorldCupConfig::quick_test()
        })
        .buffer_capacity(200)
        .max_latencies(vec![
            SimDuration::from_millis(10),
            SimDuration::from_millis(200),
        ])
        .seed(23)
        .run();
    assert!(m.all_items_consumed());
    let tight = &m.pairs[0];
    let loose = &m.pairs[1];
    // The tight consumer's worst latency respects its bound (slack for
    // one slot of quantisation + jitter + queueing).
    assert!(
        tight.max_latency < SimDuration::from_millis(25),
        "tight consumer p100 {}",
        tight.max_latency
    );
    // The loose consumer batches far longer.
    assert!(
        loose.mean_latency() > tight.mean_latency() * 4,
        "loose {} vs tight {}",
        loose.mean_latency(),
        tight.mean_latency()
    );
    // And correspondingly wakes far less often.
    assert!(
        loose.invocations * 2 < tight.invocations,
        "loose {} vs tight {} invocations",
        loose.invocations,
        tight.invocations
    );
}

#[test]
#[should_panic(expected = "one latency bound per pair")]
fn mismatched_latency_count_rejected() {
    Experiment::builder()
        .pairs(3)
        .cores(1)
        .duration(SimDuration::from_millis(50))
        .strategy(StrategyKind::pbpl_default())
        .trace(WorldCupConfig::quick_test())
        .max_latencies(vec![SimDuration::from_millis(10)])
        .run();
}

#[test]
fn golden_trace_digest_is_stable() {
    // Golden regression for the event-trace schema and instrumentation:
    // the paper-default workload at a fixed seed must always emit the
    // exact same event stream — any change to emission sites, event
    // payloads or JSON encoding shows up as a digest change and must be
    // reviewed (and this constant updated) deliberately.
    use pcpower::trace_events::Recorder;
    let run_digest = || {
        let recorder = Recorder::new();
        let m = Experiment::builder()
            .pairs(2)
            .cores(2)
            .duration(SimDuration::from_millis(100))
            .strategy(StrategyKind::pbpl_default())
            .trace(WorldCupConfig::paper_default())
            .buffer_capacity(25)
            .seed(1)
            .record_events(recorder.handle())
            .run();
        assert!(m.all_items_consumed());
        let log = recorder.take();
        assert_eq!(log.dropped, 0, "golden run must fit the recorder");
        assert!(!log.events.is_empty());
        let report = pc_bench::oracle::check(&log);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        log.digest()
    };
    let digest = run_digest();
    assert_eq!(digest, run_digest(), "trace must be deterministic");
    assert_eq!(
        digest, GOLDEN_TRACE_DIGEST,
        "event stream changed — if intentional, update GOLDEN_TRACE_DIGEST"
    );
}

/// See [`golden_trace_digest_is_stable`].
const GOLDEN_TRACE_DIGEST: u64 = 12150806464438147394;

#[test]
fn golden_chaos_trace_digest_is_stable() {
    // Same contract as `golden_trace_digest_is_stable`, for a faulty
    // cell: the rate-shock scenario on degraded PBPL at a fixed seed
    // pins the fault-injection sites, the `FaultInjected`/`FaultRecovered`
    // payloads and the watchdog's resize behaviour. A digest change
    // means the chaos stream changed — review and update deliberately.
    use pc_bench::chaos::{chaos_oracle, run_chaos_cell, ChaosCellSpec};
    use pc_bench::exp::Protocol;
    use pcpower::faults::FaultScenario;
    let protocol = Protocol {
        duration: SimDuration::from_millis(100),
        replicates: 1,
        base_seed: 1,
        trace: WorldCupConfig::paper_default(),
        threads: 1,
    };
    let cell = ChaosCellSpec {
        strategy: StrategyKind::pbpl_degraded(),
        scenario: FaultScenario::RateShock,
        replicate: 0,
    };
    let run_digest = || {
        let (m, log) = run_chaos_cell(&protocol, &cell);
        assert!(m.all_items_consumed());
        assert_eq!(log.dropped, 0, "golden chaos run must fit the recorder");
        let report = chaos_oracle(&log);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        log.digest()
    };
    let digest = run_digest();
    assert_eq!(digest, run_digest(), "chaos trace must be deterministic");
    assert_eq!(
        digest, GOLDEN_CHAOS_TRACE_DIGEST,
        "chaos event stream changed — if intentional, update GOLDEN_CHAOS_TRACE_DIGEST"
    );
}

/// See [`golden_chaos_trace_digest_is_stable`].
const GOLDEN_CHAOS_TRACE_DIGEST: u64 = 15941635301589091553;

#[test]
fn degradation_strictly_reduces_consecutive_overflows_under_rate_shock() {
    // The acceptance bar for the degradation watchdog: on the rate-shock
    // scenario PBPL(degraded) sustains strictly fewer consecutive
    // overflow wakeups than vanilla PBPL in *every* replicate, and on
    // the fault-free baseline it never schedules more wakeups than
    // vanilla (the watchdog must not buy robustness with energy).
    //
    // The 2 s horizon is load-bearing: long enough for several WorldCup
    // burst clusters and a full shock window, so the comparison measures
    // the policy rather than boundary noise.
    use pc_bench::chaos::{execute_chaos, recovery_metrics, ChaosCellSpec};
    use pc_bench::exp::Protocol;
    use pcpower::faults::FaultScenario;
    let protocol = Protocol {
        duration: SimDuration::from_millis(2000),
        replicates: 3,
        base_seed: 1,
        trace: WorldCupConfig::paper_default(),
        threads: 4,
    };
    let mut cells = Vec::new();
    for scenario in [FaultScenario::RateShock, FaultScenario::Baseline] {
        for strategy in [StrategyKind::pbpl_default(), StrategyKind::pbpl_degraded()] {
            for replicate in 0..protocol.replicates {
                cells.push(ChaosCellSpec {
                    strategy: strategy.clone(),
                    scenario,
                    replicate,
                });
            }
        }
    }
    let results = execute_chaos(&protocol, &cells, protocol.threads);
    let metric = |scenario: FaultScenario, degraded: bool, replicate: usize| {
        let i = cells
            .iter()
            .position(|c| {
                c.scenario == scenario
                    && c.replicate == replicate
                    && matches!(&c.strategy, StrategyKind::Pbpl(cfg)
                        if cfg.degrade.enabled == degraded)
            })
            .expect("cell exists");
        recovery_metrics(&results[i].1)
    };
    for replicate in 0..protocol.replicates {
        let vanilla = metric(FaultScenario::RateShock, false, replicate);
        let degraded = metric(FaultScenario::RateShock, true, replicate);
        assert!(
            degraded.consec_overflow_wakes < vanilla.consec_overflow_wakes,
            "replicate {replicate}: degraded sustained {} consecutive overflow \
             wakes vs vanilla {} — the watchdog must strictly reduce thrashing \
             under a rate shock",
            degraded.consec_overflow_wakes,
            vanilla.consec_overflow_wakes
        );
        let vanilla = metric(FaultScenario::Baseline, false, replicate);
        let degraded = metric(FaultScenario::Baseline, true, replicate);
        assert!(
            degraded.scheduled_wakes <= vanilla.scheduled_wakes,
            "replicate {replicate}: degraded scheduled {} wakes vs vanilla {} \
             on the fault-free baseline — degradation must not cost energy \
             when nothing is wrong",
            degraded.scheduled_wakes,
            vanilla.scheduled_wakes
        );
    }
}

#[test]
fn recording_does_not_change_metrics() {
    // The trace layer is purely observational: energy and item counts
    // are bit-identical with and without a recorder attached. This is
    // the property that lets `suite --trace` keep `results/suite.json`
    // byte-stable.
    use pcpower::trace_events::Recorder;
    let build = || {
        Experiment::builder()
            .pairs(3)
            .cores(2)
            .duration(SimDuration::from_millis(200))
            .strategy(StrategyKind::pbpl_default())
            .trace(WorldCupConfig::quick_test())
            .buffer_capacity(25)
            .seed(9)
    };
    let recorder = Recorder::new();
    let with = build().record_events(recorder.handle()).run();
    let without = build().run();
    assert_eq!(with.items_produced, without.items_produced);
    assert_eq!(with.items_consumed, without.items_consumed);
    assert_eq!(
        with.energy.energy_j.to_bits(),
        without.energy.energy_j.to_bits()
    );
    assert!(!recorder.take().events.is_empty());
}

#[test]
#[should_panic(expected = "start order")]
fn out_of_order_core_spans_are_rejected() {
    // Negative test for the Core::add_active_span precondition: a span
    // starting before an already-reported span must panic loudly, not
    // silently corrupt the timeline the energy model integrates.
    use pcpower::sim::{Core, CoreId};
    let mut core = Core::new(CoreId(0));
    core.add_active_span(SimTime::from_millis(10), SimTime::from_millis(12));
    core.add_active_span(SimTime::from_millis(4), SimTime::from_millis(6));
}

#[test]
#[should_panic(expected = "ends before it starts")]
fn inverted_core_span_is_rejected() {
    use pcpower::sim::{Core, CoreId};
    let mut core = Core::new(CoreId(0));
    core.add_active_span(SimTime::from_millis(10), SimTime::from_millis(5));
}

//! Integration tests tying the simulator's measurements back to the
//! paper's formal objects (§IV): the γ item-count (Eq. 1), the wakeup
//! objective (Eqs. 3–4), and the slot-alignment objective (Eq. 7).

use pcpower::core::model::{alignment_objective, Invocation};
use pcpower::core::{gamma_count, wakeup_objective, PairId, SlotTrack};
use pcpower::sim::{SimDuration, SimTime};
use pcpower::trace::WorldCupConfig;

#[test]
fn gamma_agrees_with_trace_counts() {
    let cfg = WorldCupConfig::quick_test();
    let trace = cfg.generate(5);
    for (a, b) in [(0u64, 20u64), (10, 60), (50, 100), (99, 100)] {
        let from = SimTime::from_millis(a);
        let to = SimTime::from_millis(b);
        assert_eq!(
            gamma_count(trace.times(), from, to),
            trace.count_between(from, to)
        );
    }
    // γ over the full horizon is the trace length.
    assert_eq!(
        gamma_count(trace.times(), SimTime::ZERO, trace.horizon()),
        trace.len()
    );
}

#[test]
fn grouping_reduces_the_wakeup_objective() {
    // The paper's Figure 6 in executable form: the same 9 invocations of
    // three consumers cost 9 wakeups spread out, 3 when latched onto
    // shared slots.
    let busy = SimDuration::from_micros(50);
    let spread: Vec<Invocation> = (0..9)
        .map(|k| Invocation {
            consumer: PairId(k % 3),
            core: 0,
            at: SimTime::from_millis(3 * k as u64 + 1),
            busy,
        })
        .collect();
    let track = SlotTrack::new(SimDuration::from_millis(9));
    let aligned: Vec<Invocation> = (0..9)
        .map(|k| {
            let slot = track.slot_start((k / 3) as u64);
            Invocation {
                consumer: PairId(k % 3),
                core: 0,
                // Consumers run back to back at the slot.
                at: slot + busy * (k % 3) as u64,
                busy,
            }
        })
        .collect();
    assert_eq!(wakeup_objective(&spread, 1), 9);
    assert_eq!(wakeup_objective(&aligned, 1), 3);
}

#[test]
fn alignment_objective_zero_iff_on_slots() {
    let track = SlotTrack::new(SimDuration::from_millis(10));
    let g = |t: SimTime| track.g(t);
    let on_slots: Vec<Invocation> = (1..5)
        .map(|k| Invocation {
            consumer: PairId(0),
            core: 0,
            at: track.slot_start(k),
            busy: SimDuration::from_micros(10),
        })
        .collect();
    assert_eq!(alignment_objective(&on_slots, g), SimDuration::ZERO);

    let off: Vec<Invocation> = on_slots
        .iter()
        .map(|inv| Invocation {
            at: inv.at + SimDuration::from_millis(3),
            ..*inv
        })
        .collect();
    assert_eq!(
        alignment_objective(&off, g),
        SimDuration::from_millis(12) // 4 invocations × 3ms
    );
}

#[test]
fn objective_is_additive_across_cores() {
    let busy = SimDuration::from_micros(10);
    let mk = |core: usize, at_ms: u64| Invocation {
        consumer: PairId(core),
        core,
        at: SimTime::from_millis(at_ms),
        busy,
    };
    let invs = vec![mk(0, 1), mk(0, 5), mk(1, 1), mk(1, 5)];
    assert_eq!(wakeup_objective(&invs, 2), 4);
    // Folded onto one core, the simultaneous invocations overlap and
    // merge — cross-core wakeups never merge, same-core ones do. That
    // asymmetry is exactly why consumers latch per core.
    let single: Vec<Invocation> = invs.iter().map(|i| Invocation { core: 0, ..*i }).collect();
    assert_eq!(wakeup_objective(&single, 1), 2);
}

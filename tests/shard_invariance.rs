//! Shard invariance: the sharded coordination layer (DESIGN.md §11) is a
//! *locking layout*, not a semantics change. For any shard count the sim
//! must produce bit-identical energy, identical counters and an
//! identical event stream — this is the contract that lets the CI scale
//! job byte-compare `results/scale.json` across shard counts, and lets
//! `suite.json`/`chaos.json` stay byte-stable while the code underneath
//! them is sharded.

use pc_bench::oracle;
use pcpower::core::{Experiment, RunMetrics, StrategyKind};
use pcpower::faults::{Fault, FaultKind, FaultPlan};
use pcpower::sim::SimDuration;
use pcpower::trace::WorldCupConfig;
use pcpower::trace_events::{Recorder, TraceLog};

fn traced_run(
    strategy: StrategyKind,
    shards: usize,
    plan: FaultPlan,
    seed: u64,
) -> (RunMetrics, TraceLog) {
    let recorder = Recorder::new();
    let m = Experiment::builder()
        .pairs(5)
        .cores(2)
        .duration(SimDuration::from_millis(150))
        .strategy(strategy)
        .trace(WorldCupConfig::quick_test())
        .buffer_capacity(25)
        .seed(seed)
        .shards(shards)
        .faults(plan)
        .record_events(recorder.handle())
        .run();
    let log = recorder.take();
    assert_eq!(log.dropped, 0, "invariance runs must fit the recorder");
    (m, log)
}

/// Pool squeeze over the middle of the run — the fault that actually
/// exercises the sharded pool's round-robin acquire and reverse-order
/// restore.
fn squeeze_plan() -> FaultPlan {
    FaultPlan::new(vec![Fault {
        id: 0,
        start_ns: 30_000_000,
        end_ns: 110_000_000,
        kind: FaultKind::PoolSqueeze { units: 70 },
    }])
}

#[test]
fn shard_count_never_changes_bits_counters_or_trace() {
    for strategy in [
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::pbpl_default(),
    ] {
        let (base, base_log) = traced_run(strategy.clone(), 1, FaultPlan::empty(), 9);
        assert!(base.all_items_consumed(), "{}", strategy.name());
        for shards in [2usize, 4, 7] {
            let (m, log) = traced_run(strategy.clone(), shards, FaultPlan::empty(), 9);
            let label = format!("{} shards={shards}", strategy.name());
            assert_eq!(
                m.energy.energy_j.to_bits(),
                base.energy.energy_j.to_bits(),
                "energy bits diverged: {label}"
            );
            assert_eq!(m.energy.wakeups, base.energy.wakeups, "{label}");
            assert_eq!(m.items_produced, base.items_produced, "{label}");
            assert_eq!(m.items_consumed, base.items_consumed, "{label}");
            assert_eq!(m.slot_fires, base.slot_fires, "{label}");
            assert_eq!(m.scheduled_wakeups(), base.scheduled_wakeups(), "{label}");
            assert_eq!(log.digest(), base_log.digest(), "trace diverged: {label}");
        }
    }
}

#[test]
fn shard_count_invariant_under_pool_squeeze() {
    // The squeeze path (FaultRuntime::fault_start/fault_end) walks the
    // sharded pool with a provenance ledger; the grant totals and every
    // trace payload must still match the single-shard pool exactly.
    let (base, base_log) = traced_run(StrategyKind::pbpl_default(), 1, squeeze_plan(), 13);
    assert!(base.all_items_consumed());
    let base_report = oracle::check(&base_log);
    assert!(
        base_report.is_clean(),
        "violations: {:?}",
        base_report.violations
    );
    for shards in [2usize, 4] {
        let (m, log) = traced_run(StrategyKind::pbpl_default(), shards, squeeze_plan(), 13);
        assert_eq!(
            m.energy.energy_j.to_bits(),
            base.energy.energy_j.to_bits(),
            "energy bits diverged under squeeze at shards={shards}"
        );
        assert_eq!(
            log.digest(),
            base_log.digest(),
            "squeeze trace diverged at shards={shards}"
        );
        let report = oracle::check(&log);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }
}

#[test]
fn targeted_shard_squeeze_replays_clean() {
    // PoolSqueezeShard is the one fault that is *deliberately* shard-
    // aware (it drains a single sub-pool), so it cannot promise
    // cross-shard-count bit equality — what it must uphold is the
    // squeeze ledger: every granted unit is returned at the window's
    // end and the oracle's conservation replay stays clean, with
    // overlapping windows on distinct shards.
    //
    // A quiet constant-rate workload (no bursts, demand far below the
    // PBPL floor) makes every buffer shrink to its floor and *stay*
    // there, so the sub-pools hold durable availability for the squeezes
    // to drain — under the bursty default the freed units are re-acquired
    // by growing neighbours within the same slot and targeted grants are
    // legitimately zero. PBPL's first resize decision needs its history
    // window (4 slots × Δ=25 ms), so availability appears at t=100 ms and
    // the fault windows must open after that.
    let quiet = WorldCupConfig {
        mean_rate: 40.0,
        diurnal_swing: 1.0,
        bursts: 0,
        modulation: vec![],
        cluster_size_mean: 1.0,
        ..WorldCupConfig::quick_test()
    };
    let plan = FaultPlan::new(vec![
        Fault {
            id: 0,
            start_ns: 110_000_000,
            end_ns: 150_000_000,
            kind: FaultKind::PoolSqueezeShard {
                shard: 1,
                units: 20,
            },
        },
        Fault {
            id: 1,
            start_ns: 120_000_000,
            end_ns: 160_000_000,
            kind: FaultKind::PoolSqueezeShard {
                shard: 3,
                units: 25,
            },
        },
    ]);
    let recorder = Recorder::new();
    let m = Experiment::builder()
        .pairs(5)
        .cores(2)
        .duration(SimDuration::from_millis(200))
        .strategy(StrategyKind::pbpl_default())
        .trace(quiet)
        .buffer_capacity(25)
        .seed(17)
        .shards(4)
        .faults(plan)
        .record_events(recorder.handle())
        .run();
    let log = recorder.take();
    assert_eq!(log.dropped, 0);
    assert!(m.all_items_consumed(), "targeted squeeze dropped items");
    let injected: Vec<u64> = log
        .events
        .iter()
        .filter_map(|ev| match &ev.kind {
            pcpower::trace_events::TraceEvent::FaultInjected { kind, param, .. }
                if kind == "pool_squeeze_shard" =>
            {
                Some(*param)
            }
            _ => None,
        })
        .collect();
    assert_eq!(injected.len(), 2, "both shard squeezes must fire");
    assert!(
        injected.iter().all(|&granted| granted > 0),
        "targeted squeezes must actually drain their shards: {injected:?}"
    );
    let report = oracle::check(&log);
    assert!(report.is_clean(), "violations: {:?}", report.violations);
}

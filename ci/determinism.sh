#!/usr/bin/env bash
# Determinism-gate helper (DESIGN.md §9): every deterministic result
# file must be a pure function of (seed, config) — worker-thread count,
# shard count and tracing must never change its bytes. CI proves that by
# running the same binary under different knobs and byte-comparing the
# output, which used to be copy-pasted run/stash/cmp step triples.
#
#   ci/determinism.sh baseline KEY FILE[,FILE...] [-- COMMAND...]
#       Run COMMAND (if given), then stash each FILE under
#       .determinism/KEY/.
#   ci/determinism.sh check KEY FILE[,FILE...] [-- COMMAND...]
#       Run COMMAND (if given), then byte-compare each FILE against the
#       KEY stash; any difference fails the build.
#
# Omitting COMMAND stashes/compares the files already on disk — used
# when one binary invocation serves as the check for one file and the
# baseline for another (e.g. a traced suite run checks suite.json and
# baselines suite_trace.jsonl).
set -euo pipefail

usage() {
    echo "usage: ci/determinism.sh baseline|check KEY FILE[,FILE...] [-- COMMAND...]" >&2
    exit 2
}

mode=${1:-} key=${2:-} files=${3:-}
[ -n "$mode" ] && [ -n "$key" ] && [ -n "$files" ] || usage
shift 3
if [ "${1:-}" = "--" ]; then
    shift
    [ "$#" -gt 0 ] || usage
    "$@"
elif [ "$#" -gt 0 ]; then
    usage
fi

stash=".determinism/$key"
IFS=',' read -r -a file_list <<<"$files"

case "$mode" in
baseline)
    mkdir -p "$stash"
    for f in "${file_list[@]}"; do
        cp "$f" "$stash/$(basename "$f")"
        echo "determinism: stashed $f -> $stash/"
    done
    ;;
check)
    for f in "${file_list[@]}"; do
        cmp "$f" "$stash/$(basename "$f")"
        echo "determinism: $f is byte-identical to $stash/$(basename "$f")"
    done
    ;;
*)
    usage
    ;;
esac

//! P-states, DVFS and the race-to-idle analysis (§II of the paper).
//!
//! The paper's background section grounds its wakeup-minimisation
//! strategy in three facts:
//!
//! 1. Dynamic power follows `P_d = C · V² · f` — lower frequency (with
//!    its lower stable voltage) cuts power superlinearly but stretches
//!    execution time.
//! 2. **Race-to-idle**: because idle power is far below active power at
//!    *any* frequency, finishing fast and sleeping deep often beats
//!    running slow ("it is more power efficient to execute the task at
//!    hand faster … and then go to idle mode").
//! 3. Race-to-idle "cannot be used as a standalone strategy" — each
//!    wakeup costs energy, so the *number* of wakeups must be minimised
//!    too (the paper's Fig. 1, and the whole point of PBPL).
//!
//! This module makes those trade-offs computable: a [`PState`] table, an
//! energy comparator for running a work quantum at each state, and the
//! Fig. 1 grouped-versus-fragmented idle comparison.

use crate::cstate::CStateLadder;
use pc_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One frequency/voltage operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Name (`"P0"` is highest performance).
    pub name: String,
    /// Clock frequency, Hz.
    pub freq_hz: f64,
    /// Supply voltage at this frequency, volts.
    pub voltage: f64,
}

/// A DVFS-capable core model: a set of P-states plus the effective
/// switched capacitance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PStateTable {
    states: Vec<PState>,
    /// Effective switched capacitance per cycle, farads.
    capacitance: f64,
    /// Frequency-independent leakage/uncore power, watts.
    static_power_w: f64,
}

impl PStateTable {
    /// Builds a table; states must be ordered fastest first with
    /// non-increasing frequency and voltage.
    pub fn new(states: Vec<PState>, capacitance: f64, static_power_w: f64) -> Self {
        assert!(!states.is_empty(), "need at least one P-state");
        for s in &states {
            assert!(
                s.freq_hz > 0.0 && s.voltage > 0.0,
                "P-state must be positive"
            );
        }
        for w in states.windows(2) {
            assert!(
                w[1].freq_hz <= w[0].freq_hz && w[1].voltage <= w[0].voltage,
                "P-states must be ordered fastest/highest-voltage first"
            );
        }
        PStateTable {
            states,
            capacitance,
            static_power_w,
        }
    }

    /// A Cortex-A15-class table (1.6 GHz @ 1.1 V down to 600 MHz @
    /// 0.85 V) calibrated so P0 active power ≈ the 1.6 W used by
    /// [`crate::PowerModel::exynos_like`].
    pub fn cortex_a15_like() -> Self {
        PStateTable::new(
            vec![
                PState {
                    name: "P0".into(),
                    freq_hz: 1.6e9,
                    voltage: 1.10,
                },
                PState {
                    name: "P1".into(),
                    freq_hz: 1.2e9,
                    voltage: 1.00,
                },
                PState {
                    name: "P2".into(),
                    freq_hz: 0.9e9,
                    voltage: 0.92,
                },
                PState {
                    name: "P3".into(),
                    freq_hz: 0.6e9,
                    voltage: 0.85,
                },
            ],
            7.0e-10,
            0.25,
        )
    }

    /// The P-states, fastest first.
    pub fn states(&self) -> &[PState] {
        &self.states
    }

    /// Eq. from §II: dynamic power `P_d = C·V²·f` plus static power, at
    /// state `idx`.
    pub fn active_power_w(&self, idx: usize) -> f64 {
        let s = &self.states[idx];
        self.capacitance * s.voltage * s.voltage * s.freq_hz + self.static_power_w
    }

    /// Time to execute `cycles` of work at state `idx`.
    pub fn exec_time(&self, idx: usize, cycles: f64) -> SimDuration {
        SimDuration::from_secs_f64(cycles / self.states[idx].freq_hz)
    }

    /// Energy to execute `cycles` of work at state `idx` and then idle
    /// for the remainder of a `window`, with the idle state chosen by
    /// residency from `ladder`. Returns `None` if the work does not fit
    /// in the window at this state.
    pub fn window_energy_j(
        &self,
        idx: usize,
        cycles: f64,
        window: SimDuration,
        ladder: &CStateLadder,
    ) -> Option<f64> {
        let busy = self.exec_time(idx, cycles);
        if busy > window {
            return None;
        }
        let idle = window - busy;
        let active_e = busy.as_secs_f64() * self.active_power_w(idx);
        let cidx = ladder.deepest_fitting(idle);
        let idle_e = ladder.idle_energy(cidx, idle, self.active_power_w(idx));
        Some(active_e + idle_e)
    }

    /// The race-to-idle question (§II): which P-state minimises the
    /// energy of `cycles` of work per `window`? Returns the state index
    /// and its energy.
    pub fn best_state(
        &self,
        cycles: f64,
        window: SimDuration,
        ladder: &CStateLadder,
    ) -> Option<(usize, f64)> {
        (0..self.states.len())
            .filter_map(|i| {
                self.window_energy_j(i, cycles, window, ladder)
                    .map(|e| (i, e))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// The paper's Figure 1 in numbers: energy of executing `n_batches`
/// work quanta of `cycles` each within `window`, either *fragmented*
/// (each quantum wakes the core separately, idling in between) or
/// *grouped* (one wakeup, all quanta back to back, one long idle).
/// Returns `(fragmented_j, grouped_j)`.
pub fn fig1_grouping_comparison(
    table: &PStateTable,
    ladder: &CStateLadder,
    n_batches: u64,
    cycles: f64,
    window: SimDuration,
    wakeup_energy_j: f64,
) -> (f64, f64) {
    assert!(n_batches > 0, "need at least one batch");
    let sub_window = window / n_batches;
    let busy = table.exec_time(0, cycles);
    assert!(busy * n_batches <= window, "work must fit the window");

    // Fragmented: n wakeups, n short idles.
    let per = table
        .window_energy_j(0, cycles, sub_window, ladder)
        .expect("fits by assertion");
    let fragmented = n_batches as f64 * (per + wakeup_energy_j);

    // Grouped: one wakeup, one long idle.
    let grouped = table
        .window_energy_j(0, cycles * n_batches as f64, window, ladder)
        .expect("fits by assertion")
        + wakeup_energy_j;
    (fragmented, grouped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::cortex_a15_like()
    }

    fn ladder() -> CStateLadder {
        CStateLadder::exynos_like()
    }

    #[test]
    fn p0_matches_exynos_calibration() {
        let p0 = table().active_power_w(0);
        assert!((p0 - 1.6).abs() < 0.1, "P0 power {p0}");
    }

    #[test]
    fn lower_pstates_draw_less_but_run_longer() {
        let t = table();
        for w in (0..t.states().len()).collect::<Vec<_>>().windows(2) {
            assert!(t.active_power_w(w[1]) < t.active_power_w(w[0]));
            assert!(t.exec_time(w[1], 1e9) > t.exec_time(w[0], 1e9));
        }
    }

    #[test]
    fn race_to_idle_wins_when_static_power_dominates() {
        // §II's premise holds when frequency-independent power (uncore,
        // leakage) dominates: every extra active millisecond burns
        // static watts, so finish fast and let the deep C-state take
        // over. This regime is why "hardware manufacturers are moving
        // towards approaches that increase CPU residency in deeper
        // C-states".
        let states = table().states().to_vec();
        let static_heavy = PStateTable::new(states, 3.0e-10, 1.0);
        let (best, _) = static_heavy
            .best_state(8e6, SimDuration::from_millis(50), &ladder())
            .expect("fits");
        assert_eq!(best, 0, "race-to-idle should pick P0");
    }

    #[test]
    fn dvfs_wins_when_voltage_scaling_dominates() {
        // The counter-regime the paper's §II also names (DVFS "controls
        // power consumption" via P = C·V²·f): with strong voltage
        // scaling and little static power, running slower-but-lower-V
        // beats racing to idle. Race-to-idle "cannot be used as a
        // standalone strategy".
        let (best, _) = table()
            .best_state(8e6, SimDuration::from_millis(50), &ladder())
            .expect("fits");
        assert!(best > 0, "V² savings should beat racing here, got P{best}");
    }

    #[test]
    fn tight_window_prefers_low_voltage_state() {
        // Almost no slack: the idle opportunity is too short for deep
        // C-states to pay, so a low-voltage state wins.
        let t = table();
        let cycles = 0.55e9;
        let window = t.exec_time(3, cycles); // exactly fits the slowest state
        let (best, _) = t.best_state(cycles, window, &ladder()).expect("fits");
        assert!(best >= 2, "low-voltage state must win, got P{best}");
    }

    #[test]
    fn infeasible_state_is_skipped() {
        let t = table();
        // Window fits only the two fastest states.
        let cycles = 1.0e9;
        let window = t.exec_time(1, cycles);
        assert!(t.window_energy_j(3, cycles, window, &ladder()).is_none());
        let (best, _) = t.best_state(cycles, window, &ladder()).expect("P0/P1 fit");
        assert!(best <= 1);
    }

    #[test]
    fn fig1_grouping_saves_energy() {
        // The paper's Figure 1: grouped peaks beat fragmented peaks.
        let (fragmented, grouped) = fig1_grouping_comparison(
            &table(),
            &ladder(),
            8,
            2e6,
            SimDuration::from_millis(20),
            120e-6,
        );
        assert!(
            grouped < fragmented,
            "grouped {grouped} must beat fragmented {fragmented}"
        );
        // The saving includes 7 avoided wakeups.
        assert!(fragmented - grouped > 7.0 * 120e-6);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_states_rejected() {
        PStateTable::new(
            vec![
                PState {
                    name: "a".into(),
                    freq_hz: 1e9,
                    voltage: 1.0,
                },
                PState {
                    name: "b".into(),
                    freq_hz: 2e9,
                    voltage: 1.1,
                },
            ],
            1e-9,
            0.1,
        );
    }
}

//! CSV export of timelines and meter series — the bridge from simulation
//! output to whatever plots the figures (gnuplot, matplotlib, a
//! spreadsheet).
//!
//! Columns are stable and documented here; all times in seconds, power
//! in watts.

use crate::meter::MeterSample;
use pc_sim::core::CoreReport;
use pc_sim::CoreState;
use std::fmt::Write as _;

/// One core's idle/active timeline as CSV:
/// `start_s,end_s,state` with `state ∈ {idle, active}`.
pub fn timeline_csv(report: &CoreReport) -> String {
    let mut out = String::from("start_s,end_s,state\n");
    for iv in &report.timeline {
        let state = match iv.state {
            CoreState::Active => "active",
            CoreState::Idle => "idle",
        };
        writeln!(
            out,
            "{:.9},{:.9},{state}",
            iv.start.as_secs_f64(),
            iv.end.as_secs_f64()
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// A meter sample series as CSV:
/// `window_start_s,wakeups_per_sec,usage_ms_per_sec`.
pub fn meter_csv(samples: &[MeterSample]) -> String {
    let mut out = String::from("window_start_s,wakeups_per_sec,usage_ms_per_sec\n");
    for s in samples {
        writeln!(
            out,
            "{:.6},{:.3},{:.6}",
            s.start.as_secs_f64(),
            s.wakeups_per_sec,
            s.usage_ms_per_sec
        )
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::Meter;
    use pc_sim::{Core, CoreId, SimDuration, SimTime};

    fn report() -> CoreReport {
        let mut c = Core::new(CoreId(0));
        c.add_active_span(SimTime::from_millis(10), SimTime::from_millis(20));
        c.add_active_span(SimTime::from_millis(50), SimTime::from_millis(55));
        c.finish(SimTime::from_millis(100))
    }

    #[test]
    fn timeline_csv_shape() {
        let csv = timeline_csv(&report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "start_s,end_s,state");
        // idle, active, idle, active, idle = 5 intervals.
        assert_eq!(lines.len(), 6);
        assert!(lines[1].ends_with(",idle"));
        assert!(lines[2].ends_with(",active"));
        assert!(lines[2].starts_with("0.010000000,0.020000000"));
    }

    #[test]
    fn timeline_csv_covers_run() {
        let csv = timeline_csv(&report());
        let last = csv.lines().last().unwrap();
        assert!(last.contains("0.100000000"), "{last}");
    }

    #[test]
    fn meter_csv_shape() {
        let samples = Meter::new(SimDuration::from_millis(25)).sample(&report());
        let csv = meter_csv(&samples);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "window_start_s,wakeups_per_sec,usage_ms_per_sec");
        assert_eq!(lines.len(), 1 + samples.len());
        // First window (0..25ms) holds one wakeup → 40/s.
        assert!(lines[1].starts_with("0.000000,40.000"), "{}", lines[1]);
    }

    #[test]
    fn csv_parses_back_numerically() {
        let csv = timeline_csv(&report());
        for line in csv.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 3);
            let s: f64 = cols[0].parse().unwrap();
            let e: f64 = cols[1].parse().unwrap();
            assert!(e >= s);
        }
    }
}

//! # pc-power — CPU power modelling and energy accounting
//!
//! Substitute for the paper's measurement rig (an Agilent Infiniium scope
//! sampling the voltage drop across a supply-line resistor, plus
//! PowerTop). Given the per-core idle/active timelines produced by
//! `pc-sim`, this crate computes:
//!
//! * [`cstate`] — a C-state ladder (power level, entry/exit latency,
//!   target residency) with an Exynos-5-like calibration.
//! * [`governor`] — idle-state selection: an oracle governor (deepest
//!   state whose residency fits the actual idle interval) and a
//!   menu-governor-like predictive one for ablations.
//! * [`model`] — the [`PowerModel`]: ladder + wakeup energy + per-item
//!   processing cost + board baseline.
//! * [`account`] — integration of a core timeline into joules, average
//!   watts, per-C-state residency and the paper's "extra watts over
//!   baseline" metric.
//! * [`meter`] — a PowerTop-like sampler producing wakeups/s and usage
//!   (ms/s) series over windows.
//! * [`pstate`] — §II background made computable: P-states (P = C·V²·f),
//!   the race-to-idle energy comparison, and the paper's Figure 1
//!   grouped-vs-fragmented wakeup analysis.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod account;
pub mod cstate;
pub mod export;
pub mod governor;
pub mod meter;
pub mod model;
pub mod pstate;

pub use account::{account_core, account_cores, EnergyReport};
pub use cstate::{CState, CStateLadder};
pub use export::{meter_csv, timeline_csv};
pub use governor::{GovernorKind, IdleGovernor, MenuGovernor, OracleGovernor};
pub use meter::{Meter, MeterSample};
pub use model::PowerModel;
pub use pstate::{fig1_grouping_comparison, PState, PStateTable};

//! Idle-state governors: which C-state does a core enter for an idle
//! interval?
//!
//! Energy accounting over a *finished* simulation can use the
//! [`OracleGovernor`] — it sees the true length of each idle interval and
//! picks the deepest state whose target residency fits, which is the
//! energy-optimal choice and mirrors what the paper's post-hoc
//! measurements captured. The [`MenuGovernor`] instead *predicts* the
//! coming idle length from recent history, like the Linux `menu`
//! governor the Linaro kernel shipped; comparing the two in the
//! ablation bench quantifies how much PBPL's grouped wakeups help a
//! realistic governor reach deep states.

use crate::cstate::CStateLadder;
use pc_sim::SimDuration;

/// Chooses a C-state index for each successive idle interval.
pub trait IdleGovernor {
    /// Called once per idle interval, in timeline order, with the actual
    /// interval length; returns the index into the ladder to charge.
    fn select(&mut self, ladder: &CStateLadder, idle_len: SimDuration) -> usize;

    /// Resets any learned state between runs.
    fn reset(&mut self) {}
}

/// Picks the deepest state that fits the actual idle length —
/// energy-optimal with hindsight.
#[derive(Debug, Clone, Default)]
pub struct OracleGovernor;

impl IdleGovernor for OracleGovernor {
    fn select(&mut self, ladder: &CStateLadder, idle_len: SimDuration) -> usize {
        ladder.deepest_fitting(idle_len)
    }
}

/// A menu-like predictive governor: predicts the next idle length as a
/// correction-factor-weighted moving average of recent idle lengths, then
/// picks the deepest state fitting the *prediction*. Mispredictions charge
/// real energy: a too-deep pick on a short idle wastes transition energy,
/// a too-shallow pick on a long idle wastes residency power — both
/// penalties appear in the accounting because the accountant charges the
/// *selected* state against the *actual* interval.
#[derive(Debug, Clone)]
pub struct MenuGovernor {
    history: [SimDuration; MenuGovernor::HISTORY],
    next: usize,
    filled: usize,
}

impl MenuGovernor {
    const HISTORY: usize = 8;

    /// A fresh governor with no history (predicts pessimistically short
    /// idles until warmed up).
    pub fn new() -> Self {
        MenuGovernor {
            history: [SimDuration::ZERO; Self::HISTORY],
            next: 0,
            filled: 0,
        }
    }

    fn predict(&self) -> SimDuration {
        if self.filled == 0 {
            return SimDuration::ZERO;
        }
        let sum: SimDuration = self.history[..self.filled].iter().copied().sum();
        sum / self.filled as u64
    }
}

impl Default for MenuGovernor {
    fn default() -> Self {
        Self::new()
    }
}

impl IdleGovernor for MenuGovernor {
    fn select(&mut self, ladder: &CStateLadder, idle_len: SimDuration) -> usize {
        let choice = ladder.deepest_fitting(self.predict());
        self.history[self.next] = idle_len;
        self.next = (self.next + 1) % Self::HISTORY;
        self.filled = (self.filled + 1).min(Self::HISTORY);
        choice
    }

    fn reset(&mut self) {
        *self = MenuGovernor::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cstate::CStateLadder;

    #[test]
    fn oracle_tracks_interval_exactly() {
        let ladder = CStateLadder::exynos_like();
        let mut g = OracleGovernor;
        assert_eq!(g.select(&ladder, SimDuration::from_micros(1)), 0);
        assert_eq!(g.select(&ladder, SimDuration::from_micros(500)), 1);
        assert_eq!(g.select(&ladder, SimDuration::from_secs(1)), 2);
    }

    #[test]
    fn menu_starts_shallow() {
        let ladder = CStateLadder::exynos_like();
        let mut g = MenuGovernor::new();
        // No history → predicts zero idle → shallowest.
        assert_eq!(g.select(&ladder, SimDuration::from_secs(1)), 0);
    }

    #[test]
    fn menu_learns_long_idles() {
        let ladder = CStateLadder::exynos_like();
        let mut g = MenuGovernor::new();
        for _ in 0..10 {
            g.select(&ladder, SimDuration::from_millis(10));
        }
        // History is now all long idles → predicts long → deepest.
        assert_eq!(g.select(&ladder, SimDuration::from_millis(10)), 2);
    }

    #[test]
    fn menu_backs_off_after_short_idles() {
        let ladder = CStateLadder::exynos_like();
        let mut g = MenuGovernor::new();
        for _ in 0..10 {
            g.select(&ladder, SimDuration::from_millis(10));
        }
        for _ in 0..10 {
            g.select(&ladder, SimDuration::from_micros(10));
        }
        // History flooded with short idles → shallow choice again.
        assert_eq!(g.select(&ladder, SimDuration::from_millis(10)), 0);
    }

    #[test]
    fn menu_reset_forgets() {
        let ladder = CStateLadder::exynos_like();
        let mut g = MenuGovernor::new();
        for _ in 0..10 {
            g.select(&ladder, SimDuration::from_millis(10));
        }
        g.reset();
        assert_eq!(g.select(&ladder, SimDuration::from_millis(10)), 0);
    }
}

/// Selector for the governor used by energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum GovernorKind {
    /// Deepest state that fits the actual idle interval (post-hoc
    /// optimal; the default for reproducing the paper's measurements).
    Oracle,
    /// Menu-like predictive governor: pays real energy for mispredicted
    /// idle lengths, like the Linaro kernel the paper ran.
    Menu,
}

impl GovernorKind {
    /// Instantiates a fresh governor of this kind.
    pub fn build(&self) -> Box<dyn IdleGovernor> {
        match self {
            GovernorKind::Oracle => Box::new(OracleGovernor),
            GovernorKind::Menu => Box::new(MenuGovernor::new()),
        }
    }
}

impl IdleGovernor for Box<dyn IdleGovernor> {
    fn select(&mut self, ladder: &CStateLadder, idle_len: SimDuration) -> usize {
        (**self).select(ladder, idle_len)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;

    #[test]
    fn kinds_build_their_governors() {
        let ladder = CStateLadder::exynos_like();
        let mut oracle = GovernorKind::Oracle.build();
        let mut menu = GovernorKind::Menu.build();
        assert_eq!(oracle.select(&ladder, SimDuration::from_secs(1)), 2);
        assert_eq!(
            menu.select(&ladder, SimDuration::from_secs(1)),
            0,
            "menu starts cold"
        );
    }
}

//! The system power model: everything needed to turn a core activity
//! timeline into joules.
//!
//! The paper's formal model (§IV-A) deliberately simplifies to two states
//! — idle and active — plus a per-wakeup cost ω (Eq. 3). The
//! [`PowerModel`] keeps that structure but grounds each constant in the
//! platform the paper measured (an Arndale Exynos-5 board):
//!
//! * active power per core while executing,
//! * a C-state ladder for idle power (collapsing to a single idle power
//!   if accounting uses only the deepest state),
//! * the wakeup transition energy ω,
//! * the CPU time charged per consumed item (which converts item counts
//!   into active-span lengths), and
//! * per-synchronisation-operation CPU overhead for the lock-based
//!   strategies (what makes Mutex/Sem burn more usage than batchers at
//!   equal item counts, §III-C).

use crate::cstate::CStateLadder;
use pc_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Calibrated power/energy constants for the simulated platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power drawn by one core while executing, watts.
    pub active_power_w: f64,
    /// Idle-state ladder.
    pub ladder: CStateLadder,
    /// Energy of one idle→active transition (the paper's ω), joules.
    ///
    /// Accounting note: ω models the *architectural* wake path (interrupt
    /// dispatch, scheduler, cache refill) and is charged once per wakeup;
    /// the C-state ladder separately charges each idle visit's
    /// *hardware* entry/exit latency at active power. The two costs are
    /// physically distinct and both scale with the wakeup count, so the
    /// paper's single ω corresponds to their sum under this model.
    pub wakeup_energy_j: f64,
    /// CPU time to process one data item.
    pub item_cpu: SimDuration,
    /// Extra CPU time per synchronisation operation (lock/unlock +
    /// condvar signal, or sem wait/post) charged per item by the
    /// item-at-a-time strategies.
    pub sync_op_cpu: SimDuration,
    /// CPU time charged per consumer activation (scheduling + cache
    /// warm-up), independent of batch size.
    pub dispatch_cpu: SimDuration,
    /// Tail window after an item-driven consumer runs dry before its
    /// thread is truly asleep (condvar re-check under lock, futex path,
    /// idle-governor entry). Arrivals inside this window are picked up
    /// without a fresh sleep/wake cycle, which is what keeps a blocking
    /// consumer's wakeups at per-burst rather than per-item granularity.
    pub sleep_entry: SimDuration,
    /// Board baseline power with all measured cores idle-deep, watts.
    /// Subtracted when reporting the paper's "extra watts" metric.
    pub baseline_w: f64,
}

impl PowerModel {
    /// Calibration for the paper's platform class (dual Cortex-A15):
    /// ~1.6 W per active core, ~80 mW deep idle, ω = 120 µJ, 2 µs of CPU
    /// per item, 400 ns per lock round-trip, 5 µs dispatch overhead.
    pub fn exynos_like() -> Self {
        PowerModel {
            active_power_w: 1.6,
            ladder: CStateLadder::exynos_like(),
            wakeup_energy_j: 120e-6,
            item_cpu: SimDuration::from_micros(2),
            sync_op_cpu: SimDuration::from_nanos(400),
            dispatch_cpu: SimDuration::from_micros(5),
            sleep_entry: SimDuration::from_micros(30),
            baseline_w: 2.4,
        }
    }

    /// The power of the deepest idle state, watts.
    pub fn deep_idle_power_w(&self) -> f64 {
        self.ladder
            .states()
            .last()
            .expect("ladder is non-empty by construction")
            .power_w
    }

    /// CPU time for a batch of `n` items consumed in one activation.
    pub fn batch_cpu(&self, n: u64) -> SimDuration {
        self.dispatch_cpu.saturating_add(self.item_cpu * n)
    }

    /// CPU time for `n` items consumed one-at-a-time through a lock
    /// (Mutex/Sem style), including per-item sync overhead.
    pub fn per_item_cpu(&self, n: u64) -> SimDuration {
        self.dispatch_cpu
            .saturating_add((self.item_cpu.saturating_add(self.sync_op_cpu)) * n)
    }

    /// Energy to process `x` items, joules — the paper's `e(x)` term in
    /// the ρ cost function (Eq. 8).
    pub fn item_energy_j(&self, x: f64) -> f64 {
        self.item_cpu.as_secs_f64() * self.active_power_w * x.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exynos_constants_sane() {
        let m = PowerModel::exynos_like();
        assert!(m.active_power_w > m.deep_idle_power_w());
        // ω must dwarf per-item energy — the premise of batching.
        assert!(m.wakeup_energy_j > 10.0 * m.item_energy_j(1.0));
    }

    #[test]
    fn batch_cpu_amortises_dispatch() {
        let m = PowerModel::exynos_like();
        let one_batch = m.batch_cpu(100);
        let hundred_singles = m.batch_cpu(1) * 100;
        assert!(one_batch < hundred_singles);
    }

    #[test]
    fn per_item_cpu_exceeds_batch_cpu() {
        let m = PowerModel::exynos_like();
        assert!(m.per_item_cpu(50) > m.batch_cpu(50));
    }

    #[test]
    fn item_energy_linear_and_clamped() {
        let m = PowerModel::exynos_like();
        let e1 = m.item_energy_j(1.0);
        let e10 = m.item_energy_j(10.0);
        assert!((e10 - 10.0 * e1).abs() < 1e-15);
        assert_eq!(m.item_energy_j(-5.0), 0.0);
    }

    #[test]
    fn zero_items_zero_marginal_cost() {
        let m = PowerModel::exynos_like();
        assert_eq!(m.batch_cpu(0), m.dispatch_cpu);
        assert_eq!(m.item_energy_j(0.0), 0.0);
    }
}

//! C-state ladders (§II of the paper).
//!
//! "C-states are modes at which the CPU operates, differing mainly in
//! their power consumption … generally start at C0 which indicates the
//! CPU is fully active, and gradually increase the number (C1, C2, …)".
//! A [`CStateLadder`] is an ordered list of idle states with three
//! parameters each, mirroring how Linux `cpuidle` describes them:
//!
//! * `power_w` — power drawn while resident in the state;
//! * `transition` — entry+exit latency paid once per visit;
//! * `target_residency` — the minimum stay for the state to be worth
//!   entering (below it, a shallower state costs less energy).

use pc_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One idle state of a core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CState {
    /// Human-readable name (`"C1"`, `"C2"`, …).
    pub name: String,
    /// Power drawn while resident, watts.
    pub power_w: f64,
    /// Combined entry+exit transition latency.
    pub transition: SimDuration,
    /// Minimum residency for the state to pay off.
    pub target_residency: SimDuration,
}

/// An ordered ladder of idle states, shallowest first. Deeper states draw
/// less power but cost more to enter and leave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CStateLadder {
    states: Vec<CState>,
}

impl CStateLadder {
    /// Builds a ladder from shallowest to deepest.
    ///
    /// Panics if empty, or if power levels are not strictly decreasing
    /// with depth, or target residencies not non-decreasing — those
    /// orderings are what makes governor logic well-defined.
    pub fn new(states: Vec<CState>) -> Self {
        assert!(!states.is_empty(), "ladder needs at least one state");
        for w in states.windows(2) {
            assert!(
                w[1].power_w < w[0].power_w,
                "deeper states must draw less power"
            );
            assert!(
                w[1].target_residency >= w[0].target_residency,
                "deeper states must not have shorter target residency"
            );
        }
        CStateLadder { states }
    }

    /// A ladder calibrated to the paper's platform class (Exynos 5 dual
    /// Cortex-A15 under Linaro's power manager): a WFI-like shallow state
    /// and two progressively deeper states down to ~80 mW per core.
    pub fn exynos_like() -> Self {
        CStateLadder::new(vec![
            CState {
                name: "C1-WFI".into(),
                power_w: 0.35,
                transition: SimDuration::from_micros(5),
                target_residency: SimDuration::from_micros(20),
            },
            CState {
                name: "C2-core-gated".into(),
                power_w: 0.15,
                transition: SimDuration::from_micros(80),
                target_residency: SimDuration::from_micros(300),
            },
            CState {
                name: "C3-core-off".into(),
                power_w: 0.08,
                transition: SimDuration::from_micros(150),
                target_residency: SimDuration::from_millis(1),
            },
        ])
    }

    /// The idle states, shallowest first.
    pub fn states(&self) -> &[CState] {
        &self.states
    }

    /// Number of idle states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Ladders are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The deepest state whose target residency fits within `idle_len`,
    /// or the shallowest state if none fits. Returns the index.
    pub fn deepest_fitting(&self, idle_len: SimDuration) -> usize {
        let mut pick = 0;
        for (i, s) in self.states.iter().enumerate() {
            if s.target_residency <= idle_len {
                pick = i;
            } else {
                break;
            }
        }
        pick
    }

    /// Energy (joules) spent idling for `idle_len` in state `index`,
    /// including the transition cost modelled as `transition` time spent
    /// at `active_power_w`.
    pub fn idle_energy(&self, index: usize, idle_len: SimDuration, active_power_w: f64) -> f64 {
        let s = &self.states[index];
        let resident = idle_len.saturating_sub(s.transition);
        resident.as_secs_f64() * s.power_w
            + s.transition.min(idle_len).as_secs_f64() * active_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exynos_ladder_is_valid() {
        let ladder = CStateLadder::exynos_like();
        assert_eq!(ladder.len(), 3);
        assert!(ladder.states()[0].power_w > ladder.states()[2].power_w);
    }

    #[test]
    fn deepest_fitting_boundaries() {
        let ladder = CStateLadder::exynos_like();
        // Shorter than every residency → shallowest.
        assert_eq!(ladder.deepest_fitting(SimDuration::from_micros(1)), 0);
        // Exactly C2's residency → C2.
        assert_eq!(ladder.deepest_fitting(SimDuration::from_micros(300)), 1);
        // Long idle → deepest.
        assert_eq!(ladder.deepest_fitting(SimDuration::from_secs(1)), 2);
    }

    #[test]
    fn idle_energy_prefers_deep_state_for_long_idle() {
        let ladder = CStateLadder::exynos_like();
        let long_idle = SimDuration::from_millis(10);
        let shallow = ladder.idle_energy(0, long_idle, 1.6);
        let deep = ladder.idle_energy(2, long_idle, 1.6);
        assert!(deep < shallow, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn idle_energy_prefers_shallow_state_for_short_idle() {
        let ladder = CStateLadder::exynos_like();
        let short_idle = SimDuration::from_micros(30);
        let shallow = ladder.idle_energy(0, short_idle, 1.6);
        let deep = ladder.idle_energy(2, short_idle, 1.6);
        assert!(
            shallow < deep,
            "transition cost should dominate: shallow {shallow} vs deep {deep}"
        );
    }

    #[test]
    fn idle_energy_clamps_transition_to_interval() {
        let ladder = CStateLadder::exynos_like();
        // Idle shorter than the deep transition: no negative residency.
        let tiny = SimDuration::from_micros(10);
        let e = ladder.idle_energy(2, tiny, 1.6);
        assert!(e > 0.0 && e.is_finite());
    }

    #[test]
    #[should_panic(expected = "less power")]
    fn non_decreasing_power_rejected() {
        CStateLadder::new(vec![
            CState {
                name: "a".into(),
                power_w: 0.1,
                transition: SimDuration::ZERO,
                target_residency: SimDuration::ZERO,
            },
            CState {
                name: "b".into(),
                power_w: 0.2,
                transition: SimDuration::ZERO,
                target_residency: SimDuration::ZERO,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ladder_rejected() {
        CStateLadder::new(vec![]);
    }
}

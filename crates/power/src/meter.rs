//! A PowerTop-like meter.
//!
//! The paper measures two of its three metrics with PowerTop (§III-B):
//! *wakeups/s* and *usage (ms/s)* — "the number of milliseconds the
//! process spends executing every second". The [`Meter`] computes both
//! from finished core timelines, either as run-wide aggregates or as a
//! per-window series (PowerTop refreshes once a second; the window is
//! configurable).

use pc_sim::core::CoreReport;
use pc_sim::{CoreState, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One sampling window's measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeterSample {
    /// Window start.
    pub start: SimTime,
    /// Window length.
    pub window: SimDuration,
    /// Idle→active transitions that began inside the window, scaled to
    /// per-second.
    pub wakeups_per_sec: f64,
    /// Execution milliseconds per second of window time.
    pub usage_ms_per_sec: f64,
}

/// Computes PowerTop-style metrics over core timelines.
#[derive(Debug, Clone, Copy)]
pub struct Meter {
    window: SimDuration,
}

impl Meter {
    /// A meter sampling with the given window (PowerTop uses 1 s).
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "meter window must be nonzero");
        Meter { window }
    }

    /// Per-window samples for one core. Wakeups are attributed to the
    /// window containing the idle→active edge; usage is the exact overlap
    /// of active intervals with the window.
    pub fn sample(&self, report: &CoreReport) -> Vec<MeterSample> {
        let end = SimTime::ZERO + report.duration;
        let mut samples = Vec::new();
        let mut start = SimTime::ZERO;
        // Cursor into the timeline: intervals are sorted and windows
        // advance monotonically, so each interval is visited O(1) times
        // overall instead of once per window.
        let mut cursor = 0usize;
        while start < end {
            let wend = start.saturating_add(self.window).min(end);
            let span = wend.since(start);
            let mut active = SimDuration::ZERO;
            let mut wakeups = 0u64;
            // Skip intervals that ended before this window, remembering
            // the last state for the wakeup-edge test.
            let mut prev_state = if cursor > 0 {
                Some(report.timeline[cursor - 1].state)
            } else {
                None
            };
            while cursor < report.timeline.len() && report.timeline[cursor].end <= start {
                prev_state = Some(report.timeline[cursor].state);
                cursor += 1;
            }
            let mut idx = cursor;
            while idx < report.timeline.len() {
                let iv = &report.timeline[idx];
                if iv.start >= wend {
                    break;
                }
                if iv.state == CoreState::Active {
                    let lo = iv.start.max(start);
                    let hi = iv.end.min(wend);
                    active += hi.since(lo);
                    // A wakeup edge at iv.start counts if it lies in the
                    // window and follows idleness (or run start).
                    let was_idle = prev_state.map(|s| s == CoreState::Idle).unwrap_or(true);
                    if was_idle && iv.start >= start && iv.start < wend {
                        wakeups += 1;
                    }
                }
                prev_state = Some(iv.state);
                idx += 1;
            }
            let secs = span.as_secs_f64();
            samples.push(MeterSample {
                start,
                window: span,
                wakeups_per_sec: if secs > 0.0 {
                    wakeups as f64 / secs
                } else {
                    0.0
                },
                usage_ms_per_sec: if secs > 0.0 {
                    active.as_secs_f64() * 1e3 / secs
                } else {
                    0.0
                },
            });
            start = wend;
        }
        samples
    }

    /// Run-wide aggregate over several cores: total wakeups/s and summed
    /// usage ms/s (PowerTop sums usage across CPUs for a process).
    pub fn aggregate(reports: &[CoreReport]) -> MeterSample {
        assert!(!reports.is_empty(), "aggregate needs at least one core");
        let duration = reports[0].duration;
        let mut wakeups = 0u64;
        let mut active = SimDuration::ZERO;
        for r in reports {
            assert_eq!(r.duration, duration, "mismatched core run lengths");
            wakeups += r.wakeups;
            active += r.active_time;
        }
        let secs = duration.as_secs_f64();
        MeterSample {
            start: SimTime::ZERO,
            window: duration,
            wakeups_per_sec: if secs > 0.0 {
                wakeups as f64 / secs
            } else {
                0.0
            },
            usage_ms_per_sec: if secs > 0.0 {
                active.as_secs_f64() * 1e3 / secs
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_sim::{Core, CoreId};

    fn report(spans: &[(u64, u64)], end_ms: u64) -> CoreReport {
        let mut c = Core::new(CoreId(0));
        for &(s, e) in spans {
            c.add_active_span(SimTime::from_millis(s), SimTime::from_millis(e));
        }
        c.finish(SimTime::from_millis(end_ms))
    }

    #[test]
    fn aggregate_matches_core_report() {
        let r = report(&[(100, 200), (500, 550)], 1000);
        let s = Meter::aggregate(std::slice::from_ref(&r));
        assert!((s.wakeups_per_sec - r.wakeups_per_sec()).abs() < 1e-12);
        assert!((s.usage_ms_per_sec - r.usage_ms_per_sec()).abs() < 1e-12);
    }

    #[test]
    fn windows_partition_usage() {
        // Active 100ms in first half, 50ms in second half of a 2s run.
        let r = report(&[(100, 200), (1500, 1550)], 2000);
        let m = Meter::new(SimDuration::from_secs(1));
        let samples = m.sample(&r);
        assert_eq!(samples.len(), 2);
        assert!((samples[0].usage_ms_per_sec - 100.0).abs() < 1e-9);
        assert!((samples[1].usage_ms_per_sec - 50.0).abs() < 1e-9);
        assert!((samples[0].wakeups_per_sec - 1.0).abs() < 1e-12);
        assert!((samples[1].wakeups_per_sec - 1.0).abs() < 1e-12);
    }

    #[test]
    fn span_crossing_window_boundary_splits_usage() {
        // One active span 900..1100ms across the 1s boundary.
        let r = report(&[(900, 1100)], 2000);
        let m = Meter::new(SimDuration::from_secs(1));
        let samples = m.sample(&r);
        assert!((samples[0].usage_ms_per_sec - 100.0).abs() < 1e-9);
        assert!((samples[1].usage_ms_per_sec - 100.0).abs() < 1e-9);
        // Wakeup counted once, in the first window.
        assert!((samples[0].wakeups_per_sec - 1.0).abs() < 1e-12);
        assert_eq!(samples[1].wakeups_per_sec, 0.0);
    }

    #[test]
    fn sum_of_window_wakeups_equals_total() {
        let spans: Vec<(u64, u64)> = (0..20).map(|k| (k * 100, k * 100 + 10)).collect();
        let r = report(&spans, 2000);
        let m = Meter::new(SimDuration::from_millis(300));
        let samples = m.sample(&r);
        let total: f64 = samples
            .iter()
            .map(|s| s.wakeups_per_sec * s.window.as_secs_f64())
            .sum();
        assert!((total - r.wakeups as f64).abs() < 1e-9);
    }

    #[test]
    fn idle_core_all_zeroes() {
        let r = report(&[], 1000);
        let m = Meter::new(SimDuration::from_millis(250));
        for s in m.sample(&r) {
            assert_eq!(s.wakeups_per_sec, 0.0);
            assert_eq!(s.usage_ms_per_sec, 0.0);
        }
    }

    #[test]
    fn aggregate_sums_cores() {
        let a = report(&[(0, 100)], 1000);
        let b = report(&[(200, 500)], 1000);
        let s = Meter::aggregate(&[a, b]);
        assert!((s.wakeups_per_sec - 2.0).abs() < 1e-12);
        assert!((s.usage_ms_per_sec - 400.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_window_rejected() {
        Meter::new(SimDuration::ZERO);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use pc_sim::{Core, CoreId};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Window decomposition is exact: summing usage and wakeups over
        /// any window size reproduces the run-wide totals.
        #[test]
        fn windows_partition_totals(
            spans in prop::collection::vec((0u64..50_000, 1u64..2_000), 1..40),
            window_us in 100u64..20_000,
        ) {
            let mut sorted: Vec<(u64, u64)> = spans
                .into_iter()
                .map(|(s, len)| (s, s + len))
                .collect();
            sorted.sort();
            let end = sorted.iter().map(|&(_, e)| e).max().unwrap() + 1_000;
            let mut core = Core::new(CoreId(0));
            for &(s, e) in &sorted {
                core.add_active_span(SimTime::from_micros(s), SimTime::from_micros(e));
            }
            let report = core.finish(SimTime::from_micros(end));
            let samples = Meter::new(SimDuration::from_micros(window_us)).sample(&report);

            let total_wakeups: f64 = samples
                .iter()
                .map(|s| s.wakeups_per_sec * s.window.as_secs_f64())
                .sum();
            prop_assert!((total_wakeups - report.wakeups as f64).abs() < 1e-6);

            let total_active: f64 = samples
                .iter()
                .map(|s| s.usage_ms_per_sec * 1e-3 * s.window.as_secs_f64())
                .sum();
            prop_assert!(
                (total_active - report.active_time.as_secs_f64()).abs() < 1e-9,
                "active {} vs {}",
                total_active,
                report.active_time.as_secs_f64()
            );

            // Windows tile the run exactly.
            let covered: f64 = samples.iter().map(|s| s.window.as_secs_f64()).sum();
            prop_assert!((covered - report.duration.as_secs_f64()).abs() < 1e-12);
        }
    }
}

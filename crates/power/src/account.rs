//! Energy accounting: integrating a core's idle/active timeline into
//! joules and watts.
//!
//! This module is the simulation's oscilloscope. The paper measured
//! `P = V²/R` across a series resistor and reported the *increase* in
//! power while an experiment ran; we integrate the same quantity from
//! first principles:
//!
//! ```text
//! E = Σ active spans · P_active
//!   + Σ idle spans   · P(C-state chosen by the governor)
//!   + wakeups · ω
//! ```
//!
//! and report both total watts and "extra" watts over the all-idle
//! baseline, which is what Figures 4, 9, 10 and 11 plot.

use crate::governor::IdleGovernor;
use crate::model::PowerModel;
use pc_sim::core::CoreReport;
use pc_sim::{CoreState, SimDuration};
use serde::{Deserialize, Serialize};

/// Integrated energy figures for one or more cores over a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Run length.
    pub duration: SimDuration,
    /// Total energy, joules (cores only, no board baseline).
    pub energy_j: f64,
    /// Energy attributable to wakeup transitions alone, joules.
    pub wakeup_energy_j: f64,
    /// Total wakeups across the accounted cores.
    pub wakeups: u64,
    /// Total active time across cores.
    pub active_time: SimDuration,
    /// Total idle time across cores.
    pub idle_time: SimDuration,
    /// Time spent resident in each ladder state, by index, across cores.
    pub cstate_residency: Vec<SimDuration>,
    /// Energy the same cores would draw sleeping in the deepest state for
    /// the whole run, joules — the subtraction baseline.
    pub floor_energy_j: f64,
}

impl EnergyReport {
    /// Mean power over the run, watts.
    pub fn avg_power_w(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.energy_j / self.duration.as_secs_f64()
        }
    }

    /// The paper's headline metric: mean power *above* the all-idle
    /// floor, in milliwatts.
    pub fn extra_power_mw(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            (self.energy_j - self.floor_energy_j) / self.duration.as_secs_f64() * 1e3
        }
    }

    /// Wakeups per second across the accounted cores.
    pub fn wakeups_per_sec(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.wakeups as f64 / self.duration.as_secs_f64()
        }
    }

    /// Merges per-core reports (summing energies and counts; the duration
    /// must match).
    pub fn merge(mut reports: Vec<EnergyReport>) -> EnergyReport {
        let mut total = reports.pop().expect("merge needs at least one report");
        for r in reports {
            assert_eq!(r.duration, total.duration, "mismatched run lengths");
            total.energy_j += r.energy_j;
            total.wakeup_energy_j += r.wakeup_energy_j;
            total.wakeups += r.wakeups;
            total.active_time += r.active_time;
            total.idle_time += r.idle_time;
            total.floor_energy_j += r.floor_energy_j;
            for (a, b) in total
                .cstate_residency
                .iter_mut()
                .zip(r.cstate_residency.iter())
            {
                *a += *b;
            }
        }
        total
    }
}

/// Integrates one core's finished timeline under `model`, with `governor`
/// choosing the C-state of each idle interval in order.
pub fn account_core(
    report: &CoreReport,
    model: &PowerModel,
    governor: &mut dyn IdleGovernor,
) -> EnergyReport {
    let mut energy = 0.0;
    let mut residency = vec![SimDuration::ZERO; model.ladder.len()];
    for iv in &report.timeline {
        match iv.state {
            CoreState::Active => {
                energy += iv.len().as_secs_f64() * model.active_power_w;
            }
            CoreState::Idle => {
                let idx = governor.select(&model.ladder, iv.len());
                energy += model
                    .ladder
                    .idle_energy(idx, iv.len(), model.active_power_w);
                residency[idx] += iv.len();
            }
        }
    }
    let wakeup_energy = report.wakeups as f64 * model.wakeup_energy_j;
    energy += wakeup_energy;
    let floor = report.duration.as_secs_f64() * model.deep_idle_power_w();
    EnergyReport {
        duration: report.duration,
        energy_j: energy,
        wakeup_energy_j: wakeup_energy,
        wakeups: report.wakeups,
        active_time: report.active_time,
        idle_time: report.idle_time(),
        cstate_residency: residency,
        floor_energy_j: floor,
    }
}

/// Accounts a set of cores with a fresh governor per core (governors are
/// per-core in real `cpuidle` too) and merges the result.
pub fn account_cores<G, F>(
    reports: &[CoreReport],
    model: &PowerModel,
    mut make_governor: F,
) -> EnergyReport
where
    G: IdleGovernor,
    F: FnMut() -> G,
{
    assert!(!reports.is_empty(), "need at least one core report");
    let per_core: Vec<EnergyReport> = reports
        .iter()
        .map(|r| {
            let mut g = make_governor();
            account_core(r, model, &mut g)
        })
        .collect();
    EnergyReport::merge(per_core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{MenuGovernor, OracleGovernor};
    use pc_sim::{Core, CoreId, SimTime};

    fn run_core(spans: &[(u64, u64)], end_us: u64) -> CoreReport {
        let mut c = Core::new(CoreId(0));
        for &(s, e) in spans {
            c.add_active_span(SimTime::from_micros(s), SimTime::from_micros(e));
        }
        c.finish(SimTime::from_micros(end_us))
    }

    #[test]
    fn idle_core_draws_floor_power() {
        let model = PowerModel::exynos_like();
        let report = run_core(&[], 1_000_000); // 1s fully idle
        let e = account_core(&report, &model, &mut OracleGovernor);
        assert_eq!(e.wakeups, 0);
        // One long idle interval lands in the deepest state.
        assert!((e.avg_power_w() - model.deep_idle_power_w()).abs() < 0.001);
        assert!(e.extra_power_mw() < 1.0);
    }

    #[test]
    fn active_core_draws_active_power() {
        let model = PowerModel::exynos_like();
        let report = run_core(&[(0, 1_000_000)], 1_000_000);
        let e = account_core(&report, &model, &mut OracleGovernor);
        // One wakeup's ω on top of pure active power.
        let expected = model.active_power_w + model.wakeup_energy_j;
        assert!((e.avg_power_w() - expected).abs() < 1e-9);
    }

    #[test]
    fn more_wakeups_cost_more_energy() {
        let model = PowerModel::exynos_like();
        // Same total active time (10ms) split as 1 vs 100 spans over 1s.
        let single = run_core(&[(0, 10_000)], 1_000_000);
        let spans: Vec<(u64, u64)> = (0..100).map(|k| (k * 10_000, k * 10_000 + 100)).collect();
        let many = run_core(&spans, 1_000_000);
        let e1 = account_core(&single, &model, &mut OracleGovernor);
        let e100 = account_core(&many, &model, &mut OracleGovernor);
        assert_eq!(e1.wakeups, 1);
        assert_eq!(e100.wakeups, 100);
        assert!(e100.energy_j > e1.energy_j);
        // Wakeup energy accounts for ≥ the ω difference.
        assert!(e100.wakeup_energy_j - e1.wakeup_energy_j >= 99.0 * model.wakeup_energy_j - 1e-12);
    }

    #[test]
    fn grouped_idle_reaches_deeper_states() {
        // The paper's Figure 1: grouped activity ⇒ longer idle gaps ⇒
        // deeper C-states ⇒ less idle energy.
        let model = PowerModel::exynos_like();
        // Fragmented: active 100us every 400us (idle gaps 300us → C2).
        let frag: Vec<(u64, u64)> = (0..2500).map(|k| (k * 400, k * 400 + 100)).collect();
        // Grouped: same active total (250ms) in one span, one huge idle.
        let grouped = run_core(&[(0, 250_000)], 1_000_000);
        let frag = run_core(&frag, 1_000_000);
        let ef = account_core(&frag, &model, &mut OracleGovernor);
        let eg = account_core(&grouped, &model, &mut OracleGovernor);
        assert_eq!(ef.active_time, eg.active_time);
        assert!(eg.energy_j < ef.energy_j);
        // Residency: grouped run sits almost entirely in the deepest state.
        let deep = *eg.cstate_residency.last().unwrap();
        assert!(deep > eg.idle_time.mul_f64(0.99));
    }

    #[test]
    fn oracle_beats_menu_on_irregular_idles() {
        let model = PowerModel::exynos_like();
        // Alternating long and short idles defeat the averaging predictor.
        let mut spans = Vec::new();
        let mut t = 0u64;
        for k in 0..200 {
            spans.push((t, t + 50));
            t += 50 + if k % 2 == 0 { 5_000 } else { 40 };
        }
        let report = run_core(&spans, t + 1000);
        let oracle = account_core(&report, &model, &mut OracleGovernor);
        let menu = account_core(&report, &model, &mut MenuGovernor::new());
        assert!(oracle.energy_j <= menu.energy_j);
    }

    #[test]
    fn merge_sums_cores() {
        let model = PowerModel::exynos_like();
        let a = account_core(&run_core(&[(0, 100)], 1000), &model, &mut OracleGovernor);
        let b = account_core(&run_core(&[(500, 700)], 1000), &model, &mut OracleGovernor);
        let sum_energy = a.energy_j + b.energy_j;
        let merged = EnergyReport::merge(vec![a, b]);
        assert_eq!(merged.wakeups, 2);
        assert!((merged.energy_j - sum_energy).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn merge_rejects_unequal_durations() {
        let model = PowerModel::exynos_like();
        let a = account_core(&run_core(&[], 1000), &model, &mut OracleGovernor);
        let b = account_core(&run_core(&[], 2000), &model, &mut OracleGovernor);
        EnergyReport::merge(vec![a, b]);
    }

    #[test]
    fn account_cores_helper() {
        let model = PowerModel::exynos_like();
        let reports = vec![run_core(&[(0, 100)], 1000), run_core(&[], 1000)];
        let merged = account_cores::<OracleGovernor, _>(&reports, &model, || OracleGovernor);
        assert_eq!(merged.wakeups, 1);
    }
}

//! A synthetic stand-in for the 1998 World Cup web-access log.
//!
//! The paper drives all experiments with request timestamps from the
//! WC'98 site log \[Arlitt & Jin\], chosen because it "exhibits sporadic
//! changes in the rate of production of items" (§III-B). The log itself
//! is ~1.3 billion requests of archived HTTP traffic and is not bundled
//! here; instead we synthesise a trace with the same qualitative
//! structure, well documented in the web-traffic literature for this very
//! dataset:
//!
//! 1. **A slow diurnal baseline** — load swings over the day; compressed
//!    here into the experiment horizon as a low-frequency sinusoid.
//! 2. **Flash crowds** — match kick-offs produced sharp multi-x surges;
//!    modelled as randomly placed bursts with fast exponential decay.
//! 3. **Short-range burstiness** — modelled by modulating the rate with
//!    a small Markov chain (MMPP-style multipliers).
//! 4. **Request clusters** — a web page load issues one request per
//!    embedded object, so server-side arrivals come in tight trains of
//!    ~tens of requests separated by microseconds. This structure is
//!    load-bearing for the paper's results: it is why a blocking
//!    (Mutex/Sem) consumer wakes once per *cluster* rather than once per
//!    item, putting its wakeup count in the same regime as batch
//!    processing (Fig. 9 shows Mutex only slightly above BP).
//!
//! Cluster *starts* are drawn from the time-varying intensity λ(t) by
//! thinning (Lewis & Shedler) — a true non-homogeneous Poisson process —
//! and each start is expanded into a geometrically-sized train. Output is
//! deterministic per seed.

use crate::trace::Trace;
use pc_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic World-Cup-like workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldCupConfig {
    /// Run length of the trace.
    pub horizon: SimTime,
    /// Long-run mean arrival rate (items/second).
    pub mean_rate: f64,
    /// Peak-to-trough ratio of the diurnal baseline (≥ 1).
    pub diurnal_swing: f64,
    /// Number of diurnal cycles across the horizon.
    pub diurnal_cycles: f64,
    /// Expected number of flash-crowd bursts over the horizon.
    pub bursts: usize,
    /// Burst peak multiplier over the baseline.
    pub burst_amplitude: f64,
    /// Mean burst decay time constant.
    pub burst_decay: SimDuration,
    /// MMPP modulation states as `(multiplier, mean sojourn)`.
    pub modulation: Vec<(f64, SimDuration)>,
    /// Mean number of requests per cluster (geometric; 1.0 disables
    /// clustering). `mean_rate` counts *items*, not clusters.
    pub cluster_size_mean: f64,
    /// Mean gap between consecutive requests inside a cluster
    /// (exponential).
    pub cluster_gap: SimDuration,
}

impl WorldCupConfig {
    /// The calibration used by the paper-reproduction experiments:
    /// 50-second horizon, ~8 000 items/s mean with bursts reaching
    /// several times that — rates at which the paper's buffer sizes
    /// (25–100) fill in fractions of a millisecond to a few milliseconds.
    pub fn paper_default() -> Self {
        WorldCupConfig {
            horizon: SimTime::from_secs(50),
            mean_rate: 1_860.0,
            diurnal_swing: 6.0,
            diurnal_cycles: 1.5,
            bursts: 12,
            burst_amplitude: 2.5,
            burst_decay: SimDuration::from_millis(600),
            modulation: vec![
                (0.5, SimDuration::from_millis(400)),
                (1.0, SimDuration::from_millis(300)),
                (1.7, SimDuration::from_millis(150)),
            ],
            cluster_size_mean: 12.0,
            cluster_gap: SimDuration::from_micros(4),
        }
    }

    /// A small, fast configuration for unit tests and doc examples:
    /// 100 ms horizon at a few thousand items/s.
    pub fn quick_test() -> Self {
        WorldCupConfig {
            horizon: SimTime::from_millis(100),
            mean_rate: 5_000.0,
            diurnal_swing: 2.0,
            diurnal_cycles: 1.0,
            bursts: 2,
            burst_amplitude: 3.0,
            burst_decay: SimDuration::from_millis(10),
            modulation: vec![
                (0.6, SimDuration::from_millis(5)),
                (1.6, SimDuration::from_millis(3)),
            ],
            cluster_size_mean: 5.0,
            cluster_gap: SimDuration::from_micros(4),
        }
    }

    /// Generates the trace for `seed`. The same `(config, seed)` always
    /// produces the identical trace.
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.mean_rate > 0.0, "mean rate must be positive");
        assert!(self.diurnal_swing >= 1.0, "diurnal swing must be ≥ 1");
        assert!(self.cluster_size_mean >= 1.0, "cluster mean must be ≥ 1");
        let mut rng = SimRng::new(seed ^ 0x57C0_97D8_43A1_11E5);
        let horizon_s = self.horizon.as_secs_f64();
        // λ(t) below drives cluster *starts*; scale the target rate down
        // so the expected item count still matches `mean_rate`.
        let cluster_rate = self.mean_rate / self.cluster_size_mean;

        // Place the flash crowds.
        let bursts: Vec<(f64, f64)> = (0..self.bursts)
            .map(|_| {
                let at = rng.uniform(0.0, horizon_s);
                let amp = self.burst_amplitude * rng.uniform(0.5, 1.5);
                (at, amp)
            })
            .collect();
        let decay_s = self.burst_decay.as_secs_f64().max(1e-6);

        // Pre-draw the MMPP modulation timeline.
        let modulation = self.modulation_timeline(&mut rng, horizon_s);

        // The deterministic intensity shape, before normalisation.
        let shape = |t: f64, modulation_factor: f64| -> f64 {
            let phase = 2.0 * std::f64::consts::PI * self.diurnal_cycles * t / horizon_s;
            // Oscillates between 1 and `diurnal_swing`.
            let diurnal = 1.0 + (self.diurnal_swing - 1.0) * 0.5 * (1.0 + phase.sin());
            let mut burst_factor = 1.0;
            for &(at, amp) in &bursts {
                if t >= at {
                    burst_factor += amp * (-(t - at) / decay_s).exp();
                }
            }
            diurnal * burst_factor * modulation_factor
        };

        // One pass over a fine grid yields both the normalisation
        // integral (so the expected count matches mean_rate · horizon)
        // and the running maximum for the thinning majorant.
        let grid = 4096;
        let mut integral = 0.0;
        let mut shape_max: f64 = 0.0;
        for k in 0..grid {
            let t = (k as f64 + 0.5) / grid as f64 * horizon_s;
            let v = shape(t, modulation_at(&modulation, t));
            integral += v * horizon_s / grid as f64;
            shape_max = shape_max.max(v);
        }
        // The majorant must also cover the exact burst-onset instants and
        // modulation switch points (true peaks a fixed grid can straddle),
        // plus headroom for residual discretisation error.
        for &(at, _) in &bursts {
            if at < horizon_s {
                shape_max = shape_max.max(shape(at, modulation_at(&modulation, at)));
            }
        }
        for &(at, _) in &modulation {
            if at < horizon_s {
                shape_max = shape_max.max(shape(at, modulation_at(&modulation, at)));
            }
        }
        let scale = cluster_rate * horizon_s / integral;
        let lambda_max = shape_max * scale * 1.10;

        // Thinning algorithm over cluster starts; each accepted start is
        // expanded into a geometric train of requests.
        let mut times = Vec::with_capacity((self.mean_rate * horizon_s) as usize);
        let gap_s = self.cluster_gap.as_secs_f64().max(1e-9);
        let mut t = 0.0;
        while t < horizon_s {
            t += rng.exponential(lambda_max);
            if t >= horizon_s {
                break;
            }
            let lambda = shape(t, modulation_at(&modulation, t)) * scale;
            if rng.next_f64() < lambda / lambda_max {
                // Cluster size uniform in [0.5, 1.5]·mean: web page loads
                // have a characteristic object count; a bounded spread
                // keeps the tail from dwarfing any sanely-sized buffer.
                let size = if self.cluster_size_mean <= 1.0 {
                    1
                } else {
                    let lo = (self.cluster_size_mean * 0.5).max(1.0);
                    let hi = self.cluster_size_mean * 1.5;
                    rng.uniform(lo, hi + 1.0).floor().max(1.0) as u64
                };
                let mut at = t;
                for k in 0..size {
                    if k > 0 {
                        at += rng.exponential(1.0 / gap_s);
                    }
                    if at >= horizon_s {
                        break;
                    }
                    times.push(SimTime::from_nanos((at * 1e9) as u64));
                }
            }
        }
        // Cluster trains from nearby starts can interleave; restore order.
        // Nanosecond collisions are kept — simultaneous items are valid.
        times.sort_unstable();
        Trace::new(times, self.horizon)
    }

    /// Draws the MMPP state timeline: `(switch_time_s, multiplier)`,
    /// sorted by time.
    fn modulation_timeline(&self, rng: &mut SimRng, horizon_s: f64) -> Vec<(f64, f64)> {
        if self.modulation.is_empty() {
            return vec![(0.0, 1.0)];
        }
        let mut timeline = Vec::new();
        let mut t = 0.0;
        let mut state = 0usize;
        while t < horizon_s {
            timeline.push((t, self.modulation[state].0));
            let sojourn = self.modulation[state].1.as_secs_f64().max(1e-6);
            t += rng.exponential(1.0 / sojourn);
            if self.modulation.len() > 1 {
                let mut next = rng.next_below(self.modulation.len() as u64 - 1) as usize;
                if next >= state {
                    next += 1;
                }
                state = next;
            }
        }
        timeline
    }
}

fn modulation_at(timeline: &[(f64, f64)], t: f64) -> f64 {
    match timeline.binary_search_by(|probe| {
        probe
            .0
            .partial_cmp(&t)
            .expect("modulation times are finite")
    }) {
        Ok(i) => timeline[i].1,
        Err(0) => timeline.first().map(|s| s.1).unwrap_or(1.0),
        Err(i) => timeline[i - 1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::windowed_rates;

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorldCupConfig::quick_test();
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WorldCupConfig::quick_test();
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }

    #[test]
    fn mean_rate_is_calibrated() {
        // Use a second-long horizon so cluster-count noise averages out.
        let cfg = WorldCupConfig {
            horizon: SimTime::from_secs(2),
            ..WorldCupConfig::quick_test()
        };
        let trace = cfg.generate(7);
        let rate = trace.mean_rate();
        assert!(
            (rate - cfg.mean_rate).abs() < cfg.mean_rate * 0.25,
            "rate {rate} vs target {}",
            cfg.mean_rate
        );
    }

    #[test]
    fn clustering_produces_tight_trains() {
        let cfg = WorldCupConfig {
            horizon: SimTime::from_secs(1),
            ..WorldCupConfig::quick_test()
        };
        let trace = cfg.generate(21);
        // With mean cluster size 5 and 4us internal gaps, a large share
        // of inter-arrivals must be sub-20us even though the mean gap is
        // ~200us.
        let tight = trace
            .interarrivals()
            .filter(|g| *g < SimDuration::from_micros(20))
            .count();
        assert!(
            tight as f64 > 0.5 * trace.len() as f64,
            "tight gaps {tight} of {}",
            trace.len()
        );
    }

    #[test]
    fn cluster_mean_of_one_disables_clustering() {
        let cfg = WorldCupConfig {
            cluster_size_mean: 1.0,
            horizon: SimTime::from_secs(1),
            ..WorldCupConfig::quick_test()
        };
        let trace = cfg.generate(23);
        let tight = trace
            .interarrivals()
            .filter(|g| *g < SimDuration::from_micros(20))
            .count();
        assert!(
            (tight as f64) < 0.35 * trace.len() as f64,
            "unclustered trace should rarely have tight gaps: {tight} of {}",
            trace.len()
        );
    }

    #[test]
    fn times_sorted_strict_and_within_horizon() {
        let cfg = WorldCupConfig::quick_test();
        let trace = cfg.generate(11);
        assert!(trace.times().windows(2).all(|w| w[0] < w[1]));
        assert!(trace.times().iter().all(|&t| t < cfg.horizon));
    }

    #[test]
    fn rate_is_sporadic_not_constant() {
        // The property the paper uses the dataset for: windowed rates
        // must swing substantially.
        let cfg = WorldCupConfig::quick_test();
        let trace = cfg.generate(13);
        let rates = windowed_rates(&trace, SimDuration::from_millis(10));
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max > 2.0 * min.max(1.0),
            "windowed rates should swing: min {min}, max {max}"
        );
    }

    #[test]
    fn paper_default_scale() {
        let cfg = WorldCupConfig::paper_default();
        // Generating 50s at 8k/s is ~400k items; keep the test fast by
        // truncating the config horizon.
        let short = WorldCupConfig {
            horizon: SimTime::from_secs(2),
            ..cfg
        };
        let trace = short.generate(3);
        let rate = trace.mean_rate();
        assert!(rate > 600.0 && rate < 5_000.0, "rate {rate}");
    }

    #[test]
    fn empty_modulation_falls_back_to_unity() {
        let cfg = WorldCupConfig {
            modulation: vec![],
            ..WorldCupConfig::quick_test()
        };
        let trace = cfg.generate(5);
        assert!(!trace.is_empty());
    }
}

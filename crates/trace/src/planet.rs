//! Planet-scale multi-pair workload for the large-M scaling experiments.
//!
//! The paper's evaluation stops at M = 5 producer-consumer pairs; the
//! scaling study (DESIGN.md §11) pushes the coordination layer to
//! M = 100 and M = 1000. A hundred identical copies of the World-Cup
//! trace would be an unrealistically homogeneous load, so this module
//! synthesises a *fleet* of per-pair traces with the structure of a
//! geo-distributed service:
//!
//! 1. **Heterogeneous per-pair rates** — service instances never see
//!    equal load. Pair *i* gets a deterministic weight from a
//!    golden-ratio hash, mapped onto a log-uniform spread
//!    `[1, rate_spread]` and normalised so the *expected* per-pair mean
//!    stays [`PlanetConfig::mean_rate`] regardless of the spread.
//! 2. **Desynchronised diurnal baselines** — time zones: pair *i*'s
//!    diurnal sinusoid is phase-shifted by `i / pairs` of the horizon,
//!    so the fleet-wide load is much flatter than any single pair's.
//! 3. **Flash-crowd pairs** — every [`PlanetConfig::flash_every`]-th
//!    pair carries flash-crowd bursts (kick-offs, breaking news); the
//!    rest see only baseline + short-range burstiness. Spikes are rare
//!    but violent, exactly the case that stresses cross-shard
//!    rebalancing.
//!
//! Generation is deterministic per `(config, seed, pairs)`: each pair
//! derives its own sub-seed with a SplitMix64 finaliser, so traces are
//! independent of each other and of the pair count of *other* runs.

use crate::trace::Trace;
use crate::worldcup::WorldCupConfig;
use pc_sim::{SimDuration, SimTime};

/// Configuration of the planet-scale fleet workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanetConfig {
    /// Per-pair trace template: horizon, diurnal shape, modulation and
    /// clustering. Its `mean_rate` and `bursts` fields are overridden
    /// per pair.
    pub base: WorldCupConfig,
    /// Expected per-pair mean arrival rate (items/second).
    pub mean_rate: f64,
    /// Heaviest-to-lightest pair rate ratio (log-uniform; ≥ 1, where 1
    /// means a homogeneous fleet).
    pub rate_spread: f64,
    /// Every `flash_every`-th pair (0, k, 2k, …) is a flash-crowd pair;
    /// `usize::MAX` disables flash crowds entirely.
    pub flash_every: usize,
    /// Flash-crowd burst count for flash pairs over the horizon.
    pub flash_bursts: usize,
    /// Flash-crowd peak multiplier over the pair's baseline.
    pub flash_amplitude: f64,
}

impl PlanetConfig {
    /// The calibration used by the `scale` suite: a 10-second horizon,
    /// ~900 items/s per pair with a 6× rate spread, and one pair in
    /// five carrying 3 violent flash crowds. At M = 1000 this is
    /// ~9 M items per replicate — large enough to exercise cross-shard
    /// stealing, small enough to sweep in CI.
    pub fn scale_default() -> Self {
        let base = WorldCupConfig {
            horizon: SimTime::from_secs(10),
            diurnal_swing: 4.0,
            diurnal_cycles: 1.0,
            bursts: 0,
            burst_amplitude: 4.0,
            burst_decay: SimDuration::from_millis(250),
            cluster_size_mean: 8.0,
            ..WorldCupConfig::paper_default()
        };
        PlanetConfig {
            base,
            mean_rate: 900.0,
            rate_spread: 6.0,
            flash_every: 5,
            flash_bursts: 3,
            flash_amplitude: 4.0,
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn quick_test() -> Self {
        PlanetConfig {
            base: WorldCupConfig::quick_test(),
            mean_rate: 3_000.0,
            rate_spread: 4.0,
            flash_every: 3,
            flash_bursts: 2,
            flash_amplitude: 3.0,
        }
    }

    /// Deterministic weight of pair `i` in `[0, 1)` (golden-ratio hash —
    /// low-discrepancy, so small fleets already cover the spread).
    fn weight(i: usize) -> f64 {
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        let h = splitmix64((i as u64).wrapping_mul(GOLDEN));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Mean rate of pair `i`: log-uniform over `[r/√spread·c, r·√spread·c]`
    /// with the normaliser `c = ln(spread)/(spread − 1) · √spread` chosen
    /// so the expectation over uniform weights is exactly `mean_rate`.
    pub fn pair_rate(&self, i: usize) -> f64 {
        assert!(self.rate_spread >= 1.0, "rate spread must be ≥ 1");
        if self.rate_spread == 1.0 {
            return self.mean_rate;
        }
        let s = self.rate_spread;
        // E[s^u] over u ~ U[0,1) is (s − 1)/ln s; divide it back out.
        let norm = s.ln() / (s - 1.0);
        self.mean_rate * s.powf(Self::weight(i)) * norm
    }

    /// Whether pair `i` carries flash-crowd bursts.
    pub fn is_flash_pair(&self, i: usize) -> bool {
        self.flash_every != usize::MAX && i.is_multiple_of(self.flash_every.max(1))
    }

    /// Generates the per-pair trace fleet for `seed`. The same
    /// `(config, seed, pairs)` always produces the identical fleet, and
    /// pair `i`'s trace does not depend on `pairs`.
    pub fn traces(&self, seed: u64, pairs: usize) -> Vec<Trace> {
        (0..pairs)
            .map(|i| self.pair_trace(seed, i, pairs))
            .collect()
    }

    /// Generates pair `i`'s trace alone (used by [`Self::traces`] and by
    /// tests that probe single pairs out of a large fleet).
    pub fn pair_trace(&self, seed: u64, i: usize, pairs: usize) -> Trace {
        let mut cfg = self.base.clone();
        cfg.mean_rate = self.pair_rate(i);
        if self.is_flash_pair(i) {
            cfg.bursts = self.flash_bursts;
            cfg.burst_amplitude = self.flash_amplitude;
        } else {
            cfg.bursts = 0;
        }
        let sub_seed = splitmix64(seed ^ splitmix64(0x9D2C_5680_i64 as u64 ^ i as u64));
        let trace = cfg.generate(sub_seed);
        // Time zones: rotate each pair's diurnal phase around the clock.
        trace.phase_shift(i as f64 / pairs.max(1) as f64)
    }
}

/// SplitMix64 finaliser: a bijective avalanche mix, the standard way to
/// derive independent sub-seeds from `(seed, index)`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_pair() {
        let cfg = PlanetConfig::quick_test();
        assert_eq!(cfg.traces(42, 4), cfg.traces(42, 4));
        assert_ne!(cfg.traces(1, 4), cfg.traces(2, 4));
    }

    #[test]
    fn pair_traces_do_not_depend_on_fleet_size_except_phase() {
        let cfg = PlanetConfig::quick_test();
        // Same pair index, same fleet size → identical; the phase shift
        // is the only pairs-dependent input.
        assert_eq!(cfg.pair_trace(7, 2, 8), cfg.pair_trace(7, 2, 8));
    }

    #[test]
    fn rates_are_heterogeneous_but_calibrated() {
        let cfg = PlanetConfig::quick_test();
        let rates: Vec<f64> = (0..64).map(|i| cfg.pair_rate(i)).collect();
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max > 2.0 * min,
            "fleet should be heterogeneous: min {min}, max {max}"
        );
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            (mean - cfg.mean_rate).abs() < 0.2 * cfg.mean_rate,
            "fleet mean {mean} vs target {}",
            cfg.mean_rate
        );
    }

    #[test]
    fn spread_of_one_is_homogeneous() {
        let cfg = PlanetConfig {
            rate_spread: 1.0,
            ..PlanetConfig::quick_test()
        };
        assert!((0..16).all(|i| cfg.pair_rate(i) == cfg.mean_rate));
    }

    #[test]
    fn flash_pairs_follow_stride() {
        let cfg = PlanetConfig::quick_test();
        assert!(cfg.is_flash_pair(0));
        assert!(!cfg.is_flash_pair(1));
        assert!(cfg.is_flash_pair(cfg.flash_every));
        let off = PlanetConfig {
            flash_every: usize::MAX,
            ..cfg
        };
        assert!((0..8).all(|i| !off.is_flash_pair(i)));
    }

    #[test]
    fn fleet_traces_are_nonempty_and_within_horizon() {
        let cfg = PlanetConfig::quick_test();
        let fleet = cfg.traces(11, 6);
        assert_eq!(fleet.len(), 6);
        for t in &fleet {
            assert!(!t.is_empty());
            assert!(t.times().iter().all(|&at| at < cfg.base.horizon));
        }
    }
}

//! Rate-series analysis over traces.
//!
//! Consumers in the PBPL algorithm predict "the rate of items produced by
//! the producer based on the recent past" (§V-C); these helpers provide
//! the ground-truth rate series against which predictor accuracy is
//! evaluated, plus burstiness characterisation of generated workloads.

use crate::trace::Trace;
use pc_sim::{SimDuration, SimTime};

/// Items/second in consecutive windows of length `window` covering the
/// trace horizon. The final partial window is normalised by its true
/// length.
pub fn windowed_rates(trace: &Trace, window: SimDuration) -> Vec<f64> {
    assert!(!window.is_zero(), "window must be nonzero");
    let horizon = trace.horizon();
    let mut rates = Vec::new();
    let mut start = SimTime::ZERO;
    while start < horizon {
        let end = start.saturating_add(window).min(horizon);
        let n = trace.count_between(start, end);
        let span = end.since(start).as_secs_f64();
        if span > 0.0 {
            rates.push(n as f64 / span);
        }
        start = end;
    }
    rates
}

/// A simple burstiness index: the ratio of the 95th-percentile windowed
/// rate to the mean windowed rate. 1.0 ⇒ perfectly smooth; the paper's
/// workload sits well above.
pub fn burstiness_index(trace: &Trace, window: SimDuration) -> f64 {
    let rates = windowed_rates(trace, window);
    if rates.is_empty() {
        return f64::NAN;
    }
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    if mean == 0.0 {
        return f64::NAN;
    }
    let mut sorted = rates.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let p95 = sorted[((sorted.len() - 1) as f64 * 0.95) as usize];
    p95 / mean
}

/// The peak windowed rate of the trace.
pub fn peak_rate(trace: &Trace, window: SimDuration) -> f64 {
    windowed_rates(trace, window)
        .into_iter()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn windowed_rates_uniform_trace() {
        // 1 item per 10ms over 100ms → 100/s in every 20ms window.
        let times = (1..=10).map(|k| t(k * 10 - 5)).collect();
        let trace = Trace::new(times, t(100));
        let rates = windowed_rates(&trace, SimDuration::from_millis(20));
        assert_eq!(rates.len(), 5);
        for r in rates {
            assert!((r - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn windowed_rates_partial_tail() {
        let trace = Trace::new(vec![t(5), t(25)], t(30));
        let rates = windowed_rates(&trace, SimDuration::from_millis(20));
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 50.0).abs() < 1e-9); // 1 item / 20ms
        assert!((rates[1] - 100.0).abs() < 1e-9); // 1 item / 10ms tail
    }

    #[test]
    fn burstiness_of_smooth_trace_is_one() {
        let times = (1..100).map(|k| t(k * 10)).collect();
        let trace = Trace::new(times, t(1000));
        let b = burstiness_index(&trace, SimDuration::from_millis(100));
        assert!((b - 1.0).abs() < 0.05, "burstiness {b}");
    }

    #[test]
    fn burstiness_of_clustered_trace_above_one() {
        // All items in the first 10% of the horizon.
        let times = (1..100).map(t).collect();
        let trace = Trace::new(times, t(1000));
        let b = burstiness_index(&trace, SimDuration::from_millis(50));
        assert!(b > 3.0, "burstiness {b}");
    }

    #[test]
    fn peak_rate_finds_cluster() {
        let times = vec![t(10), t(11), t(12), t(900)];
        let trace = Trace::new(times, t(1000));
        let peak = peak_rate(&trace, SimDuration::from_millis(100));
        assert!((peak - 30.0).abs() < 1e-9, "peak {peak}");
    }

    #[test]
    fn empty_trace_burstiness_nan() {
        let trace = Trace::new(vec![], t(100));
        assert!(burstiness_index(&trace, SimDuration::from_millis(10)).is_nan());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_window_panics() {
        let trace = Trace::new(vec![], t(100));
        windowed_rates(&trace, SimDuration::ZERO);
    }
}

//! Loading production traces from real logs.
//!
//! The paper replayed the 1998 World Cup access log \[4\]. That dataset
//! (and most web access logs) reduces, for producer-consumer purposes,
//! to a sorted sequence of request timestamps. This module ingests:
//!
//! * **Timestamp-per-line** text (integer epoch seconds, or fractional
//!   seconds) — the format the WC'98 tools emit after `recreate | cut`.
//! * **Common Log Format** lines (`host - - [day/mon/year:HH:MM:SS zone] …`),
//!   using only the time-of-request field.
//!
//! Loaded timestamps are rebased to zero, optionally time-compressed
//! (the paper replays 50-second windows), and wrapped in a [`Trace`].
//! Second-granularity logs are optionally *spread*: requests sharing a
//! second get uniformly jittered inside it so replay doesn't deliver
//! them as one mega-batch (deterministic per seed).

use crate::trace::Trace;
use pc_sim::{SimDuration, SimRng, SimTime};
use std::io::BufRead;

/// Errors from trace ingestion.
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    /// A line could not be parsed; carries the 1-based line number.
    BadLine(usize),
    /// The file contained no usable timestamps.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadLine(n) => write!(f, "unparsable timestamp on line {n}"),
            LoadError::Empty => write!(f, "no timestamps found"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Parses timestamp-per-line text (epoch seconds, integer or fractional)
/// into seconds-since-epoch values. Blank lines and `#` comments are
/// skipped; out-of-order inputs are sorted.
pub fn parse_timestamp_lines<R: BufRead>(reader: R) -> Result<Vec<f64>, LoadError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|_| LoadError::BadLine(idx + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let v: f64 = trimmed.parse().map_err(|_| LoadError::BadLine(idx + 1))?;
        if !v.is_finite() || v < 0.0 {
            return Err(LoadError::BadLine(idx + 1));
        }
        out.push(v);
    }
    if out.is_empty() {
        return Err(LoadError::Empty);
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite by validation"));
    Ok(out)
}

/// Extracts the time-of-day (as seconds from the first request's day
/// start) from Common Log Format lines. Only the `[dd/Mon/yyyy:HH:MM:SS`
/// prefix of the bracketed field is used; dates are flattened into a
/// running day counter so multi-day logs stay monotone.
pub fn parse_common_log<R: BufRead>(reader: R) -> Result<Vec<f64>, LoadError> {
    let mut out = Vec::new();
    let mut last_day_key: Option<String> = None;
    let mut day_index: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|_| LoadError::BadLine(idx + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let open = trimmed.find('[').ok_or(LoadError::BadLine(idx + 1))?;
        let rest = &trimmed[open + 1..];
        // dd/Mon/yyyy:HH:MM:SS
        let mut parts = rest.splitn(2, ':');
        let day_key = parts.next().ok_or(LoadError::BadLine(idx + 1))?.to_string();
        let clock = parts.next().ok_or(LoadError::BadLine(idx + 1))?;
        let hms: Vec<&str> = clock.splitn(3, ':').collect();
        if hms.len() != 3 || hms[2].len() < 2 {
            return Err(LoadError::BadLine(idx + 1));
        }
        let h: f64 = hms[0].parse().map_err(|_| LoadError::BadLine(idx + 1))?;
        let m: f64 = hms[1].parse().map_err(|_| LoadError::BadLine(idx + 1))?;
        let s: f64 = hms[2][..2]
            .parse()
            .map_err(|_| LoadError::BadLine(idx + 1))?;
        if last_day_key.as_deref() != Some(day_key.as_str()) {
            if last_day_key.is_some() {
                day_index += 1;
            }
            last_day_key = Some(day_key);
        }
        out.push(day_index as f64 * 86_400.0 + h * 3600.0 + m * 60.0 + s);
    }
    if out.is_empty() {
        return Err(LoadError::Empty);
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
    Ok(out)
}

/// Options for converting raw log timestamps into a replayable [`Trace`].
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Compress the log's wall time into this horizon (the paper plays
    /// 50-second experiments). `None` keeps real time.
    pub compress_to: Option<SimDuration>,
    /// Spread same-second batches uniformly inside their second
    /// (pre-compression) with this seed. `None` keeps the raw stamps.
    pub spread_seed: Option<u64>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            compress_to: Some(SimDuration::from_secs(50)),
            spread_seed: Some(1),
        }
    }
}

/// Rebases, optionally spreads and compresses raw timestamps (seconds)
/// into a [`Trace`].
pub fn to_trace(raw_seconds: &[f64], opts: &ReplayOptions) -> Result<Trace, LoadError> {
    if raw_seconds.is_empty() {
        return Err(LoadError::Empty);
    }
    let base = raw_seconds[0];
    let mut secs: Vec<f64> = raw_seconds.iter().map(|&t| t - base).collect();

    if let Some(seed) = opts.spread_seed {
        let mut rng = SimRng::new(seed ^ 0x10AD_10AD);
        for v in secs.iter_mut() {
            if *v == v.trunc() {
                *v += rng.next_f64();
            }
        }
        secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    }

    let span = secs.last().expect("non-empty").max(1e-9);
    let (scale, horizon) = match opts.compress_to {
        Some(h) => (h.as_secs_f64() / (span + 1e-9), h),
        None => (1.0, SimDuration::from_secs_f64(span + 1.0)),
    };
    let horizon_t = SimTime::ZERO + horizon;
    // Equal timestamps are legal in a Trace (simultaneous requests are a
    // real log phenomenon) — no dedup, every request is an item.
    let times: Vec<SimTime> = secs
        .iter()
        .map(|&s| SimTime::from_nanos(((s * scale) * 1e9) as u64))
        .filter(|&t| t < horizon_t)
        .collect();
    Ok(Trace::new(times, horizon_t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn timestamp_lines_roundtrip() {
        let input = "# world cup extract\n894000000\n894000001\n\n894000003.5\n";
        let raw = parse_timestamp_lines(Cursor::new(input)).unwrap();
        assert_eq!(raw, vec![894000000.0, 894000001.0, 894000003.5]);
    }

    #[test]
    fn timestamp_lines_sort_out_of_order() {
        let raw = parse_timestamp_lines(Cursor::new("5\n2\n9\n")).unwrap();
        assert_eq!(raw, vec![2.0, 5.0, 9.0]);
    }

    #[test]
    fn bad_line_is_reported_with_number() {
        let err = parse_timestamp_lines(Cursor::new("1\nnot-a-number\n")).unwrap_err();
        assert_eq!(err, LoadError::BadLine(2));
        let err = parse_timestamp_lines(Cursor::new("-5\n")).unwrap_err();
        assert_eq!(err, LoadError::BadLine(1));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            parse_timestamp_lines(Cursor::new("# only comments\n")).unwrap_err(),
            LoadError::Empty
        );
    }

    #[test]
    fn common_log_format_parses_time_of_day() {
        let input = concat!(
            "h1 - - [30/Apr/1998:21:30:17 +0000] \"GET / HTTP/1.0\" 200 123\n",
            "h2 - - [30/Apr/1998:21:30:18 +0000] \"GET /a HTTP/1.0\" 200 45\n",
        );
        let raw = parse_common_log(Cursor::new(input)).unwrap();
        assert_eq!(raw.len(), 2);
        assert!((raw[1] - raw[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn common_log_multi_day_stays_monotone() {
        let input = concat!(
            "h - - [30/Apr/1998:23:59:59 +0000] \"GET / HTTP/1.0\" 200 1\n",
            "h - - [01/May/1998:00:00:01 +0000] \"GET / HTTP/1.0\" 200 1\n",
        );
        let raw = parse_common_log(Cursor::new(input)).unwrap();
        assert!(raw[1] > raw[0], "{raw:?}");
    }

    #[test]
    fn common_log_bad_bracket_field() {
        let err = parse_common_log(Cursor::new("garbage line\n")).unwrap_err();
        assert_eq!(err, LoadError::BadLine(1));
    }

    #[test]
    fn to_trace_compresses_into_horizon() {
        let raw: Vec<f64> = (0..100).map(|k| 894000000.0 + k as f64 * 60.0).collect();
        let trace = to_trace(
            &raw,
            &ReplayOptions {
                compress_to: Some(SimDuration::from_secs(50)),
                spread_seed: None,
            },
        )
        .unwrap();
        assert_eq!(trace.horizon(), SimTime::from_secs(50));
        assert_eq!(trace.len(), 100);
        assert!(trace.times().iter().all(|&t| t < SimTime::from_secs(50)));
    }

    #[test]
    fn spreading_breaks_same_second_batches() {
        // 50 requests stamped in the same second.
        let raw = vec![894000000.0; 50];
        let spread = to_trace(
            &raw,
            &ReplayOptions {
                compress_to: None,
                spread_seed: Some(7),
            },
        )
        .unwrap();
        assert_eq!(spread.len(), 50);
        let distinct_gaps = spread.interarrivals().filter(|g| !g.is_zero()).count();
        assert!(distinct_gaps > 40, "{distinct_gaps}");
    }

    #[test]
    fn duplicate_timestamps_are_preserved() {
        // 10 requests in the same second, no spreading: all 10 must
        // survive as items (simultaneous arrivals are data, not noise).
        let raw = vec![894000000.0; 10];
        let trace = to_trace(
            &raw,
            &ReplayOptions {
                compress_to: None,
                spread_seed: None,
            },
        )
        .unwrap();
        assert_eq!(trace.len(), 10);
    }

    #[test]
    fn spreading_is_deterministic() {
        let raw = vec![1.0, 1.0, 2.0, 2.0, 2.0];
        let opts = ReplayOptions {
            compress_to: Some(SimDuration::from_secs(1)),
            spread_seed: Some(3),
        };
        let a = to_trace(&raw, &opts).unwrap();
        let b = to_trace(&raw, &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uncompressed_keeps_real_spacing() {
        let raw = vec![10.0, 11.0, 13.0];
        let trace = to_trace(
            &raw,
            &ReplayOptions {
                compress_to: None,
                spread_seed: None,
            },
        )
        .unwrap();
        let gaps: Vec<_> = trace.interarrivals().collect();
        assert_eq!(gaps[0], SimDuration::from_secs(1));
        assert_eq!(gaps[1], SimDuration::from_secs(2));
    }
}

//! Arrival processes: generators of item production times υᵢⱼ.
//!
//! The paper's producers emit "at their independent varying rates"
//! (§IV-B). These building blocks produce such timestamp streams; the
//! [`crate::worldcup`] generator composes them into the web-log-like
//! workload used by every experiment.

use pc_sim::{SimDuration, SimRng, SimTime};

/// A stochastic process generating successive arrival instants.
pub trait ArrivalProcess {
    /// The next arrival strictly after `now`, or `None` if the process
    /// has ended.
    fn next_arrival(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime>;

    /// Collects arrivals in `[0, horizon)` into a vector.
    fn generate(&mut self, horizon: SimTime, rng: &mut SimRng) -> Vec<SimTime>
    where
        Self: Sized,
    {
        let mut times = Vec::new();
        let mut now = SimTime::ZERO;
        while let Some(t) = self.next_arrival(now, rng) {
            if t >= horizon {
                break;
            }
            times.push(t);
            now = t;
        }
        times
    }
}

/// Deterministic arrivals at a fixed rate (items/second).
#[derive(Debug, Clone)]
pub struct ConstantRate {
    interval: SimDuration,
}

impl ConstantRate {
    /// One arrival every `1/rate` seconds.
    ///
    /// Panics for non-positive rates.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "constant rate must be positive");
        ConstantRate {
            interval: SimDuration::from_secs_f64(1.0 / rate).max(SimDuration::from_nanos(1)),
        }
    }
}

impl ArrivalProcess for ConstantRate {
    fn next_arrival(&mut self, now: SimTime, _rng: &mut SimRng) -> Option<SimTime> {
        now.checked_add(self.interval)
    }
}

/// Homogeneous Poisson arrivals at a fixed mean rate.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Poisson process with mean `rate` arrivals/second.
    ///
    /// Panics for non-positive rates.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "poisson rate must be positive");
        PoissonProcess { rate }
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_arrival(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let gap =
            SimDuration::from_secs_f64(rng.exponential(self.rate)).max(SimDuration::from_nanos(1));
        now.checked_add(gap)
    }
}

/// A Markov-modulated Poisson process: a small continuous-time Markov
/// chain over rate states; arrivals are Poisson at the current state's
/// rate. The standard model for bursty, non-constant traffic.
#[derive(Debug, Clone)]
pub struct MmppProcess {
    /// Arrival rate per state (items/second).
    rates: Vec<f64>,
    /// Mean sojourn time per state.
    sojourn: Vec<SimDuration>,
    state: usize,
    /// When the chain leaves the current state.
    state_until: SimTime,
}

impl MmppProcess {
    /// Builds an MMPP from `(rate, mean_sojourn)` pairs. State transitions
    /// pick a uniformly random *different* state.
    ///
    /// Panics on empty input or non-positive rates.
    pub fn new(states: &[(f64, SimDuration)]) -> Self {
        assert!(!states.is_empty(), "MMPP needs at least one state");
        for &(r, _) in states {
            assert!(r > 0.0, "MMPP rates must be positive");
        }
        MmppProcess {
            rates: states.iter().map(|s| s.0).collect(),
            sojourn: states.iter().map(|s| s.1).collect(),
            state: 0,
            state_until: SimTime::ZERO,
        }
    }

    fn advance_state(&mut self, now: SimTime, rng: &mut SimRng) {
        while now >= self.state_until {
            if self.rates.len() > 1 && self.state_until > SimTime::ZERO {
                // Jump to a uniformly random other state.
                let mut next = rng.next_below(self.rates.len() as u64 - 1) as usize;
                if next >= self.state {
                    next += 1;
                }
                self.state = next;
            }
            let hold = SimDuration::from_secs_f64(
                rng.exponential(1.0 / self.sojourn[self.state].as_secs_f64()),
            )
            .max(SimDuration::from_micros(1));
            self.state_until = self.state_until.max(now).saturating_add(hold);
        }
    }
}

impl ArrivalProcess for MmppProcess {
    fn next_arrival(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        self.advance_state(now, rng);
        let gap = SimDuration::from_secs_f64(rng.exponential(self.rates[self.state]))
            .max(SimDuration::from_nanos(1));
        now.checked_add(gap)
    }
}

/// An on/off burst process: exponential bursts of high-rate Poisson
/// arrivals separated by exponential silences. Models flash crowds.
#[derive(Debug, Clone)]
pub struct OnOffBurst {
    /// Rate while on.
    pub on_rate: f64,
    /// Mean on-period length.
    pub mean_on: SimDuration,
    /// Mean off-period length.
    pub mean_off: SimDuration,
    on: bool,
    phase_until: SimTime,
}

impl OnOffBurst {
    /// Creates the process starting in the off phase.
    ///
    /// Panics for non-positive rate or zero period means.
    pub fn new(on_rate: f64, mean_on: SimDuration, mean_off: SimDuration) -> Self {
        assert!(on_rate > 0.0, "burst rate must be positive");
        assert!(
            !mean_on.is_zero() && !mean_off.is_zero(),
            "period means must be nonzero"
        );
        OnOffBurst {
            on_rate,
            mean_on,
            mean_off,
            on: false,
            phase_until: SimTime::ZERO,
        }
    }

    fn advance_phase(&mut self, now: SimTime, rng: &mut SimRng) {
        while now >= self.phase_until {
            self.on = !self.on;
            let mean = if self.on { self.mean_on } else { self.mean_off };
            let hold = SimDuration::from_secs_f64(rng.exponential(1.0 / mean.as_secs_f64()))
                .max(SimDuration::from_micros(1));
            self.phase_until = self.phase_until.max(now).saturating_add(hold);
        }
    }
}

impl ArrivalProcess for OnOffBurst {
    fn next_arrival(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let mut t = now;
        loop {
            self.advance_phase(t, rng);
            if self.on {
                let gap = SimDuration::from_secs_f64(rng.exponential(self.on_rate))
                    .max(SimDuration::from_nanos(1));
                let cand = t.checked_add(gap)?;
                if cand < self.phase_until {
                    return Some(cand);
                }
                // Burst ended before the candidate arrival; skip to the
                // end of the burst and re-evaluate in the off phase.
                t = self.phase_until;
            } else {
                t = self.phase_until;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon_secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_rate_exact_count() {
        let mut p = ConstantRate::new(1000.0);
        let mut rng = SimRng::new(1);
        let times = p.generate(horizon_secs(1), &mut rng);
        // First arrival at 1ms, last below 1s.
        assert_eq!(times.len(), 999);
        assert_eq!(times[0], SimTime::from_millis(1));
    }

    #[test]
    fn constant_rate_evenly_spaced() {
        let mut p = ConstantRate::new(100.0);
        let mut rng = SimRng::new(1);
        let times = p.generate(horizon_secs(1), &mut rng);
        for w in times.windows(2) {
            assert_eq!(w[1] - w[0], SimDuration::from_millis(10));
        }
    }

    #[test]
    fn poisson_mean_rate_close() {
        let mut p = PoissonProcess::new(5000.0);
        let mut rng = SimRng::new(7);
        let times = p.generate(horizon_secs(10), &mut rng);
        let rate = times.len() as f64 / 10.0;
        assert!((rate - 5000.0).abs() < 150.0, "rate {rate}");
    }

    #[test]
    fn poisson_is_strictly_increasing() {
        let mut p = PoissonProcess::new(100000.0);
        let mut rng = SimRng::new(9);
        let times = p.generate(horizon_secs(1), &mut rng);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mmpp_rate_between_state_rates() {
        let mut p = MmppProcess::new(&[
            (1000.0, SimDuration::from_millis(100)),
            (20000.0, SimDuration::from_millis(50)),
        ]);
        let mut rng = SimRng::new(11);
        let times = p.generate(horizon_secs(10), &mut rng);
        let rate = times.len() as f64 / 10.0;
        assert!(rate > 1500.0 && rate < 19000.0, "rate {rate}");
    }

    #[test]
    fn mmpp_single_state_degenerates_to_poisson() {
        let mut p = MmppProcess::new(&[(3000.0, SimDuration::from_millis(10))]);
        let mut rng = SimRng::new(13);
        let times = p.generate(horizon_secs(5), &mut rng);
        let rate = times.len() as f64 / 5.0;
        assert!((rate - 3000.0).abs() < 200.0, "rate {rate}");
    }

    #[test]
    fn onoff_bursty_cv_exceeds_poisson() {
        // Coefficient of variation of inter-arrivals: Poisson ⇒ ~1,
        // bursty ⇒ noticeably above 1.
        let mut rng = SimRng::new(17);
        let mut burst = OnOffBurst::new(
            50_000.0,
            SimDuration::from_millis(5),
            SimDuration::from_millis(45),
        );
        let times = burst.generate(horizon_secs(5), &mut rng);
        assert!(times.len() > 1000);
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.5, "cv {cv} should reflect burstiness");
    }

    #[test]
    fn onoff_arrivals_only_in_bursts() {
        let mut rng = SimRng::new(19);
        let mut burst = OnOffBurst::new(
            10_000.0,
            SimDuration::from_millis(10),
            SimDuration::from_millis(90),
        );
        let times = burst.generate(horizon_secs(5), &mut rng);
        // Effective average rate must be far below the on-rate.
        let rate = times.len() as f64 / 5.0;
        assert!(rate < 4000.0, "rate {rate} should be duty-cycled down");
    }

    #[test]
    fn generate_respects_horizon() {
        let mut p = PoissonProcess::new(1000.0);
        let mut rng = SimRng::new(23);
        let horizon = SimTime::from_millis(100);
        let times = p.generate(horizon, &mut rng);
        assert!(times.iter().all(|&t| t < horizon));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        ConstantRate::new(0.0);
    }
}

//! The [`Trace`] container: an ordered sequence of production instants
//! for one producer, with the manipulations the evaluation needs.
//!
//! §VI-A: "The producers use the web server log data set … with different
//! phase shifts, namely, each consumer is shifted one *M*th further into
//! the dataset" — [`Trace::phase_shift`] implements exactly that
//! rotation.

use pc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An ordered sequence of item production times υ₁ ≤ υ₂ ≤ … for one
/// producer over a finite horizon.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    times: Vec<SimTime>,
    horizon: SimTime,
}

impl Trace {
    /// Wraps sorted timestamps into a trace over `[0, horizon)`.
    ///
    /// Panics if the times are unsorted or reach past the horizon.
    pub fn new(times: Vec<SimTime>, horizon: SimTime) -> Self {
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "trace times must be sorted"
        );
        if let Some(&last) = times.last() {
            assert!(last < horizon, "trace extends past its horizon");
        }
        Trace { times, horizon }
    }

    /// The production timestamps.
    #[inline]
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// The `idx`-th production timestamp, if any. Cursor accessor for
    /// the arrival-calendar front-end (DESIGN.md §14): the sim advances
    /// a per-pair index through a shared fleet trace one item at a time,
    /// so this must stay a bounds-checked load with no slice round-trip
    /// or cloning.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<SimTime> {
        self.times.get(idx).copied()
    }

    /// Consumes the trace, returning its timestamps without cloning.
    pub fn into_times(self) -> Vec<SimTime> {
        self.times
    }

    /// Number of items produced.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The horizon (run length) of the trace.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Mean production rate over the horizon, items/second.
    pub fn mean_rate(&self) -> f64 {
        if self.horizon == SimTime::ZERO {
            return 0.0;
        }
        self.times.len() as f64 / self.horizon.as_secs_f64()
    }

    /// Rotates the trace `fraction` of the way into itself: items before
    /// the cut wrap to the end, preserving the inter-arrival structure
    /// while decorrelating phases across consumers (§VI-A's "shifted one
    /// Mth further into the dataset").
    pub fn phase_shift(&self, fraction: f64) -> Trace {
        if self.times.is_empty() {
            return self.clone();
        }
        let fraction = fraction.rem_euclid(1.0);
        let cut = SimDuration::from_secs_f64(self.horizon.as_secs_f64() * fraction);
        let cut_time = SimTime::ZERO + cut;
        let split = self.times.partition_point(|&t| t < cut_time);
        let mut shifted: Vec<SimTime> = Vec::with_capacity(self.times.len());
        // Items at/after the cut move left by `cut`.
        shifted.extend(self.times[split..].iter().map(|&t| t - cut));
        // Items before the cut wrap around: + (horizon − cut).
        let wrap = self.horizon.saturating_since(cut_time);
        shifted.extend(self.times[..split].iter().map(|&t| t + wrap));
        Trace::new(shifted, self.horizon)
    }

    /// Number of items produced in `[from, to)` — the paper's γ (Eq. 1)
    /// restricted to this producer.
    pub fn count_between(&self, from: SimTime, to: SimTime) -> usize {
        let lo = self.times.partition_point(|&t| t < from);
        let hi = self.times.partition_point(|&t| t < to);
        hi - lo
    }

    /// Iterator over inter-arrival gaps.
    pub fn interarrivals(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.times.windows(2).map(|w| w[1] - w[0])
    }

    /// Truncates the trace to a shorter horizon.
    pub fn truncate(&self, horizon: SimTime) -> Trace {
        let n = self.times.partition_point(|&t| t < horizon);
        Trace {
            times: self.times[..n].to_vec(),
            horizon,
        }
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialisation cannot fail")
    }

    /// Deserialises from JSON produced by [`Trace::to_json`].
    pub fn from_json(json: &str) -> Result<Trace, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample_trace() -> Trace {
        Trace::new(vec![t(100), t(200), t(250), t(700), t(900)], t(1000))
    }

    #[test]
    fn basic_accessors() {
        let tr = sample_trace();
        assert_eq!(tr.len(), 5);
        assert!(!tr.is_empty());
        assert_eq!(tr.horizon(), t(1000));
        assert!((tr.mean_rate() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_rejected() {
        Trace::new(vec![t(5), t(3)], t(10));
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn past_horizon_rejected() {
        Trace::new(vec![t(5)], t(5));
    }

    #[test]
    fn count_between_is_gamma() {
        let tr = sample_trace();
        assert_eq!(tr.count_between(t(0), t(1000)), 5);
        assert_eq!(tr.count_between(t(100), t(250)), 2); // 100, 200
        assert_eq!(tr.count_between(t(250), t(250)), 0);
        assert_eq!(tr.count_between(t(901), t(1000)), 0);
    }

    #[test]
    fn phase_shift_preserves_count_and_horizon() {
        let tr = sample_trace();
        for f in [0.0, 0.1, 0.25, 0.5, 0.9] {
            let shifted = tr.phase_shift(f);
            assert_eq!(shifted.len(), tr.len(), "fraction {f}");
            assert_eq!(shifted.horizon(), tr.horizon());
            assert!(shifted.times().windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn phase_shift_half_rotates() {
        let tr = sample_trace();
        let shifted = tr.phase_shift(0.5);
        // Items ≥ 500ms (700, 900) move to 200, 400; items < 500ms wrap
        // to 600, 700, 750.
        assert_eq!(shifted.times(), &[t(200), t(400), t(600), t(700), t(750)]);
    }

    #[test]
    fn phase_shift_zero_is_identity() {
        let tr = sample_trace();
        assert_eq!(tr.phase_shift(0.0), tr);
        assert_eq!(tr.phase_shift(1.0), tr, "full rotation wraps to identity");
    }

    #[test]
    fn phase_shift_empty_trace() {
        let tr = Trace::new(vec![], t(100));
        assert_eq!(tr.phase_shift(0.3).len(), 0);
    }

    #[test]
    fn truncate_shortens() {
        let tr = sample_trace();
        let short = tr.truncate(t(300));
        assert_eq!(short.len(), 3);
        assert_eq!(short.horizon(), t(300));
    }

    #[test]
    fn interarrivals_gaps() {
        let tr = sample_trace();
        let gaps: Vec<_> = tr.interarrivals().collect();
        assert_eq!(gaps[0], SimDuration::from_millis(100));
        assert_eq!(gaps[1], SimDuration::from_millis(50));
        assert_eq!(gaps.len(), 4);
    }

    #[test]
    fn json_roundtrip() {
        let tr = sample_trace();
        let json = tr.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn mean_rate_empty_horizon() {
        let tr = Trace::new(vec![], SimTime::ZERO);
        assert_eq!(tr.mean_rate(), 0.0);
    }
}

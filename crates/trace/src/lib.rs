//! # pc-trace — workload trace generation and analysis
//!
//! The paper drives every experiment with the 1998 World Cup web-access
//! log [Arlitt & Jin], valued purely for its "sporadic changes in the
//! rate of production". That dataset is not redistributable here, so this
//! crate synthesises traces with the same qualitative structure (see
//! [`worldcup`]) and provides the trace manipulations the evaluation
//! needs (per-consumer phase shifts, §VI-A).
//!
//! * [`arrival`] — arrival processes: constant-rate, Poisson,
//!   Markov-modulated Poisson (MMPP), and on/off bursts.
//! * [`worldcup`] — the World-Cup-'98-like generator: diurnal baseline ×
//!   flash-crowd bursts × MMPP noise, deterministic per seed.
//! * [`planet`] — planet-scale fleets of per-pair traces for the
//!   large-M scaling experiments: heterogeneous rates, time-zone phase
//!   shifts, flash-crowd pairs.
//! * [`trace`] — the [`Trace`] container: timestamps, phase shifting,
//!   windowed rates, (de)serialisation.
//! * [`rate`] — rate-series analysis: windowed rates, burstiness.
//! * [`io`] — ingestion of *real* logs (timestamp-per-line or Common
//!   Log Format) for anyone who has the actual WC'98 dataset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod io;
pub mod planet;
pub mod rate;
pub mod trace;
pub mod worldcup;

pub use arrival::{ArrivalProcess, ConstantRate, MmppProcess, OnOffBurst, PoissonProcess};
pub use io::{parse_common_log, parse_timestamp_lines, to_trace, LoadError, ReplayOptions};
pub use planet::PlanetConfig;
pub use rate::{burstiness_index, windowed_rates};
pub use trace::Trace;
pub use worldcup::WorldCupConfig;

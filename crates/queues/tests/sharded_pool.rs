//! Property-based conservation checks for the sharded global pool
//! (DESIGN.md §11).
//!
//! Arbitrary interleavings of buffer grows/shrinks, targeted and
//! round-robin squeezes (the fault layer's overflow protocol) and
//! partial refills must uphold, at *every* step:
//!
//! * **global conservation** — Σ buffer capacities + Σ tracked squeeze
//!   holdings + pool available == pool total;
//! * **per-shard conservation** — for each shard s: shard available +
//!   Σ holdings attributed to s by every holder's provenance ledger ==
//!   shard total (the provenance vectors are exactly what makes this
//!   checkable);
//! * **grant-sum equivalence** — a sharded pool grants in total exactly
//!   what a single-counter pool of the same size would, for any shard
//!   count (this is the lemma behind the `scale.json` byte-determinism
//!   gate).

use pc_queues::{ElasticBuffer, GlobalPool};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    /// Grow buffer `b` toward `target`.
    Grow { b: usize, target: usize },
    /// Shrink buffer `b` toward `target`.
    Shrink { b: usize, target: usize },
    /// Round-robin squeeze from home shard `home` (best-effort `want`).
    Squeeze { home: usize, want: usize },
    /// Targeted squeeze confined to shard `shard`.
    SqueezeShard { shard: usize, want: usize },
    /// Refill `frac`/8ths of squeeze ledger `s`'s holdings.
    Refill { s: usize, frac: usize },
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4, 1usize..80).prop_map(|(b, target)| Op::Grow { b, target }),
            (0usize..4, 0usize..60).prop_map(|(b, target)| Op::Shrink { b, target }),
            (0usize..8, 1usize..50).prop_map(|(home, want)| Op::Squeeze { home, want }),
            (0usize..8, 1usize..50).prop_map(|(shard, want)| Op::SqueezeShard { shard, want }),
            (0usize..3, 1usize..9).prop_map(|(s, frac)| Op::Refill { s, frac }),
        ],
        1..max,
    )
}

/// One tracked squeeze ledger: provenance vector + how much it holds.
struct Squeezer {
    held: Vec<usize>,
    home: usize,
    holding: usize,
}

fn check_conservation(pool: &GlobalPool, buffers: &[ElasticBuffer<u32>], squeezers: &[Squeezer]) {
    let buffer_caps: usize = buffers.iter().map(|b| b.capacity()).sum();
    let squeezed: usize = squeezers.iter().map(|s| s.holding).sum();
    prop_assert_eq!(
        buffer_caps + squeezed + pool.available(),
        pool.total(),
        "global conservation"
    );
    for s in 0..pool.shards() {
        let held_here: usize = buffers
            .iter()
            .map(|b| b.shard_holdings()[s])
            .chain(squeezers.iter().map(|q| q.held[s]))
            .sum();
        prop_assert_eq!(
            pool.shard_available(s) + held_here,
            pool.shard_total(s),
            "per-shard conservation on shard {}",
            s
        );
    }
    // Every provenance vector must sum to what its holder thinks it has.
    for b in buffers {
        prop_assert_eq!(b.shard_holdings().iter().sum::<usize>(), b.capacity());
    }
    for q in squeezers {
        prop_assert_eq!(q.held.iter().sum::<usize>(), q.holding);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full interleaving property, across several shard counts.
    #[test]
    fn sharded_pool_conserves_under_interleavings(
        shards in 1usize..6,
        script in ops(120),
    ) {
        let total = 200usize;
        let pool = GlobalPool::with_shards(total, shards);
        let mut buffers: Vec<ElasticBuffer<u32>> = (0..4)
            .map(|i| {
                ElasticBuffer::with_min_at(Arc::clone(&pool), 20, 5, i)
                    .expect("4×20 of 200 always fits")
            })
            .collect();
        let mut squeezers: Vec<Squeezer> = (0..3)
            .map(|i| Squeezer {
                held: vec![0; pool.shards()],
                home: i,
                holding: 0,
            })
            .collect();

        for op in script {
            match op {
                Op::Grow { b, target } => {
                    buffers[b].grow_to(target);
                }
                Op::Shrink { b, target } => {
                    buffers[b].shrink_to(target);
                }
                Op::Squeeze { home, want } => {
                    let q = &mut squeezers[home % 3];
                    let got = pool.acquire_at(q.home, want, &mut q.held);
                    prop_assert!(got <= want);
                    q.holding += got;
                }
                Op::SqueezeShard { shard, want } => {
                    let q = &mut squeezers[shard % 3];
                    let s = shard % pool.shards();
                    let before = pool.shard_available(s);
                    let got = pool.acquire_shard(s, want, &mut q.held);
                    prop_assert_eq!(got, before.min(want), "targeted grant is exact");
                    q.holding += got;
                }
                Op::Refill { s, frac } => {
                    let q = &mut squeezers[s];
                    let back = q.holding * frac / 8;
                    if back > 0 {
                        pool.restore_at(q.home, back, &mut q.held);
                        q.holding -= back;
                    }
                }
            }
            check_conservation(&pool, &buffers, &squeezers);
        }

        // Teardown: squeezes repay, buffers drop; the pool must end full.
        for q in &mut squeezers {
            if q.holding > 0 {
                pool.restore_at(q.home, q.holding, &mut q.held);
                q.holding = 0;
            }
        }
        check_conservation(&pool, &buffers, &squeezers);
        drop(buffers);
        prop_assert_eq!(pool.available(), pool.total(), "all units home after drop");
    }

    /// Grant-sum equivalence: replaying one script of best-effort
    /// round-robin acquires and proportional restores grants identical
    /// totals on a 1-shard and an S-shard pool at every step.
    #[test]
    fn grants_match_single_counter_pool(
        shards in 2usize..6,
        script in prop::collection::vec((0usize..6, 1usize..60, any::<bool>()), 1..80),
    ) {
        let total = 150usize;
        let single = GlobalPool::with_shards(total, 1);
        let sharded = GlobalPool::with_shards(total, shards);
        let mut held_single = vec![0usize; 1];
        let mut held_sharded = vec![0usize; shards];
        let mut holding = 0usize;

        for (home, want, restore) in script {
            if restore {
                let back = holding / 2;
                if back > 0 {
                    single.restore_at(0, back, &mut held_single);
                    sharded.restore_at(home % shards, back, &mut held_sharded);
                    holding -= back;
                }
            } else {
                let a = single.acquire_at(0, want, &mut held_single);
                let b = sharded.acquire_at(home % shards, want, &mut held_sharded);
                prop_assert_eq!(a, b, "grant totals diverged");
                holding += a;
            }
            prop_assert_eq!(single.available(), sharded.available());
        }
    }
}

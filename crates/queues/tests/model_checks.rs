//! Property-based model checks: each queue is exercised with arbitrary
//! operation sequences against a `VecDeque` reference model.

use pc_queues::{spsc_ring, ElasticBuffer, GlobalPool, MutexQueue};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Drain,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..1000).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Drain),
        ],
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spsc_matches_reference_model(capacity in 1usize..40, script in ops(300)) {
        let (p, c) = spsc_ring::<u32>(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in script {
            match op {
                Op::Push(v) => {
                    let pushed = p.push(v).is_ok();
                    let model_pushed = model.len() < capacity;
                    prop_assert_eq!(pushed, model_pushed, "push acceptance diverged");
                    if model_pushed {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(c.pop(), model.pop_front());
                }
                Op::Drain => {
                    let mut out = Vec::new();
                    c.drain_into(&mut out);
                    let expected: Vec<u32> = model.drain(..).collect();
                    prop_assert_eq!(out, expected);
                }
            }
            prop_assert_eq!(c.len(), model.len());
            prop_assert_eq!(p.is_full(), model.len() == capacity);
        }
    }

    #[test]
    fn mutex_queue_matches_reference_model(capacity in 1usize..40, script in ops(300)) {
        let q = MutexQueue::<u32>::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in script {
            match op {
                Op::Push(v) => {
                    let pushed = q.try_push(v).is_ok();
                    let model_pushed = model.len() < capacity;
                    prop_assert_eq!(pushed, model_pushed);
                    if model_pushed {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(q.try_pop(), model.pop_front());
                }
                Op::Drain => {
                    let mut out = Vec::new();
                    q.drain_into(&mut out);
                    let expected: Vec<u32> = model.drain(..).collect();
                    prop_assert_eq!(out, expected);
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }

    #[test]
    fn elastic_buffer_matches_reference_model(
        base in 1usize..30,
        script in prop::collection::vec(
            prop_oneof![
                (0u32..1000).prop_map(Op::Push),
                Just(Op::Pop),
                Just(Op::Drain),
                // Resizes are injected via the value space below.
            ],
            1..200,
        ),
        resizes in prop::collection::vec((0usize..60, any::<bool>()), 0..40),
    ) {
        let pool = GlobalPool::new(200);
        let mut buf = ElasticBuffer::<u32>::new(Arc::clone(&pool), base).expect("fits");
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut resize_iter = resizes.into_iter();
        for (i, op) in script.into_iter().enumerate() {
            if i % 5 == 4 {
                if let Some((target, grow)) = resize_iter.next() {
                    if grow {
                        buf.grow_to(target);
                    } else {
                        buf.shrink_to(target);
                    }
                }
            }
            match op {
                Op::Push(v) => {
                    let had_room = model.len() < buf.capacity();
                    let pushed = buf.push(v).is_ok();
                    prop_assert_eq!(pushed, had_room, "push acceptance diverged");
                    if pushed {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(buf.pop(), model.pop_front());
                }
                Op::Drain => {
                    let mut out = Vec::new();
                    buf.drain_into(&mut out);
                    let expected: Vec<u32> = model.drain(..).collect();
                    prop_assert_eq!(out, expected);
                }
            }
            prop_assert_eq!(buf.len(), model.len());
            prop_assert!(buf.len() <= buf.capacity());
            prop_assert_eq!(buf.capacity() + pool.available(), 200);
        }
    }
}

/// Concurrent SPSC linearity: a producer and consumer hammer the ring
/// with random pacing; the consumer must see exactly 0..n in order.
#[test]
fn spsc_concurrent_ordering_many_capacities() {
    for capacity in [1usize, 7, 25] {
        let (p, c) = spsc_ring::<u64>(capacity);
        const N: u64 = 5_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                while let Err(back) = p.push(v) {
                    v = back;
                    std::hint::spin_loop();
                }
            }
        });
        let consumer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                if let Some(v) = c.pop() {
                    assert_eq!(v, next, "capacity {capacity}");
                    next += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    }
}

//! Property-based model checks: each queue is exercised with arbitrary
//! operation sequences against a `VecDeque` reference model, including
//! the batched `push_slice`/`pop_chunk`/`drain` operations interleaved
//! with single-item ones (wrap-around at capacity boundaries falls out
//! of small capacities under long scripts).

use pc_queues::{spsc_ring, Backoff, ElasticBuffer, GlobalPool, MutexQueue};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Drain,
    /// Batched producer op: push a whole slice, expect the fitting prefix.
    PushSlice(Vec<u32>),
    /// Batched consumer op: pop up to this many items in one transaction.
    PopChunk(usize),
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..1000).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Drain),
            prop::collection::vec(0u32..1000, 0..50).prop_map(Op::PushSlice),
            (0usize..50).prop_map(Op::PopChunk),
        ],
        1..max,
    )
}

/// Applies the fitting prefix of `items` to the reference model and
/// returns how many the real queue must accept.
fn model_push_slice(model: &mut VecDeque<u32>, capacity: usize, items: &[u32]) -> usize {
    let n = items.len().min(capacity - model.len());
    model.extend(items[..n].iter().copied());
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spsc_matches_reference_model(capacity in 1usize..40, script in ops(300)) {
        let (p, c) = spsc_ring::<u32>(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in script {
            match op {
                Op::Push(v) => {
                    let pushed = p.push(v).is_ok();
                    let model_pushed = model.len() < capacity;
                    prop_assert_eq!(pushed, model_pushed, "push acceptance diverged");
                    if model_pushed {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(c.pop(), model.pop_front());
                }
                Op::Drain => {
                    let mut out = Vec::new();
                    c.drain_into(&mut out);
                    let expected: Vec<u32> = model.drain(..).collect();
                    prop_assert_eq!(out, expected);
                }
                Op::PushSlice(items) => {
                    let expect = model_push_slice(&mut model, capacity, &items);
                    prop_assert_eq!(p.push_slice(&items), expect, "slice prefix diverged");
                }
                Op::PopChunk(max) => {
                    let mut out = Vec::new();
                    let n = c.pop_chunk(&mut out, max);
                    let expected: Vec<u32> =
                        model.drain(..max.min(model.len())).collect();
                    prop_assert_eq!(n, expected.len());
                    prop_assert_eq!(out, expected);
                }
            }
            prop_assert_eq!(c.len(), model.len());
            prop_assert_eq!(p.is_full(), model.len() == capacity);
        }
    }

    #[test]
    fn mutex_queue_matches_reference_model(capacity in 1usize..40, script in ops(300)) {
        let q = MutexQueue::<u32>::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in script {
            match op {
                Op::Push(v) => {
                    let pushed = q.try_push(v).is_ok();
                    let model_pushed = model.len() < capacity;
                    prop_assert_eq!(pushed, model_pushed);
                    if model_pushed {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(q.try_pop(), model.pop_front());
                }
                Op::Drain => {
                    let mut out = Vec::new();
                    q.drain_into(&mut out);
                    let expected: Vec<u32> = model.drain(..).collect();
                    prop_assert_eq!(out, expected);
                }
                Op::PushSlice(items) => {
                    let expect = model_push_slice(&mut model, capacity, &items);
                    prop_assert_eq!(q.push_slice(&items), expect, "slice prefix diverged");
                }
                Op::PopChunk(_) => {
                    // MutexQueue's batched pop is the full drain; a
                    // bounded chunk does not exist on this queue. Treat
                    // the op as a non-blocking session drain instead.
                    let mut out = Vec::new();
                    if let Some((n, blocked)) =
                        q.pop_timeout_drain(std::time::Duration::ZERO, &mut out)
                    {
                        prop_assert!(!blocked, "items were present; no sleep");
                        prop_assert_eq!(n, model.len());
                        let expected: Vec<u32> = model.drain(..).collect();
                        prop_assert_eq!(out, expected);
                    } else {
                        prop_assert!(model.is_empty());
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }

    #[test]
    fn elastic_buffer_matches_reference_model(
        base in 1usize..30,
        script in ops(200),
        resizes in prop::collection::vec((0usize..60, any::<bool>()), 0..40),
    ) {
        let pool = GlobalPool::new(200);
        let mut buf = ElasticBuffer::<u32>::new(Arc::clone(&pool), base).expect("fits");
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut resize_iter = resizes.into_iter();
        for (i, op) in script.into_iter().enumerate() {
            if i % 5 == 4 {
                if let Some((target, grow)) = resize_iter.next() {
                    if grow {
                        buf.grow_to(target);
                    } else {
                        buf.shrink_to(target);
                    }
                }
            }
            match op {
                Op::Push(v) => {
                    let had_room = model.len() < buf.capacity();
                    let pushed = buf.push(v).is_ok();
                    prop_assert_eq!(pushed, had_room, "push acceptance diverged");
                    if pushed {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(buf.pop(), model.pop_front());
                }
                Op::Drain | Op::PopChunk(_) => {
                    let mut out = Vec::new();
                    buf.drain_into(&mut out);
                    let expected: Vec<u32> = model.drain(..).collect();
                    prop_assert_eq!(out, expected);
                }
                Op::PushSlice(items) => {
                    // The elastic buffer has no slice API; item-at-a-time
                    // pushes of the same slice exercise segment reuse off
                    // the free list after the drains above.
                    for v in items {
                        let had_room = model.len() < buf.capacity();
                        let pushed = buf.push(v).is_ok();
                        prop_assert_eq!(pushed, had_room);
                        if pushed {
                            model.push_back(v);
                        }
                    }
                }
            }
            prop_assert_eq!(buf.len(), model.len());
            prop_assert!(buf.len() <= buf.capacity());
            prop_assert_eq!(buf.capacity() + pool.available(), 200);
        }
    }
}

/// Concurrent SPSC linearity: a producer and consumer hammer the ring
/// with random pacing; the consumer must see exactly 0..n in order.
/// Debug builds scale the volume down tenfold — unoptimised spin loops
/// otherwise dominate the workspace test wall time.
#[test]
fn spsc_concurrent_ordering_many_capacities() {
    const N: u64 = if cfg!(debug_assertions) { 500 } else { 5_000 };
    for capacity in [1usize, 7, 25] {
        let (p, c) = spsc_ring::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            let mut backoff = Backoff::new();
            for i in 0..N {
                let mut v = i;
                while let Err(back) = p.push(v) {
                    v = back;
                    backoff.snooze();
                }
                backoff.reset();
            }
        });
        let consumer = std::thread::spawn(move || {
            let mut next = 0u64;
            let mut backoff = Backoff::new();
            while next < N {
                if let Some(v) = c.pop() {
                    assert_eq!(v, next, "capacity {capacity}");
                    next += 1;
                    backoff.reset();
                } else {
                    backoff.snooze();
                }
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    }
}

/// Same linearity check over the batched endpoints: slices in, chunks
/// out, strict order preserved across wrap points and ring capacities
/// deliberately misaligned to the batch sizes.
#[test]
fn spsc_concurrent_batched_ordering() {
    const N: u64 = if cfg!(debug_assertions) { 500 } else { 5_000 };
    for (capacity, batch) in [(3usize, 2usize), (25, 17), (64, 64)] {
        let (p, c) = spsc_ring::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            let mut backoff = Backoff::new();
            let mut staged = Vec::with_capacity(batch);
            let mut next = 0u64;
            while next < N {
                staged.clear();
                let take = (batch as u64).min(N - next);
                staged.extend(next..next + take);
                let mut sent = 0;
                while sent < staged.len() {
                    let pushed = p.push_slice(&staged[sent..]);
                    if pushed == 0 {
                        backoff.snooze();
                    } else {
                        sent += pushed;
                        backoff.reset();
                    }
                }
                next += take;
            }
        });
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            let mut next = 0u64;
            let mut backoff = Backoff::new();
            while next < N {
                out.clear();
                if c.pop_chunk(&mut out, batch) == 0 {
                    backoff.snooze();
                    continue;
                }
                backoff.reset();
                for &v in &out {
                    assert_eq!(v, next, "capacity {capacity} batch {batch}");
                    next += 1;
                }
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    }
}

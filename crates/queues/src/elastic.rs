//! The PBPL elastic buffer and its shared global pool (§V-C).
//!
//! The paper pre-allocates a *global buffer* of size `B_g = B₀ × M` and
//! carves it into `M` per-consumer buffers whose walls are "elastic":
//!
//! * **Downsizing** — after reserving a slot, a consumer shrinks its
//!   buffer to just fit the items predicted to arrive before that slot
//!   (`Bᵢ = r̂ · (τ_next − τ_now)`), returning the excess to the pool.
//! * **Upsizing** — a consumer facing a production rate too high for any
//!   acceptable slot grows its buffer by whatever the pool can spare
//!   (`Bᵢ = min(B_g − ΣB_q, r̂ · (τ_next − τ_now))`).
//!
//! The paper notes the mechanism "is implemented using linked lists and
//! is, hence, not actual contiguous resizing". We honour that: an
//! [`ElasticBuffer`] is a FIFO over a chain of fixed-size segments, so
//! capacity changes never move items, and the accounting-level capacity
//! (in *items*) is what is borrowed from and returned to the
//! [`GlobalPool`].
//!
//! ## Sharding (DESIGN.md §11)
//!
//! At large M a single atomic counter serializes every capacity
//! transaction, so the pool is split into `S` sub-pools ("shards") of
//! near-equal totals. Each buffer has a *home* shard and tracks, per
//! shard, how many units it currently holds (its *provenance* vector):
//!
//! * **Overflow** — an acquisition drains the home shard first, then
//!   walks the remaining shards round-robin (`home+1, home+2, …`), so
//!   the total granted is `min(want, Σ availableₛ)` — exactly what a
//!   single-counter pool would grant. Shard count therefore never
//!   changes grant totals, trace bytes, or simulated energy.
//! * **Refill** — released units repay *foreign* shards first, in
//!   reverse acquisition order (`…, home+2, home+1`), and the home
//!   shard last, so borrowed capacity drains back where it came from.
//!
//! Both directions are deterministic, and conservation holds at two
//! granularities: globally (Σ capacities + available == total) and per
//! shard (Σ holdingsₛ + availableₛ == totalₛ).
//!
//! `GlobalPool::new` builds a single-shard pool, which behaves exactly
//! like the original single-counter implementation; the untracked
//! [`GlobalPool::try_reserve`]/[`GlobalPool::release`] API remains for
//! that case. Multi-shard pools should use the tracked
//! [`GlobalPool::acquire_at`]/[`GlobalPool::restore_at`] API (as
//! [`ElasticBuffer`] and the fault runtime do), which is what keeps the
//! per-shard ledger exact.

use pc_trace_events::{TraceEvent, TraceHandle};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Items per segment of an [`ElasticBuffer`]. Chosen so that a typical
/// paper-scale buffer (25–100 items) spans a handful of segments.
const SEGMENT_CAP: usize = 16;

/// Upper bound on recycled segments kept per buffer. Emptied segments go
/// to a free list instead of the allocator, so the steady-state
/// fill/drain cycle of a batching consumer allocates nothing; the bound
/// keeps a buffer that briefly grew huge from pinning that memory
/// forever.
const FREE_SEGMENTS_MAX: usize = 8;

/// One sub-pool of the global capacity pool.
#[derive(Debug)]
struct PoolShard {
    total: usize,
    available: AtomicUsize,
}

impl PoolShard {
    /// Takes up to `want` units from this shard, returning the grant.
    fn take(&self, want: usize) -> usize {
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            let grant = cur.min(want);
            if grant == 0 {
                return 0;
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - grant,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return grant,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Takes exactly `want` units or nothing.
    fn take_exact(&self, want: usize) -> bool {
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            if cur < want {
                return false;
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - want,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Returns `units` to this shard; panics past the shard total
    /// (always a double-release / mis-attributed provenance bug).
    fn put(&self, units: usize) {
        let prev = self.available.fetch_add(units, Ordering::AcqRel);
        assert!(
            prev + units <= self.total,
            "pool shard over-release: {} + {units} > shard total {}",
            prev,
            self.total
        );
    }
}

/// The pre-allocated global capacity pool shared by all consumers on a
/// system (`B_g` in the paper), internally split into `S ≥ 1` shards.
#[derive(Debug)]
pub struct GlobalPool {
    total: usize,
    shards: Box<[PoolShard]>,
}

impl GlobalPool {
    /// Creates a single-shard pool of `total` capacity units (items) —
    /// behaviourally identical to the original single-counter pool.
    pub fn new(total: usize) -> Arc<Self> {
        Self::with_shards(total, 1)
    }

    /// Creates a pool of `total` units split across `shards` sub-pools
    /// of near-equal size (the first `total % shards` shards get one
    /// extra unit).
    pub fn with_shards(total: usize, shards: usize) -> Arc<Self> {
        assert!(shards >= 1, "pool needs at least one shard");
        let base = total / shards;
        let extra = total % shards;
        let shards: Box<[PoolShard]> = (0..shards)
            .map(|s| {
                let t = base + usize::from(s < extra);
                PoolShard {
                    total: t,
                    available: AtomicUsize::new(t),
                }
            })
            .collect();
        Arc::new(GlobalPool { total, shards })
    }

    /// Number of shards (`S`).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Fixed total of shard `s`.
    pub fn shard_total(&self, s: usize) -> usize {
        self.shards[s].total
    }

    /// Units currently unreserved in shard `s`.
    pub fn shard_available(&self, s: usize) -> usize {
        self.shards[s].available.load(Ordering::Acquire)
    }

    /// Reserves up to `want` units without provenance tracking,
    /// returning how many were granted (possibly zero). Never
    /// over-grants. Walks shards from 0; on multi-shard pools prefer
    /// [`GlobalPool::acquire_at`], which keeps the per-shard ledger.
    pub fn try_reserve(&self, want: usize) -> usize {
        let mut remaining = want;
        for shard in self.shards.iter() {
            if remaining == 0 {
                break;
            }
            remaining -= shard.take(remaining);
        }
        want - remaining
    }

    /// Reserves exactly `want` units or nothing. Returns whether the
    /// reservation succeeded.
    pub fn try_reserve_exact(&self, want: usize) -> bool {
        if self.shards.len() == 1 {
            return self.shards[0].take_exact(want);
        }
        let mut held = vec![0usize; self.shards.len()];
        if self.acquire_at(0, want, &mut held) == want {
            true
        } else {
            self.restore_at(0, held.iter().sum(), &mut held);
            false
        }
    }

    /// Returns `units` to the pool without provenance tracking,
    /// refilling shards from 0 up to each shard's headroom.
    ///
    /// Panics if this would exceed the pool's total — that is always a
    /// double-release bug.
    pub fn release(&self, units: usize) {
        let mut remaining = units;
        for shard in self.shards.iter() {
            if remaining == 0 {
                return;
            }
            let headroom = shard
                .total
                .saturating_sub(shard.available.load(Ordering::Acquire));
            let pay = remaining.min(headroom);
            if pay > 0 {
                shard.put(pay);
                remaining -= pay;
            }
        }
        assert!(
            remaining == 0,
            "pool over-release: {units} exceeds outstanding reservations (total {})",
            self.total
        );
    }

    /// Reserves up to `want` units with per-shard provenance: the home
    /// shard is drained first, then the rest round-robin (`home+1, …`),
    /// so the grant equals `min(want, Σ availableₛ)` for any shard
    /// count. Grants are recorded into `held` (one slot per shard).
    /// Returns the total granted.
    pub fn acquire_at(&self, home: usize, want: usize, held: &mut [usize]) -> usize {
        let n = self.shards.len();
        debug_assert_eq!(held.len(), n, "provenance vector must match shard count");
        let mut remaining = want;
        for k in 0..n {
            if remaining == 0 {
                break;
            }
            let s = (home + k) % n;
            let got = self.shards[s].take(remaining);
            held[s] += got;
            remaining -= got;
        }
        want - remaining
    }

    /// Reserves up to `want` units from shard `s` *only* (no overflow
    /// walk), recording the grant into `held`. Used by shard-targeted
    /// fault injection, where the point is to drain one sub-pool.
    /// Returns the grant.
    pub fn acquire_shard(&self, s: usize, want: usize, held: &mut [usize]) -> usize {
        let got = self.shards[s].take(want);
        held[s] += got;
        got
    }

    /// Reserves exactly `want` units (recorded into `held`) or nothing.
    pub fn acquire_exact_at(&self, home: usize, want: usize, held: &mut [usize]) -> bool {
        let mut tmp = vec![0usize; self.shards.len()];
        if self.acquire_at(home, want, &mut tmp) == want {
            for (h, t) in held.iter_mut().zip(tmp.iter()) {
                *h += t;
            }
            true
        } else {
            let got = tmp.iter().sum();
            self.restore_at(home, got, &mut tmp);
            false
        }
    }

    /// Returns `units` to the pool, repaying the shards recorded in
    /// `held`: foreign shards first in reverse acquisition order
    /// (`…, home+2, home+1`), the home shard last, so borrowed capacity
    /// deterministically drains back where it came from.
    ///
    /// Panics if `units` exceeds the holdings in `held` — that is
    /// always a double-release bug.
    pub fn restore_at(&self, home: usize, units: usize, held: &mut [usize]) {
        let n = self.shards.len();
        debug_assert_eq!(held.len(), n, "provenance vector must match shard count");
        let mut remaining = units;
        for k in (0..n).rev() {
            if remaining == 0 {
                break;
            }
            let s = (home + k) % n;
            let pay = remaining.min(held[s]);
            if pay > 0 {
                self.shards[s].put(pay);
                held[s] -= pay;
                remaining -= pay;
            }
        }
        assert!(
            remaining == 0,
            "pool over-release: {units} exceeds tracked holdings (total {})",
            self.total
        );
    }

    /// Units currently unreserved across all shards.
    pub fn available(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.available.load(Ordering::Acquire))
            .sum()
    }

    /// The pool's fixed total (`B_g`).
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Error returned by [`ElasticBuffer::push`] when the buffer is at its
/// current capacity — the paper's *buffer overflow* condition, which
/// forces an unscheduled consumer wakeup.
#[derive(Debug, PartialEq, Eq)]
pub struct Overflow<T>(pub T);

/// A FIFO buffer of elastic capacity, backed by segments so that resizing
/// never relocates items, with capacity units accounted against a
/// [`GlobalPool`].
///
/// The initial capacity `B₀` is a *fair share*, not a floor: the paper's
/// downsizing explicitly shrinks a buffer below its initial allocation so
/// that "the unused space in the buffer is granted to consumers suffering
/// from a high production rate" (§VI-C reports a mean allocation of 43
/// against B₀ = 50). The hard floor is `min_capacity` (default 1) plus
/// current occupancy.
/// ```
/// use pc_queues::{ElasticBuffer, GlobalPool};
/// use std::sync::Arc;
///
/// // The paper's setup: B_g = B0 * M with zero slack.
/// let pool = GlobalPool::new(50);
/// let mut slow = ElasticBuffer::<u32>::new(Arc::clone(&pool), 25).unwrap();
/// let mut fast = ElasticBuffer::<u32>::new(Arc::clone(&pool), 25).unwrap();
/// slow.shrink_to(10);                   // donate unused capacity
/// assert_eq!(fast.grow_to(40), 40);     // the burster borrows it
/// assert_eq!(pool.available(), 0);
/// ```
#[derive(Debug)]
pub struct ElasticBuffer<T> {
    pool: Arc<GlobalPool>,
    /// Initial fair-share capacity (`B₀`); informational after creation.
    initial: usize,
    /// Hard lower bound on capacity.
    min_cap: usize,
    /// Current capacity in items, all accounted against the pool.
    cap: usize,
    /// Home shard for pool transactions (acquired first, repaid last).
    home: usize,
    /// Per-shard provenance: how many of `cap` units came from each
    /// pool shard. Always sums to `cap`.
    held: Vec<usize>,
    len: usize,
    segments: VecDeque<VecDeque<T>>,
    /// Recycled (empty) segments awaiting reuse, capped at
    /// [`FREE_SEGMENTS_MAX`]. Purely an allocation cache: it never
    /// affects FIFO order, occupancy, or pool accounting.
    free: Vec<VecDeque<T>>,
    /// Event-trace handle (disabled by default) and the pair index used
    /// as the `owner` field of emitted `Buffer*` events.
    trace: TraceHandle,
    owner: u32,
}

impl<T> ElasticBuffer<T> {
    /// Creates a buffer with initial capacity `initial` (reserved from
    /// `pool`) and a minimum capacity of 1, homed on shard 0.
    ///
    /// Returns `None` if the pool cannot cover the initial reservation —
    /// construction is the only operation that demands exact units.
    pub fn new(pool: Arc<GlobalPool>, initial: usize) -> Option<Self> {
        Self::with_min(pool, initial, 1)
    }

    /// Creates a buffer whose capacity never drops below `min_capacity`,
    /// homed on shard 0.
    pub fn with_min(pool: Arc<GlobalPool>, initial: usize, min_capacity: usize) -> Option<Self> {
        Self::with_min_at(pool, initial, min_capacity, 0)
    }

    /// Creates a buffer homed on pool shard `home` (taken modulo the
    /// shard count) whose capacity never drops below `min_capacity`.
    pub fn with_min_at(
        pool: Arc<GlobalPool>,
        initial: usize,
        min_capacity: usize,
        home: usize,
    ) -> Option<Self> {
        assert!(
            initial > 0,
            "elastic buffer initial capacity must be nonzero"
        );
        assert!(
            min_capacity >= 1 && min_capacity <= initial,
            "min capacity must be in 1..=initial"
        );
        let home = home % pool.shards();
        let mut held = vec![0usize; pool.shards()];
        if !pool.acquire_exact_at(home, initial, &mut held) {
            return None;
        }
        Some(ElasticBuffer {
            pool,
            initial,
            min_cap: min_capacity,
            cap: initial,
            home,
            held,
            len: 0,
            segments: VecDeque::new(),
            free: Vec::new(),
            trace: TraceHandle::disabled(),
            owner: 0,
        })
    }

    /// Attaches an event-trace handle, tagging this buffer's pool
    /// transactions with `owner` (the pair index). Emits a
    /// [`TraceEvent::BufferCreate`] carrying the pool totals so a replay
    /// oracle can track conservation from this point on.
    pub fn set_trace(&mut self, trace: TraceHandle, owner: u32) {
        self.trace = trace;
        self.owner = owner;
        self.trace.record(|| TraceEvent::BufferCreate {
            owner,
            capacity: self.cap as u64,
            pool_available: self.pool.available() as u64,
            pool_total: self.pool.total() as u64,
        });
    }

    /// Current capacity in items (`Bᵢ`).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The initial fair-share capacity (`B₀`).
    pub fn base_capacity(&self) -> usize {
        self.initial
    }

    /// The pool shard this buffer acquires from first and repays last.
    pub fn home_shard(&self) -> usize {
        self.home
    }

    /// Per-shard provenance of the current capacity; sums to
    /// [`ElasticBuffer::capacity`].
    pub fn shard_holdings(&self) -> &[usize] {
        &self.held
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the buffer is at capacity (the next push overflows).
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity()
    }

    /// Returns an emptied segment to the free list (or the allocator,
    /// past the cap).
    fn recycle(&mut self, segment: VecDeque<T>) {
        debug_assert!(segment.is_empty(), "only empty segments are recycled");
        if self.free.len() < FREE_SEGMENTS_MAX {
            self.free.push(segment);
        }
    }

    /// Takes a segment from the free list, falling back to a fresh
    /// allocation only when the list is empty.
    fn fresh_segment(&mut self) -> VecDeque<T> {
        self.free
            .pop()
            .unwrap_or_else(|| VecDeque::with_capacity(SEGMENT_CAP))
    }

    /// Pushes an item; reports [`Overflow`] at capacity.
    pub fn push(&mut self, value: T) -> Result<(), Overflow<T>> {
        if self.is_full() {
            return Err(Overflow(value));
        }
        let need_new_segment = self
            .segments
            .back()
            .map(|s| s.len() >= SEGMENT_CAP)
            .unwrap_or(true);
        if need_new_segment {
            let segment = self.fresh_segment();
            self.segments.push_back(segment);
        }
        self.segments
            .back_mut()
            .expect("just ensured a segment exists")
            .push_back(value);
        self.len += 1;
        Ok(())
    }

    /// Pops the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let front = self.segments.front_mut()?;
        let value = front.pop_front()?;
        if front.is_empty() {
            let emptied = self.segments.pop_front().expect("front exists");
            self.recycle(emptied);
        }
        self.len -= 1;
        Some(value)
    }

    /// Drains all items into `out` in FIFO order; returns the count.
    /// Emptied segments are recycled, so a batching consumer's
    /// steady-state fill/drain cycle stops touching the allocator.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        let mut n = 0;
        out.reserve(self.len);
        while let Some(mut seg) = self.segments.pop_front() {
            n += seg.len();
            out.extend(seg.drain(..));
            self.recycle(seg);
        }
        self.len = 0;
        n
    }

    /// Requests growth to `target` total capacity, borrowing from the
    /// pool (home shard first, then the rest round-robin). Grants
    /// whatever the pool can spare (the paper's upsizing is explicitly
    /// best-effort: `min(B_g − ΣB_q, …)`). Returns the new capacity.
    pub fn grow_to(&mut self, target: usize) -> usize {
        if target > self.cap {
            let from = self.cap;
            let granted = self
                .pool
                .acquire_at(self.home, target - self.cap, &mut self.held);
            self.cap += granted;
            self.trace.record(|| TraceEvent::BufferGrow {
                owner: self.owner,
                from: from as u64,
                to: self.cap as u64,
                want: target as u64,
                pool_available: self.pool.available() as u64,
            });
        }
        self.cap
    }

    /// Shrinks toward `target` capacity, returning freed units to the
    /// pool (foreign shards repaid first, home last). Capacity never
    /// drops below `min_capacity` nor below the current occupancy.
    /// Returns the new capacity.
    pub fn shrink_to(&mut self, target: usize) -> usize {
        let floor = self.min_cap.max(self.len).max(target);
        if self.cap > floor {
            let from = self.cap;
            let freed = self.cap - floor;
            self.cap = floor;
            self.pool.restore_at(self.home, freed, &mut self.held);
            self.trace.record(|| TraceEvent::BufferShrink {
                owner: self.owner,
                from: from as u64,
                to: self.cap as u64,
                pool_available: self.pool.available() as u64,
            });
        }
        self.cap
    }

    /// Shrinks or grows toward exactly `target` (clamped to base/len
    /// floors and pool availability). Returns the new capacity.
    pub fn resize_to(&mut self, target: usize) -> usize {
        let current = self.capacity();
        if target > current {
            self.grow_to(target)
        } else {
            self.shrink_to(target)
        }
    }

    /// Handle to the pool this buffer draws from.
    pub fn pool(&self) -> &Arc<GlobalPool> {
        &self.pool
    }
}

impl<T> Drop for ElasticBuffer<T> {
    fn drop(&mut self) {
        self.pool.restore_at(self.home, self.cap, &mut self.held);
        self.trace.record(|| TraceEvent::BufferDestroy {
            owner: self.owner,
            released: self.cap as u64,
            pool_available: self.pool.available() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_and_buffer(total: usize, base: usize) -> (Arc<GlobalPool>, ElasticBuffer<u64>) {
        let pool = GlobalPool::new(total);
        let buf = ElasticBuffer::new(Arc::clone(&pool), base).expect("base fits");
        (pool, buf)
    }

    #[test]
    fn pool_reserve_release_roundtrip() {
        let pool = GlobalPool::new(100);
        assert_eq!(pool.try_reserve(30), 30);
        assert_eq!(pool.available(), 70);
        assert_eq!(pool.try_reserve(100), 70, "partial grant");
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.try_reserve(1), 0);
        pool.release(100);
        assert_eq!(pool.available(), 100);
    }

    #[test]
    fn pool_exact_reservation() {
        let pool = GlobalPool::new(10);
        assert!(pool.try_reserve_exact(10));
        assert!(!pool.try_reserve_exact(1));
        pool.release(10);
        assert!(pool.try_reserve_exact(5));
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn pool_over_release_panics() {
        let pool = GlobalPool::new(5);
        pool.release(1);
    }

    #[test]
    fn sharded_totals_split_near_equal() {
        let pool = GlobalPool::with_shards(10, 4);
        assert_eq!(pool.shards(), 4);
        let totals: Vec<usize> = (0..4).map(|s| pool.shard_total(s)).collect();
        assert_eq!(totals, vec![3, 3, 2, 2]);
        assert_eq!(pool.total(), 10);
        assert_eq!(pool.available(), 10);
    }

    #[test]
    fn sharded_grant_total_matches_single_counter() {
        // The equivalence contract: grant == min(want, Σ available) for
        // any shard count, so shard count never changes grant totals.
        for shards in [1, 2, 3, 4, 7] {
            let pool = GlobalPool::with_shards(100, shards);
            let mut held = vec![0usize; shards];
            assert_eq!(pool.acquire_at(1 % shards, 30, &mut held), 30);
            assert_eq!(pool.available(), 70);
            assert_eq!(pool.acquire_at(1 % shards, 100, &mut held), 70);
            assert_eq!(pool.available(), 0);
            assert_eq!(held.iter().sum::<usize>(), 100);
            pool.restore_at(1 % shards, 100, &mut held);
            assert_eq!(pool.available(), 100);
            assert!(held.iter().all(|&h| h == 0));
        }
    }

    #[test]
    fn acquire_drains_home_then_round_robin() {
        let pool = GlobalPool::with_shards(40, 4); // 10 units each
        let mut held = vec![0usize; 4];
        assert_eq!(pool.acquire_at(2, 25, &mut held), 25);
        // Home shard 2 drained first, then 3, then 0 partially.
        assert_eq!(held, vec![5, 0, 10, 10]);
        assert_eq!(pool.shard_available(2), 0);
        assert_eq!(pool.shard_available(3), 0);
        assert_eq!(pool.shard_available(0), 5);
        assert_eq!(pool.shard_available(1), 10);
    }

    #[test]
    fn restore_repays_foreign_shards_first() {
        let pool = GlobalPool::with_shards(40, 4);
        let mut held = vec![0usize; 4];
        pool.acquire_at(2, 25, &mut held);
        // Releasing 8 units repays the most-foreign holdings first
        // (reverse acquisition order: shard 0 then 3), home last.
        pool.restore_at(2, 8, &mut held);
        assert_eq!(held, vec![0, 0, 10, 7]);
        assert_eq!(pool.shard_available(0), 10);
        assert_eq!(pool.shard_available(3), 3);
        assert_eq!(pool.shard_available(2), 0, "home repaid last");
    }

    #[test]
    fn per_shard_conservation_under_tracked_churn() {
        let pool = GlobalPool::with_shards(120, 3);
        let mut ledgers: Vec<Vec<usize>> = vec![vec![0; 3]; 4];
        let mut step = 7usize;
        for round in 0..300 {
            let who = (round + step) % 4;
            step = step.wrapping_mul(31).wrapping_add(17) % 97;
            let held = &mut ledgers[who];
            if step.is_multiple_of(2) {
                pool.acquire_at(who % 3, step % 13, held);
            } else {
                let owned: usize = held.iter().sum();
                pool.restore_at(who % 3, (step % 13).min(owned), held);
            }
            for s in 0..3 {
                let held_s: usize = ledgers.iter().map(|l| l[s]).sum();
                assert_eq!(
                    pool.shard_available(s) + held_s,
                    pool.shard_total(s),
                    "per-shard conservation"
                );
            }
            let held_all: usize = ledgers.iter().flatten().sum();
            assert_eq!(pool.available() + held_all, pool.total());
        }
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn restore_beyond_holdings_panics() {
        let pool = GlobalPool::with_shards(20, 2);
        let mut held = vec![0usize; 2];
        pool.acquire_at(0, 5, &mut held);
        pool.restore_at(0, 6, &mut held);
    }

    #[test]
    fn exact_acquire_rolls_back_on_failure() {
        let pool = GlobalPool::with_shards(20, 4);
        let mut sink = vec![0usize; 4];
        pool.acquire_at(0, 15, &mut sink);
        let mut held = vec![0usize; 4];
        assert!(!pool.acquire_exact_at(1, 10, &mut held));
        assert!(held.iter().all(|&h| h == 0), "failed exact must not leak");
        assert_eq!(pool.available(), 5);
        assert!(pool.acquire_exact_at(1, 5, &mut held));
        assert_eq!(held.iter().sum::<usize>(), 5);
    }

    #[test]
    fn buffer_construction_reserves_base() {
        let (pool, buf) = pool_and_buffer(50, 25);
        assert_eq!(buf.capacity(), 25);
        assert_eq!(pool.available(), 25);
    }

    #[test]
    fn buffer_construction_fails_without_units() {
        let pool = GlobalPool::new(10);
        assert!(ElasticBuffer::<u8>::new(Arc::clone(&pool), 25).is_none());
        assert_eq!(pool.available(), 10, "failed construction must not leak");
    }

    #[test]
    fn buffer_homed_on_shard_borrows_round_robin() {
        let pool = GlobalPool::with_shards(60, 3); // 20 each
        let mut buf = ElasticBuffer::<u8>::with_min_at(Arc::clone(&pool), 15, 1, 1).unwrap();
        assert_eq!(buf.home_shard(), 1);
        assert_eq!(buf.shard_holdings(), &[0, 15, 0]);
        // Growing past the home shard's remaining 5 borrows from shard 2.
        assert_eq!(buf.grow_to(30), 30);
        assert_eq!(buf.shard_holdings(), &[0, 20, 10]);
        // Shrinking repays the foreign shard 2 before the home shard.
        buf.shrink_to(22);
        assert_eq!(buf.shard_holdings(), &[0, 20, 2]);
        drop(buf);
        assert_eq!(pool.available(), 60);
        for s in 0..3 {
            assert_eq!(pool.shard_available(s), pool.shard_total(s));
        }
    }

    #[test]
    fn fifo_across_segments() {
        let (_pool, mut buf) = pool_and_buffer(200, 100);
        for i in 0..100u64 {
            buf.push(i).unwrap();
        }
        assert!(buf.is_full());
        for i in 0..100u64 {
            assert_eq!(buf.pop(), Some(i));
        }
        assert!(buf.is_empty());
        assert_eq!(buf.pop(), None);
    }

    #[test]
    fn overflow_at_capacity() {
        let (_pool, mut buf) = pool_and_buffer(10, 2);
        buf.push(1).unwrap();
        buf.push(2).unwrap();
        assert_eq!(buf.push(3), Err(Overflow(3)));
    }

    #[test]
    fn grow_converts_overflow_into_space() {
        let (pool, mut buf) = pool_and_buffer(50, 2);
        buf.push(1).unwrap();
        buf.push(2).unwrap();
        assert!(buf.push(3).is_err());
        assert_eq!(buf.grow_to(5), 5);
        buf.push(3).unwrap();
        assert_eq!(pool.available(), 45);
    }

    #[test]
    fn grow_is_best_effort() {
        let (pool, mut buf) = pool_and_buffer(30, 25);
        // Only 5 spare units exist.
        assert_eq!(buf.grow_to(100), 30);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn shrink_returns_units_and_respects_floors() {
        let (pool, mut buf) = pool_and_buffer(100, 25);
        buf.grow_to(60);
        assert_eq!(pool.available(), 40);
        for i in 0..30u64 {
            buf.push(i).unwrap();
        }
        // Occupancy floor: cannot shrink below 30 items.
        assert_eq!(buf.shrink_to(10), 30);
        assert_eq!(pool.available(), 70);
        // Drain, then only the min-capacity floor applies — B0 is a fair
        // share, not a floor (the paper's downsizing goes below it).
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert_eq!(buf.shrink_to(0), 1);
        assert_eq!(pool.available(), 99);
    }

    #[test]
    fn explicit_min_capacity_floor() {
        let pool = GlobalPool::new(100);
        let mut buf = ElasticBuffer::<u8>::with_min(Arc::clone(&pool), 25, 10).unwrap();
        assert_eq!(buf.shrink_to(0), 10);
        assert_eq!(pool.available(), 90);
    }

    #[test]
    fn resize_to_dispatches() {
        let (_pool, mut buf) = pool_and_buffer(100, 25);
        assert_eq!(buf.resize_to(40), 40);
        assert_eq!(buf.resize_to(30), 30);
        assert_eq!(buf.resize_to(10), 10);
        assert_eq!(buf.base_capacity(), 25, "B0 stays informational");
    }

    #[test]
    fn drop_releases_everything() {
        let pool = GlobalPool::new(100);
        {
            let mut buf = ElasticBuffer::<u8>::new(Arc::clone(&pool), 25).unwrap();
            buf.grow_to(70);
            assert_eq!(pool.available(), 30);
        }
        assert_eq!(pool.available(), 100);
    }

    #[test]
    fn drain_into_preserves_order() {
        let (_pool, mut buf) = pool_and_buffer(100, 50);
        for i in 0..40u64 {
            buf.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(buf.drain_into(&mut out), 40);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        assert_eq!(buf.len(), 0);
    }

    #[test]
    fn drain_recycles_segments_and_push_reuses_them() {
        let (_pool, mut buf) = pool_and_buffer(200, 100);
        for i in 0..100u64 {
            buf.push(i).unwrap();
        }
        let spanned = buf.segments.len();
        assert!(spanned > 1, "100 items must span several segments");
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert_eq!(
            buf.free.len(),
            spanned.min(FREE_SEGMENTS_MAX),
            "emptied segments land on the free list, capped"
        );
        // Refill: segments come back off the free list, not the
        // allocator — and FIFO semantics are untouched.
        let free_before = buf.free.len();
        for i in 0..(SEGMENT_CAP as u64 * 2) {
            buf.push(i).unwrap();
        }
        assert_eq!(buf.free.len(), free_before - 2, "two segments reused");
        for i in 0..(SEGMENT_CAP as u64 * 2) {
            assert_eq!(buf.pop(), Some(i));
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn pop_recycles_emptied_front_segment() {
        let (_pool, mut buf) = pool_and_buffer(100, 50);
        for i in 0..(SEGMENT_CAP as u64 + 1) {
            buf.push(i).unwrap();
        }
        assert!(buf.free.is_empty());
        for i in 0..(SEGMENT_CAP as u64) {
            assert_eq!(buf.pop(), Some(i));
        }
        assert_eq!(buf.free.len(), 1, "front segment recycled when emptied");
        assert_eq!(buf.pop(), Some(SEGMENT_CAP as u64));
    }

    #[test]
    fn two_buffers_share_one_pool() {
        // The paper's exact scenario with B_g = B0·M and zero slack:
        // a slow consumer downsizes below its fair share and a fast one
        // borrows the freed units ("the walls … are elastic").
        let pool = GlobalPool::new(50);
        let mut a = ElasticBuffer::<u8>::new(Arc::clone(&pool), 25).unwrap();
        let mut b = ElasticBuffer::<u8>::new(Arc::clone(&pool), 25).unwrap();
        assert_eq!(pool.available(), 0);
        assert_eq!(b.grow_to(40), 25, "nothing to borrow yet");
        a.shrink_to(5);
        assert_eq!(pool.available(), 20);
        assert_eq!(b.grow_to(40), 40);
        assert_eq!(pool.available(), 5);
        // a can reclaim toward its share as far as the pool allows.
        assert_eq!(a.grow_to(25), 10);
        drop(a);
        drop(b);
        assert_eq!(pool.available(), 50);
    }

    #[test]
    fn conservation_invariant_under_churn() {
        let pool = GlobalPool::new(120);
        let mut bufs: Vec<ElasticBuffer<u8>> = (0..3)
            .map(|_| ElasticBuffer::new(Arc::clone(&pool), 20).unwrap())
            .collect();
        let mut step = 0usize;
        for round in 0..200 {
            for i in 0..bufs.len() {
                step += 1;
                let b = &mut bufs[i];
                match (round + i + step) % 4 {
                    0 => {
                        b.grow_to(b.capacity() + 7);
                    }
                    1 => {
                        b.shrink_to(b.capacity().saturating_sub(5));
                    }
                    2 => {
                        let _ = b.push(0);
                    }
                    _ => {
                        b.pop();
                    }
                }
                let held: usize = bufs.iter().map(|b| b.capacity()).sum();
                assert_eq!(held + pool.available(), 120, "units conserved");
            }
        }
    }
}

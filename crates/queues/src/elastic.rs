//! The PBPL elastic buffer and its shared global pool (§V-C).
//!
//! The paper pre-allocates a *global buffer* of size `B_g = B₀ × M` and
//! carves it into `M` per-consumer buffers whose walls are "elastic":
//!
//! * **Downsizing** — after reserving a slot, a consumer shrinks its
//!   buffer to just fit the items predicted to arrive before that slot
//!   (`Bᵢ = r̂ · (τ_next − τ_now)`), returning the excess to the pool.
//! * **Upsizing** — a consumer facing a production rate too high for any
//!   acceptable slot grows its buffer by whatever the pool can spare
//!   (`Bᵢ = min(B_g − ΣB_q, r̂ · (τ_next − τ_now))`).
//!
//! The paper notes the mechanism "is implemented using linked lists and
//! is, hence, not actual contiguous resizing". We honour that: an
//! [`ElasticBuffer`] is a FIFO over a chain of fixed-size segments, so
//! capacity changes never move items, and the accounting-level capacity
//! (in *items*) is what is borrowed from and returned to the
//! [`GlobalPool`].
//!
//! The pool uses a single atomic counter so it can be shared both by the
//! single-threaded simulator and by native threads.

use pc_trace_events::{TraceEvent, TraceHandle};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Items per segment of an [`ElasticBuffer`]. Chosen so that a typical
/// paper-scale buffer (25–100 items) spans a handful of segments.
const SEGMENT_CAP: usize = 16;

/// Upper bound on recycled segments kept per buffer. Emptied segments go
/// to a free list instead of the allocator, so the steady-state
/// fill/drain cycle of a batching consumer allocates nothing; the bound
/// keeps a buffer that briefly grew huge from pinning that memory
/// forever.
const FREE_SEGMENTS_MAX: usize = 8;

/// The pre-allocated global capacity pool shared by all consumers on a
/// system (`B_g` in the paper).
#[derive(Debug)]
pub struct GlobalPool {
    total: usize,
    available: AtomicUsize,
}

impl GlobalPool {
    /// Creates a pool of `total` capacity units (items).
    pub fn new(total: usize) -> Arc<Self> {
        Arc::new(GlobalPool {
            total,
            available: AtomicUsize::new(total),
        })
    }

    /// Reserves up to `want` units, returning how many were granted
    /// (possibly zero). Never over-grants.
    pub fn try_reserve(&self, want: usize) -> usize {
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            let grant = cur.min(want);
            if grant == 0 {
                return 0;
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - grant,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return grant,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reserves exactly `want` units or nothing. Returns whether the
    /// reservation succeeded.
    pub fn try_reserve_exact(&self, want: usize) -> bool {
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            if cur < want {
                return false;
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - want,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Returns `units` to the pool.
    ///
    /// Panics if this would exceed the pool's total — that is always a
    /// double-release bug.
    pub fn release(&self, units: usize) {
        let prev = self.available.fetch_add(units, Ordering::AcqRel);
        assert!(
            prev + units <= self.total,
            "pool over-release: {} + {units} > total {}",
            prev,
            self.total
        );
    }

    /// Units currently unreserved.
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Acquire)
    }

    /// The pool's fixed total (`B_g`).
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Error returned by [`ElasticBuffer::push`] when the buffer is at its
/// current capacity — the paper's *buffer overflow* condition, which
/// forces an unscheduled consumer wakeup.
#[derive(Debug, PartialEq, Eq)]
pub struct Overflow<T>(pub T);

/// A FIFO buffer of elastic capacity, backed by segments so that resizing
/// never relocates items, with capacity units accounted against a
/// [`GlobalPool`].
///
/// The initial capacity `B₀` is a *fair share*, not a floor: the paper's
/// downsizing explicitly shrinks a buffer below its initial allocation so
/// that "the unused space in the buffer is granted to consumers suffering
/// from a high production rate" (§VI-C reports a mean allocation of 43
/// against B₀ = 50). The hard floor is `min_capacity` (default 1) plus
/// current occupancy.
/// ```
/// use pc_queues::{ElasticBuffer, GlobalPool};
/// use std::sync::Arc;
///
/// // The paper's setup: B_g = B0 * M with zero slack.
/// let pool = GlobalPool::new(50);
/// let mut slow = ElasticBuffer::<u32>::new(Arc::clone(&pool), 25).unwrap();
/// let mut fast = ElasticBuffer::<u32>::new(Arc::clone(&pool), 25).unwrap();
/// slow.shrink_to(10);                   // donate unused capacity
/// assert_eq!(fast.grow_to(40), 40);     // the burster borrows it
/// assert_eq!(pool.available(), 0);
/// ```
#[derive(Debug)]
pub struct ElasticBuffer<T> {
    pool: Arc<GlobalPool>,
    /// Initial fair-share capacity (`B₀`); informational after creation.
    initial: usize,
    /// Hard lower bound on capacity.
    min_cap: usize,
    /// Current capacity in items, all accounted against the pool.
    cap: usize,
    len: usize,
    segments: VecDeque<VecDeque<T>>,
    /// Recycled (empty) segments awaiting reuse, capped at
    /// [`FREE_SEGMENTS_MAX`]. Purely an allocation cache: it never
    /// affects FIFO order, occupancy, or pool accounting.
    free: Vec<VecDeque<T>>,
    /// Event-trace handle (disabled by default) and the pair index used
    /// as the `owner` field of emitted `Buffer*` events.
    trace: TraceHandle,
    owner: u32,
}

impl<T> ElasticBuffer<T> {
    /// Creates a buffer with initial capacity `initial` (reserved from
    /// `pool`) and a minimum capacity of 1.
    ///
    /// Returns `None` if the pool cannot cover the initial reservation —
    /// construction is the only operation that demands exact units.
    pub fn new(pool: Arc<GlobalPool>, initial: usize) -> Option<Self> {
        Self::with_min(pool, initial, 1)
    }

    /// Creates a buffer whose capacity never drops below `min_capacity`.
    pub fn with_min(pool: Arc<GlobalPool>, initial: usize, min_capacity: usize) -> Option<Self> {
        assert!(
            initial > 0,
            "elastic buffer initial capacity must be nonzero"
        );
        assert!(
            min_capacity >= 1 && min_capacity <= initial,
            "min capacity must be in 1..=initial"
        );
        if !pool.try_reserve_exact(initial) {
            return None;
        }
        Some(ElasticBuffer {
            pool,
            initial,
            min_cap: min_capacity,
            cap: initial,
            len: 0,
            segments: VecDeque::new(),
            free: Vec::new(),
            trace: TraceHandle::disabled(),
            owner: 0,
        })
    }

    /// Attaches an event-trace handle, tagging this buffer's pool
    /// transactions with `owner` (the pair index). Emits a
    /// [`TraceEvent::BufferCreate`] carrying the pool totals so a replay
    /// oracle can track conservation from this point on.
    pub fn set_trace(&mut self, trace: TraceHandle, owner: u32) {
        self.trace = trace;
        self.owner = owner;
        self.trace.record(|| TraceEvent::BufferCreate {
            owner,
            capacity: self.cap as u64,
            pool_available: self.pool.available() as u64,
            pool_total: self.pool.total() as u64,
        });
    }

    /// Current capacity in items (`Bᵢ`).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The initial fair-share capacity (`B₀`).
    pub fn base_capacity(&self) -> usize {
        self.initial
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the buffer is at capacity (the next push overflows).
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity()
    }

    /// Returns an emptied segment to the free list (or the allocator,
    /// past the cap).
    fn recycle(&mut self, segment: VecDeque<T>) {
        debug_assert!(segment.is_empty(), "only empty segments are recycled");
        if self.free.len() < FREE_SEGMENTS_MAX {
            self.free.push(segment);
        }
    }

    /// Takes a segment from the free list, falling back to a fresh
    /// allocation only when the list is empty.
    fn fresh_segment(&mut self) -> VecDeque<T> {
        self.free
            .pop()
            .unwrap_or_else(|| VecDeque::with_capacity(SEGMENT_CAP))
    }

    /// Pushes an item; reports [`Overflow`] at capacity.
    pub fn push(&mut self, value: T) -> Result<(), Overflow<T>> {
        if self.is_full() {
            return Err(Overflow(value));
        }
        let need_new_segment = self
            .segments
            .back()
            .map(|s| s.len() >= SEGMENT_CAP)
            .unwrap_or(true);
        if need_new_segment {
            let segment = self.fresh_segment();
            self.segments.push_back(segment);
        }
        self.segments
            .back_mut()
            .expect("just ensured a segment exists")
            .push_back(value);
        self.len += 1;
        Ok(())
    }

    /// Pops the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let front = self.segments.front_mut()?;
        let value = front.pop_front()?;
        if front.is_empty() {
            let emptied = self.segments.pop_front().expect("front exists");
            self.recycle(emptied);
        }
        self.len -= 1;
        Some(value)
    }

    /// Drains all items into `out` in FIFO order; returns the count.
    /// Emptied segments are recycled, so a batching consumer's
    /// steady-state fill/drain cycle stops touching the allocator.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        let mut n = 0;
        out.reserve(self.len);
        while let Some(mut seg) = self.segments.pop_front() {
            n += seg.len();
            out.extend(seg.drain(..));
            self.recycle(seg);
        }
        self.len = 0;
        n
    }

    /// Requests growth to `target` total capacity, borrowing from the
    /// pool. Grants whatever the pool can spare (the paper's upsizing is
    /// explicitly best-effort: `min(B_g − ΣB_q, …)`). Returns the new
    /// capacity.
    pub fn grow_to(&mut self, target: usize) -> usize {
        if target > self.cap {
            let from = self.cap;
            let granted = self.pool.try_reserve(target - self.cap);
            self.cap += granted;
            self.trace.record(|| TraceEvent::BufferGrow {
                owner: self.owner,
                from: from as u64,
                to: self.cap as u64,
                want: target as u64,
                pool_available: self.pool.available() as u64,
            });
        }
        self.cap
    }

    /// Shrinks toward `target` capacity, returning freed units to the
    /// pool. Capacity never drops below `min_capacity` nor below the
    /// current occupancy. Returns the new capacity.
    pub fn shrink_to(&mut self, target: usize) -> usize {
        let floor = self.min_cap.max(self.len).max(target);
        if self.cap > floor {
            let from = self.cap;
            let freed = self.cap - floor;
            self.cap = floor;
            self.pool.release(freed);
            self.trace.record(|| TraceEvent::BufferShrink {
                owner: self.owner,
                from: from as u64,
                to: self.cap as u64,
                pool_available: self.pool.available() as u64,
            });
        }
        self.cap
    }

    /// Shrinks or grows toward exactly `target` (clamped to base/len
    /// floors and pool availability). Returns the new capacity.
    pub fn resize_to(&mut self, target: usize) -> usize {
        let current = self.capacity();
        if target > current {
            self.grow_to(target)
        } else {
            self.shrink_to(target)
        }
    }

    /// Handle to the pool this buffer draws from.
    pub fn pool(&self) -> &Arc<GlobalPool> {
        &self.pool
    }
}

impl<T> Drop for ElasticBuffer<T> {
    fn drop(&mut self) {
        self.pool.release(self.cap);
        self.trace.record(|| TraceEvent::BufferDestroy {
            owner: self.owner,
            released: self.cap as u64,
            pool_available: self.pool.available() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_and_buffer(total: usize, base: usize) -> (Arc<GlobalPool>, ElasticBuffer<u64>) {
        let pool = GlobalPool::new(total);
        let buf = ElasticBuffer::new(Arc::clone(&pool), base).expect("base fits");
        (pool, buf)
    }

    #[test]
    fn pool_reserve_release_roundtrip() {
        let pool = GlobalPool::new(100);
        assert_eq!(pool.try_reserve(30), 30);
        assert_eq!(pool.available(), 70);
        assert_eq!(pool.try_reserve(100), 70, "partial grant");
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.try_reserve(1), 0);
        pool.release(100);
        assert_eq!(pool.available(), 100);
    }

    #[test]
    fn pool_exact_reservation() {
        let pool = GlobalPool::new(10);
        assert!(pool.try_reserve_exact(10));
        assert!(!pool.try_reserve_exact(1));
        pool.release(10);
        assert!(pool.try_reserve_exact(5));
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn pool_over_release_panics() {
        let pool = GlobalPool::new(5);
        pool.release(1);
    }

    #[test]
    fn buffer_construction_reserves_base() {
        let (pool, buf) = pool_and_buffer(50, 25);
        assert_eq!(buf.capacity(), 25);
        assert_eq!(pool.available(), 25);
    }

    #[test]
    fn buffer_construction_fails_without_units() {
        let pool = GlobalPool::new(10);
        assert!(ElasticBuffer::<u8>::new(Arc::clone(&pool), 25).is_none());
        assert_eq!(pool.available(), 10, "failed construction must not leak");
    }

    #[test]
    fn fifo_across_segments() {
        let (_pool, mut buf) = pool_and_buffer(200, 100);
        for i in 0..100u64 {
            buf.push(i).unwrap();
        }
        assert!(buf.is_full());
        for i in 0..100u64 {
            assert_eq!(buf.pop(), Some(i));
        }
        assert!(buf.is_empty());
        assert_eq!(buf.pop(), None);
    }

    #[test]
    fn overflow_at_capacity() {
        let (_pool, mut buf) = pool_and_buffer(10, 2);
        buf.push(1).unwrap();
        buf.push(2).unwrap();
        assert_eq!(buf.push(3), Err(Overflow(3)));
    }

    #[test]
    fn grow_converts_overflow_into_space() {
        let (pool, mut buf) = pool_and_buffer(50, 2);
        buf.push(1).unwrap();
        buf.push(2).unwrap();
        assert!(buf.push(3).is_err());
        assert_eq!(buf.grow_to(5), 5);
        buf.push(3).unwrap();
        assert_eq!(pool.available(), 45);
    }

    #[test]
    fn grow_is_best_effort() {
        let (pool, mut buf) = pool_and_buffer(30, 25);
        // Only 5 spare units exist.
        assert_eq!(buf.grow_to(100), 30);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn shrink_returns_units_and_respects_floors() {
        let (pool, mut buf) = pool_and_buffer(100, 25);
        buf.grow_to(60);
        assert_eq!(pool.available(), 40);
        for i in 0..30u64 {
            buf.push(i).unwrap();
        }
        // Occupancy floor: cannot shrink below 30 items.
        assert_eq!(buf.shrink_to(10), 30);
        assert_eq!(pool.available(), 70);
        // Drain, then only the min-capacity floor applies — B0 is a fair
        // share, not a floor (the paper's downsizing goes below it).
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert_eq!(buf.shrink_to(0), 1);
        assert_eq!(pool.available(), 99);
    }

    #[test]
    fn explicit_min_capacity_floor() {
        let pool = GlobalPool::new(100);
        let mut buf = ElasticBuffer::<u8>::with_min(Arc::clone(&pool), 25, 10).unwrap();
        assert_eq!(buf.shrink_to(0), 10);
        assert_eq!(pool.available(), 90);
    }

    #[test]
    fn resize_to_dispatches() {
        let (_pool, mut buf) = pool_and_buffer(100, 25);
        assert_eq!(buf.resize_to(40), 40);
        assert_eq!(buf.resize_to(30), 30);
        assert_eq!(buf.resize_to(10), 10);
        assert_eq!(buf.base_capacity(), 25, "B0 stays informational");
    }

    #[test]
    fn drop_releases_everything() {
        let pool = GlobalPool::new(100);
        {
            let mut buf = ElasticBuffer::<u8>::new(Arc::clone(&pool), 25).unwrap();
            buf.grow_to(70);
            assert_eq!(pool.available(), 30);
        }
        assert_eq!(pool.available(), 100);
    }

    #[test]
    fn drain_into_preserves_order() {
        let (_pool, mut buf) = pool_and_buffer(100, 50);
        for i in 0..40u64 {
            buf.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(buf.drain_into(&mut out), 40);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        assert_eq!(buf.len(), 0);
    }

    #[test]
    fn drain_recycles_segments_and_push_reuses_them() {
        let (_pool, mut buf) = pool_and_buffer(200, 100);
        for i in 0..100u64 {
            buf.push(i).unwrap();
        }
        let spanned = buf.segments.len();
        assert!(spanned > 1, "100 items must span several segments");
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert_eq!(
            buf.free.len(),
            spanned.min(FREE_SEGMENTS_MAX),
            "emptied segments land on the free list, capped"
        );
        // Refill: segments come back off the free list, not the
        // allocator — and FIFO semantics are untouched.
        let free_before = buf.free.len();
        for i in 0..(SEGMENT_CAP as u64 * 2) {
            buf.push(i).unwrap();
        }
        assert_eq!(buf.free.len(), free_before - 2, "two segments reused");
        for i in 0..(SEGMENT_CAP as u64 * 2) {
            assert_eq!(buf.pop(), Some(i));
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn pop_recycles_emptied_front_segment() {
        let (_pool, mut buf) = pool_and_buffer(100, 50);
        for i in 0..(SEGMENT_CAP as u64 + 1) {
            buf.push(i).unwrap();
        }
        assert!(buf.free.is_empty());
        for i in 0..(SEGMENT_CAP as u64) {
            assert_eq!(buf.pop(), Some(i));
        }
        assert_eq!(buf.free.len(), 1, "front segment recycled when emptied");
        assert_eq!(buf.pop(), Some(SEGMENT_CAP as u64));
    }

    #[test]
    fn two_buffers_share_one_pool() {
        // The paper's exact scenario with B_g = B0·M and zero slack:
        // a slow consumer downsizes below its fair share and a fast one
        // borrows the freed units ("the walls … are elastic").
        let pool = GlobalPool::new(50);
        let mut a = ElasticBuffer::<u8>::new(Arc::clone(&pool), 25).unwrap();
        let mut b = ElasticBuffer::<u8>::new(Arc::clone(&pool), 25).unwrap();
        assert_eq!(pool.available(), 0);
        assert_eq!(b.grow_to(40), 25, "nothing to borrow yet");
        a.shrink_to(5);
        assert_eq!(pool.available(), 20);
        assert_eq!(b.grow_to(40), 40);
        assert_eq!(pool.available(), 5);
        // a can reclaim toward its share as far as the pool allows.
        assert_eq!(a.grow_to(25), 10);
        drop(a);
        drop(b);
        assert_eq!(pool.available(), 50);
    }

    #[test]
    fn conservation_invariant_under_churn() {
        let pool = GlobalPool::new(120);
        let mut bufs: Vec<ElasticBuffer<u8>> = (0..3)
            .map(|_| ElasticBuffer::new(Arc::clone(&pool), 20).unwrap())
            .collect();
        let mut step = 0usize;
        for round in 0..200 {
            for i in 0..bufs.len() {
                step += 1;
                let b = &mut bufs[i];
                match (round + i + step) % 4 {
                    0 => {
                        b.grow_to(b.capacity() + 7);
                    }
                    1 => {
                        b.shrink_to(b.capacity().saturating_sub(5));
                    }
                    2 => {
                        let _ = b.push(0);
                    }
                    _ => {
                        b.pop();
                    }
                }
                let held: usize = bufs.iter().map(|b| b.capacity()).sum();
                assert_eq!(held + pool.available(), 120, "units conserved");
            }
        }
    }
}

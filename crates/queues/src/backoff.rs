//! Bounded exponential backoff for spin loops.
//!
//! Every spin site in this workspace (queue stress tests, the throughput
//! bench, the semaphore's spin-then-park fast path) faces the same
//! trade-off: a few pause-hinted spins win when the other side is running
//! on another core, but on a loaded or single-core machine an unbounded
//! `spin_loop()` burns the whole scheduler quantum before the peer can
//! make progress. [`Backoff`] packages the standard answer — exponential
//! pause-hinted spinning up to a small bound, then `yield_now` — behind
//! one call, mirroring `crossbeam::utils::Backoff` (which the offline
//! shim does not provide).

/// Doubling pause-hinted spin rounds are used until the step counter
/// reaches this limit (2⁶ = 64 pauses per round at the cap), after which
/// every snooze yields to the OS scheduler instead.
const SPIN_LIMIT: u32 = 6;

/// An exponential spin-then-yield backoff helper.
///
/// ```
/// use pc_queues::backoff::Backoff;
/// let mut backoff = Backoff::new();
/// let mut attempts = 0;
/// loop {
///     attempts += 1;
///     if attempts == 10 { break; }   // stand-in for "queue made progress"
///     backoff.snooze();
/// }
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Creates a backoff at the shortest spin step.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Waits a little longer than the last call: `2^step` pause hints
    /// while below the spin limit, a scheduler yield afterwards.
    pub fn snooze(&mut self) {
        if self.step < SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Whether the spin budget is exhausted and [`Backoff::snooze`] has
    /// switched to yielding. Callers that can park (condvar, semaphore)
    /// should do so once this turns true.
    pub fn is_completed(&self) -> bool {
        self.step >= SPIN_LIMIT
    }

    /// Resets to the shortest spin step (call after making progress).
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_after_spin_limit_snoozes() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        // Further snoozes stay in the yielding regime without panicking.
        b.snooze();
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}

//! The **Sem** implementation's queue (§III-A): "a circular buffer and two
//! semaphores used for synchronizing emptiness and fullness of the
//! buffer."
//!
//! Composition: an `items` semaphore counts filled slots, a `slots`
//! semaphore counts free slots, and the circular buffer itself is our
//! lock-free SPSC ring — safe because the paper's pairs are strictly
//! one producer to one consumer, and the semaphores enforce the bounds
//! before the ring is touched, so ring operations can never fail.

use crate::semaphore::Semaphore;
use crate::spsc::{spsc_ring, SpscConsumer, SpscProducer};
use std::sync::Arc;
use std::time::Duration;

struct Shared {
    items: Semaphore,
    slots: Semaphore,
    capacity: usize,
}

/// Producer half of a [`SemQueue`].
pub struct SemQueueProducer<T> {
    shared: Arc<Shared>,
    ring: SpscProducer<T>,
}

/// Consumer half of a [`SemQueue`].
pub struct SemQueueConsumer<T> {
    shared: Arc<Shared>,
    ring: SpscConsumer<T>,
}

/// Namespace type: construct with [`SemQueue::new`], which returns the two
/// halves.
pub struct SemQueue<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> SemQueue<T> {
    /// Creates a semaphore-synchronised circular buffer of `capacity`
    /// items and returns its two endpoint handles.
    #[allow(clippy::new_ret_no_self)] // constructor returns the endpoint pair
    pub fn new(capacity: usize) -> (SemQueueProducer<T>, SemQueueConsumer<T>) {
        assert!(capacity > 0, "SemQueue capacity must be nonzero");
        let (rp, rc) = spsc_ring(capacity);
        let shared = Arc::new(Shared {
            items: Semaphore::new(0),
            slots: Semaphore::new(capacity),
            capacity,
        });
        (
            SemQueueProducer {
                shared: Arc::clone(&shared),
                ring: rp,
            },
            SemQueueConsumer { shared, ring: rc },
        )
    }
}

impl<T> SemQueueProducer<T> {
    /// Pushes, blocking while the buffer is full. Returns `true` if the
    /// call blocked.
    pub fn push(&self, value: T) -> bool {
        let blocked = self.shared.slots.acquire();
        self.ring
            .push(value)
            .unwrap_or_else(|_| unreachable!("slots semaphore guarantees a free slot"));
        self.shared.items.release(1);
        blocked
    }

    /// Attempts to push without blocking.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        if !self.shared.slots.try_acquire() {
            return Err(value);
        }
        self.ring
            .push(value)
            .unwrap_or_else(|_| unreachable!("slots semaphore guarantees a free slot"));
        self.shared.items.release(1);
        Ok(())
    }

    /// Pushes as many items from `items` as there are free slots, without
    /// blocking, and returns the count (a prefix of the slice).
    ///
    /// One `slots` batch-take, one ring [`SpscProducer::push_slice`] and
    /// one `items` batch-release — three synchronisation points for the
    /// whole batch instead of three per item.
    pub fn push_slice(&self, items: &[T]) -> usize
    where
        T: Copy,
    {
        if items.is_empty() {
            return 0;
        }
        let granted = self.shared.slots.try_acquire_many(items.len());
        if granted == 0 {
            return 0;
        }
        let pushed = self.ring.push_slice(&items[..granted]);
        debug_assert_eq!(pushed, granted, "slots semaphore counted these slots");
        self.shared.items.release(pushed);
        pushed
    }

    /// Buffer capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> SemQueueConsumer<T> {
    /// Pops, blocking while empty. Returns `(value, blocked)`.
    pub fn pop(&self) -> (T, bool) {
        let blocked = self.shared.items.acquire();
        let v = self
            .ring
            .pop()
            .unwrap_or_else(|| unreachable!("items semaphore guarantees an item"));
        self.shared.slots.release(1);
        (v, blocked)
    }

    /// Attempts to pop without blocking.
    pub fn try_pop(&self) -> Option<T> {
        if !self.shared.items.try_acquire() {
            return None;
        }
        let v = self
            .ring
            .pop()
            .unwrap_or_else(|| unreachable!("items semaphore guarantees an item"));
        self.shared.slots.release(1);
        Some(v)
    }

    /// Pops with a deadline.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<(T, bool)> {
        let blocked = self.shared.items.acquire_timeout(timeout)?;
        let v = self
            .ring
            .pop()
            .unwrap_or_else(|| unreachable!("items semaphore guarantees an item"));
        self.shared.slots.release(1);
        Some((v, blocked))
    }

    /// Waits until at least one item is present, then drains every item
    /// currently accounted for into `out`. Returns `(count, blocked)`.
    /// This is the batch wait-and-drain the **BP** strategy uses when the
    /// producer signals a full buffer.
    pub fn wait_drain(&self, out: &mut Vec<T>) -> (usize, bool) {
        let (taken, blocked) = self.shared.items.acquire_many(self.shared.capacity);
        let popped = self.ring.pop_chunk(out, taken);
        debug_assert_eq!(popped, taken, "items semaphore counted these");
        self.shared.slots.release(taken);
        (taken, blocked)
    }

    /// Blocks (up to `timeout`) for the first item, then drains every
    /// item currently accounted for into `out` in the same transaction.
    /// Returns `Some((count, blocked))` on success, `None` on timeout.
    ///
    /// The consumer-side batch primitive matching
    /// [`MutexQueue::pop_timeout_drain`](crate::MutexQueue::pop_timeout_drain):
    /// one semaphore wait, one non-blocking batch-take of the rest, one
    /// ring [`SpscConsumer::pop_chunk`] and one `slots` batch-release per
    /// session.
    pub fn pop_timeout_drain(&self, timeout: Duration, out: &mut Vec<T>) -> Option<(usize, bool)> {
        let blocked = self.shared.items.acquire_timeout(timeout)?;
        let taken = 1 + self
            .shared
            .items
            .try_acquire_many(self.shared.capacity.saturating_sub(1));
        let popped = self.ring.pop_chunk(out, taken);
        debug_assert_eq!(popped, taken, "items semaphore counted these");
        self.shared.slots.release(taken);
        Some((taken, blocked))
    }

    /// Number of buffered items (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the buffer appears empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Buffer capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_basic() {
        let (p, c) = SemQueue::new(4);
        p.push(1);
        p.push(2);
        assert_eq!(c.pop().0, 1);
        assert_eq!(c.pop().0, 2);
    }

    #[test]
    fn try_paths_respect_bounds() {
        let (p, c) = SemQueue::new(2);
        p.try_push(1).unwrap();
        p.try_push(2).unwrap();
        assert_eq!(p.try_push(3), Err(3));
        assert_eq!(c.try_pop(), Some(1));
        assert_eq!(c.try_pop(), Some(2));
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn pop_timeout_expires_when_empty() {
        let (_p, c) = SemQueue::<u8>::new(1);
        assert!(c.pop_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn wait_drain_batches() {
        let (p, c) = SemQueue::new(8);
        for i in 0..6 {
            p.push(i);
        }
        let mut out = Vec::new();
        let (n, blocked) = c.wait_drain(&mut out);
        assert_eq!(n, 6);
        assert!(!blocked);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn producer_blocks_at_capacity() {
        let (p, c) = SemQueue::new(1);
        p.push(1);
        let producer = thread::spawn(move || {
            let blocked = p.push(2);
            (p, blocked)
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(c.pop().0, 1);
        let (_p, blocked) = producer.join().unwrap();
        assert!(blocked);
        assert_eq!(c.pop().0, 2);
    }

    #[test]
    fn push_slice_respects_free_slots() {
        let (p, c) = SemQueue::<u32>::new(4);
        assert_eq!(p.push_slice(&[]), 0);
        assert_eq!(p.push_slice(&[1, 2, 3]), 3);
        assert_eq!(p.push_slice(&[4, 5, 6]), 1, "clips at capacity");
        assert_eq!(p.push_slice(&[7]), 0);
        let mut out = Vec::new();
        let (n, _) = c.wait_drain(&mut out);
        assert_eq!(n, 4);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pop_timeout_drain_takes_session() {
        let (p, c) = SemQueue::<u32>::new(8);
        assert_eq!(p.push_slice(&[1, 2, 3, 4, 5]), 5);
        let mut out = Vec::new();
        let (n, blocked) = c
            .pop_timeout_drain(Duration::from_millis(10), &mut out)
            .expect("items present");
        assert_eq!(n, 5);
        assert!(!blocked);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert!(c
            .pop_timeout_drain(Duration::from_millis(5), &mut out)
            .is_none());
        // The slots must have been returned: the queue accepts a full
        // batch again.
        assert_eq!(p.push_slice(&[9; 8]), 8);
    }

    #[test]
    fn cross_thread_stress_ordered() {
        const N: u64 = if cfg!(debug_assertions) {
            2_000
        } else {
            20_000
        };
        let (p, c) = SemQueue::new(25);
        let producer = thread::spawn(move || {
            for i in 0..N {
                p.push(i);
            }
        });
        let consumer = thread::spawn(move || {
            for i in 0..N {
                assert_eq!(c.pop().0, i);
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    }
}

//! # pc-queues — queues and buffers for producer-consumer strategies
//!
//! Every implementation studied in the paper (§III-A) sits on one of these
//! structures, and the PBPL algorithm (§V-C) additionally needs an elastic
//! buffer backed by a shared global pool. All of them are built from
//! scratch here:
//!
//! * [`spsc`] — a lock-free single-producer/single-consumer ring buffer
//!   (the paper's "circular buffer"; each consumer is paired with exactly
//!   one producer, so SPSC is the right specialisation).
//! * [`semaphore`] — a counting semaphore with blocking, timeout, and
//!   try acquisition, reporting whether a call blocked (the hook the
//!   native runtime uses to count thread wakeups).
//! * [`bounded`] — the **Mutex** implementation: a bounded queue guarded
//!   by a mutex with two condition variables.
//! * [`semqueue`] — the **Sem** implementation: a circular buffer
//!   synchronised by an *items* and a *slots* semaphore.
//! * [`elastic`] — the PBPL buffer: a segmented FIFO whose capacity can
//!   grow and shrink against a pre-allocated [`elastic::GlobalPool`]
//!   ("implemented using linked lists and is, hence, not actual contiguous
//!   resizing", §V-C).
//! * [`backoff`] — bounded spin-then-yield backoff shared by every spin
//!   site (tests, benches, the semaphore's spin-then-park fast path).
//!
//! The queues form the *native fast path* (DESIGN.md §9): every one of
//! them exposes batched operations — [`spsc::SpscProducer::push_slice`] /
//! [`spsc::SpscConsumer::pop_chunk`] on the ring,
//! [`bounded::MutexQueue::pop_timeout_drain`] and
//! [`semqueue::SemQueueConsumer::pop_timeout_drain`] on the blocking
//! queues — so a batch costs one synchronisation transaction, not one
//! per item. That is the paper's amortisation argument applied to the
//! queue substrate itself.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backoff;
pub mod bounded;
pub mod elastic;
pub mod semaphore;
pub mod semqueue;
pub mod spsc;

pub use backoff::Backoff;
pub use bounded::MutexQueue;
pub use elastic::{ElasticBuffer, GlobalPool};
pub use semaphore::Semaphore;
pub use semqueue::SemQueue;
pub use spsc::{spsc_ring, SpscConsumer, SpscProducer};

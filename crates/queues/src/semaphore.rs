//! A counting semaphore.
//!
//! The paper's **Sem** implementation "uses a circular buffer and two
//! semaphores used for synchronizing emptiness and fullness of the
//! buffer" (§III-A). `std` has no semaphore, so we build one on a
//! `parking_lot` mutex + condvar.
//!
//! Every blocking operation reports whether it actually blocked: a
//! consumer thread that blocks and is later signalled is exactly one
//! *thread wakeup* in the paper's PowerTop metric, and the native runtime
//! counts wakeups through this interface.
//!
//! Blocking acquires are *adaptive*: a bounded spin-then-park fast path
//! (a short [`Backoff`] burst of try-acquires) runs before the condvar
//! wait. When a permit arrives within the spin window — the common case
//! for batching consumers woken microseconds after a producer release —
//! the thread never sleeps, which is both faster and, in the paper's
//! currency, zero wakeups. Only a genuine condvar sleep reports
//! `blocked = true`.

use crate::backoff::Backoff;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// A counting semaphore with blocking, timed and non-blocking acquisition.
pub struct Semaphore {
    permits: Mutex<usize>,
    cond: Condvar,
}

impl Semaphore {
    /// Creates a semaphore holding `initial` permits.
    pub fn new(initial: usize) -> Self {
        Semaphore {
            permits: Mutex::new(initial),
            cond: Condvar::new(),
        }
    }

    /// The bounded spin phase shared by the blocking acquires: repeated
    /// non-blocking grabs of up to `max` permits under exponential
    /// backoff, giving up (to let the caller park) once the spin budget
    /// is spent.
    fn spin_acquire_many(&self, max: usize) -> usize {
        let mut backoff = Backoff::new();
        loop {
            let taken = self.try_acquire_many(max);
            if taken > 0 {
                return taken;
            }
            if backoff.is_completed() {
                return 0;
            }
            backoff.snooze();
        }
    }

    /// Acquires one permit, blocking until available. Returns `true` if
    /// the call had to block (i.e. this was a genuine thread sleep/wakeup).
    pub fn acquire(&self) -> bool {
        if self.spin_acquire_many(1) == 1 {
            return false;
        }
        let mut permits = self.permits.lock();
        let mut blocked = false;
        while *permits == 0 {
            blocked = true;
            self.cond.wait(&mut permits);
        }
        *permits -= 1;
        blocked
    }

    /// Acquires up to `max` permits at once, blocking for the first.
    /// Returns `(taken, blocked)`. Taking everything available in one call
    /// is the batch-drain idiom used by batching consumers.
    pub fn acquire_many(&self, max: usize) -> (usize, bool) {
        assert!(max > 0, "acquire_many(0)");
        let taken = self.spin_acquire_many(max);
        if taken > 0 {
            return (taken, false);
        }
        let mut permits = self.permits.lock();
        let mut blocked = false;
        while *permits == 0 {
            blocked = true;
            self.cond.wait(&mut permits);
        }
        let taken = (*permits).min(max);
        *permits -= taken;
        (taken, blocked)
    }

    /// Attempts to acquire one permit without blocking.
    pub fn try_acquire(&self) -> bool {
        self.try_acquire_many(1) == 1
    }

    /// Attempts to take up to `max` permits without blocking; returns how
    /// many were taken (possibly zero). One lock acquisition regardless
    /// of the count — the non-blocking half of the batch-drain idiom.
    pub fn try_acquire_many(&self, max: usize) -> usize {
        let mut permits = self.permits.lock();
        let taken = (*permits).min(max);
        *permits -= taken;
        taken
    }

    /// Acquires one permit, giving up after `timeout`. Returns
    /// `Some(blocked)` on success, `None` on timeout.
    pub fn acquire_timeout(&self, timeout: Duration) -> Option<bool> {
        if self.spin_acquire_many(1) == 1 {
            return Some(false);
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut permits = self.permits.lock();
        let mut blocked = false;
        while *permits == 0 {
            blocked = true;
            if self.cond.wait_until(&mut permits, deadline).timed_out() {
                return if *permits > 0 {
                    *permits -= 1;
                    Some(blocked)
                } else {
                    None
                };
            }
        }
        *permits -= 1;
        Some(blocked)
    }

    /// Releases `n` permits, waking blocked acquirers.
    pub fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut permits = self.permits.lock();
        *permits += n;
        if n == 1 {
            self.cond.notify_one();
        } else {
            self.cond.notify_all();
        }
    }

    /// Current permit count (racy; for tests and diagnostics).
    pub fn available(&self) -> usize {
        *self.permits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn acquire_without_contention_does_not_block() {
        let s = Semaphore::new(2);
        assert!(!s.acquire());
        assert!(!s.acquire());
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn try_acquire_fails_at_zero() {
        let s = Semaphore::new(1);
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release(1);
        assert!(s.try_acquire());
    }

    #[test]
    fn acquire_many_takes_batch() {
        let s = Semaphore::new(10);
        let (taken, blocked) = s.acquire_many(4);
        assert_eq!(taken, 4);
        assert!(!blocked);
        let (taken, _) = s.acquire_many(100);
        assert_eq!(taken, 6);
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn timeout_expires_when_starved() {
        let s = Semaphore::new(0);
        assert_eq!(s.acquire_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn timeout_succeeds_when_released() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            s2.release(1);
        });
        let got = s.acquire_timeout(Duration::from_secs(5));
        assert_eq!(got, Some(true), "must succeed and report blocking");
        t.join().unwrap();
    }

    #[test]
    fn blocked_acquire_reports_wakeup() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let waiter = thread::spawn(move || s2.acquire());
        thread::sleep(Duration::from_millis(20));
        s.release(1);
        assert!(waiter.join().unwrap(), "waiter must report it blocked");
    }

    #[test]
    fn release_zero_is_noop() {
        let s = Semaphore::new(3);
        s.release(0);
        assert_eq!(s.available(), 3);
    }

    #[test]
    fn multi_producer_multi_consumer_counts_balance() {
        let s = Arc::new(Semaphore::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    s.release(1);
                }
            }));
        }
        let mut acquirers = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            acquirers.push(thread::spawn(move || {
                for _ in 0..1000 {
                    s.acquire();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for h in acquirers {
            h.join().unwrap();
        }
        assert_eq!(s.available(), 0);
    }
}

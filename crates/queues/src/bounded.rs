//! The **Mutex** implementation's queue (§III-A): a bounded queue guarded
//! by a mutex, with condition variables signalling "data available" to the
//! consumer and "space available" to the producer.
//!
//! Unlike the other §III implementations this one is deliberately *not* a
//! circular buffer — the paper notes the Mutex variant "uses a mutex to
//! ensure mutually exclusive concurrent access to a non-circular buffer" —
//! so we use a `VecDeque` under the lock.
//!
//! Blocking operations report whether they blocked, which the native
//! runtime converts into the paper's wakeups/s metric.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// A bounded multi-capability queue guarded by a mutex and two condvars.
pub struct MutexQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> MutexQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MutexQueue capacity must be nonzero");
        MutexQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Pushes, blocking while full. Returns `true` if the call blocked.
    pub fn push(&self, value: T) -> bool {
        let mut q = self.inner.lock();
        let mut blocked = false;
        while q.len() == self.capacity {
            blocked = true;
            self.not_full.wait(&mut q);
        }
        q.push_back(value);
        drop(q);
        self.not_empty.notify_one();
        blocked
    }

    /// Attempts to push without blocking; hands the value back when full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut q = self.inner.lock();
        if q.len() == self.capacity {
            return Err(value);
        }
        q.push_back(value);
        drop(q);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops, blocking while empty. Returns `(value, blocked)`.
    pub fn pop(&self) -> (T, bool) {
        let mut q = self.inner.lock();
        let mut blocked = false;
        while q.is_empty() {
            blocked = true;
            self.not_empty.wait(&mut q);
        }
        let v = q.pop_front().expect("non-empty by loop condition");
        drop(q);
        self.not_full.notify_one();
        (v, blocked)
    }

    /// Attempts to pop without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut q = self.inner.lock();
        let v = q.pop_front()?;
        drop(q);
        self.not_full.notify_one();
        Some(v)
    }

    /// Pops with a deadline. `Some((value, blocked))` on success, `None`
    /// on timeout.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<(T, bool)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.inner.lock();
        let mut blocked = false;
        while q.is_empty() {
            blocked = true;
            if self.not_empty.wait_until(&mut q, deadline).timed_out() {
                return q.pop_front().map(|v| {
                    self.not_full.notify_one();
                    (v, blocked)
                });
            }
        }
        let v = q.pop_front().expect("non-empty by loop condition");
        drop(q);
        self.not_full.notify_one();
        Some((v, blocked))
    }

    /// Pushes as many items from `items` as fit under a *single* lock
    /// acquisition and returns the count (a prefix of the slice; zero
    /// when full). One lock and one condvar signal per batch is the
    /// producer-side amortisation the batching strategies rely on.
    pub fn push_slice(&self, items: &[T]) -> usize
    where
        T: Copy,
    {
        if items.is_empty() {
            return 0;
        }
        let mut q = self.inner.lock();
        let n = items.len().min(self.capacity - q.len());
        q.extend(items[..n].iter().copied());
        drop(q);
        if n > 0 {
            self.not_empty.notify_one();
        }
        n
    }

    /// Blocks (up to `timeout`) for the first item, then drains
    /// *everything* queued into `out` in the same lock acquisition.
    /// Returns `Some((count, blocked))` on success, `None` on timeout.
    ///
    /// This is the consumer-side batch primitive: where a
    /// [`MutexQueue::pop_timeout`]-then-[`MutexQueue::try_pop`] loop
    /// pays one lock per item, a session costs exactly one lock here.
    pub fn pop_timeout_drain(&self, timeout: Duration, out: &mut Vec<T>) -> Option<(usize, bool)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.inner.lock();
        let mut blocked = false;
        while q.is_empty() {
            blocked = true;
            if self.not_empty.wait_until(&mut q, deadline).timed_out() && q.is_empty() {
                return None;
            }
        }
        let n = q.len();
        out.extend(q.drain(..));
        drop(q);
        self.not_full.notify_all();
        Some((n, blocked))
    }

    /// Takes everything currently queued into `out`, without blocking.
    /// Returns the count. This is what batching consumers call after a
    /// wakeup.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let mut q = self.inner.lock();
        let n = q.len();
        out.extend(q.drain(..));
        drop(q);
        if n > 0 {
            self.not_full.notify_all();
        }
        n
    }

    /// Current length (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = MutexQueue::new(4);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop().0, 1);
        assert_eq!(q.pop().0, 2);
        assert_eq!(q.pop().0, 3);
    }

    #[test]
    fn try_push_full() {
        let q = MutexQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.try_pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn try_pop_empty() {
        let q: MutexQueue<u8> = MutexQueue::new(2);
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(MutexQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(20));
        q.push(42);
        let (v, blocked) = consumer.join().unwrap();
        assert_eq!(v, 42);
        assert!(blocked, "consumer must report it blocked");
    }

    #[test]
    fn push_blocks_until_pop() {
        let q = Arc::new(MutexQueue::new(1));
        q.push(1);
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop().0, 1);
        assert!(producer.join().unwrap(), "producer must report it blocked");
        assert_eq!(q.pop().0, 2);
    }

    #[test]
    fn pop_timeout_expires() {
        let q: MutexQueue<u8> = MutexQueue::new(1);
        assert!(q.pop_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn drain_into_empties_queue() {
        let q = MutexQueue::new(8);
        for i in 0..5 {
            q.push(i);
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.drain_into(&mut out), 0);
    }

    #[test]
    fn push_slice_takes_prefix_and_signals() {
        let q = MutexQueue::<u32>::new(4);
        assert_eq!(q.push_slice(&[]), 0);
        assert_eq!(q.push_slice(&[1, 2, 3]), 3);
        assert_eq!(q.push_slice(&[4, 5, 6]), 1, "clips at capacity");
        assert_eq!(q.push_slice(&[7]), 0);
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 4);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pop_timeout_drain_batches_one_lock() {
        let q = MutexQueue::<u32>::new(8);
        for i in 0..5 {
            q.push(i);
        }
        let mut out = Vec::new();
        let (n, blocked) = q
            .pop_timeout_drain(Duration::from_millis(10), &mut out)
            .expect("items present");
        assert_eq!(n, 5);
        assert!(!blocked);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(q
            .pop_timeout_drain(Duration::from_millis(5), &mut out)
            .is_none());
    }

    #[test]
    fn pop_timeout_drain_wakes_on_push() {
        let q = Arc::new(MutexQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || {
            let mut out = Vec::new();
            let got = q2.pop_timeout_drain(Duration::from_secs(5), &mut out);
            (got, out)
        });
        thread::sleep(Duration::from_millis(20));
        q.push(7);
        let (got, out) = consumer.join().unwrap();
        let (n, blocked) = got.expect("push must wake the drain");
        assert_eq!(n, 1);
        assert!(blocked, "consumer must report it blocked");
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn producer_consumer_stress() {
        const N: u64 = if cfg!(debug_assertions) {
            2_000
        } else {
            20_000
        };
        let q = Arc::new(MutexQueue::new(25));
        let qp = Arc::clone(&q);
        let producer = thread::spawn(move || {
            for i in 0..N {
                qp.push(i);
            }
        });
        let qc = Arc::clone(&q);
        let consumer = thread::spawn(move || {
            let mut prev = None;
            for _ in 0..N {
                let (v, _) = qc.pop();
                if let Some(p) = prev {
                    assert!(v > p);
                }
                prev = Some(v);
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = MutexQueue::<u8>::new(0);
    }
}

//! A lock-free single-producer/single-consumer bounded ring buffer.
//!
//! The paper's producer-consumer pairs are strictly one-to-one ("each
//! consumer is associated with one and only one producer"), so the queue
//! connecting them can be specialised to SPSC and made entirely lock-free:
//! one atomic per side, no CAS, no locks, wait-free push and pop.
//!
//! Design (the classic Lamport queue with cached indices):
//!
//! * `head` counts pops, `tail` counts pushes; both increase monotonically
//!   and are reduced modulo the capacity to index the slot array. The
//!   counters are never expected to wrap: that takes 2⁶⁴ operations on the
//!   64-bit targets this crate supports (a compile-time check below rejects
//!   32-bit builds, where 2³² items are reachable in minutes).
//! * The producer publishes a slot write with a `Release` store of `tail`;
//!   the consumer observes it with an `Acquire` load — and symmetrically
//!   for `head` when freeing slots.
//! * Each side caches the opposing index so the common case touches only
//!   one shared cache line; the cache is refreshed only when the queue
//!   looks full (producer) or empty (consumer).
//! * `head` and `tail` live on separate cache lines (`CachePadded`) to
//!   avoid false sharing between the two threads.

use crossbeam::utils::CachePadded;

// Monotonic-counter correctness relies on usize never wrapping within a
// process lifetime; only true for 64-bit targets.
#[cfg(not(target_pointer_width = "64"))]
compile_error!("pc-queues' SPSC ring requires a 64-bit target (monotonic index counters)");
use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Number of items ever popped.
    head: CachePadded<AtomicUsize>,
    /// Number of items ever pushed.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the producer and consumer handles partition access so that a
// given slot is written by exactly one thread before being handed to the
// other via the Release/Acquire pair on `tail`/`head`.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Only one thread can be dropping the last Arc; relaxed is enough.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = &self.buf[i % self.cap];
            // SAFETY: slots in [head, tail) hold initialised values that
            // were never popped.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// The producing half of an SPSC ring. `!Clone`; owning it is the
/// capability to push.
pub struct SpscProducer<T> {
    inner: Arc<Inner<T>>,
    /// Producer's view of its own tail (exact).
    tail: Cell<usize>,
    /// Producer's stale view of the consumer's head.
    cached_head: Cell<usize>,
}

/// The consuming half of an SPSC ring. `!Clone`; owning it is the
/// capability to pop.
pub struct SpscConsumer<T> {
    inner: Arc<Inner<T>>,
    /// Consumer's view of its own head (exact).
    head: Cell<usize>,
    /// Consumer's stale view of the producer's tail.
    cached_tail: Cell<usize>,
}

// The Cells are per-handle scratch, and a handle is a unique capability,
// so handles may move across threads but not be shared.
unsafe impl<T: Send> Send for SpscProducer<T> {}
unsafe impl<T: Send> Send for SpscConsumer<T> {}

/// Creates a ring with room for exactly `capacity` items.
///
/// Panics if `capacity == 0`.
pub fn spsc_ring<T>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    assert!(capacity > 0, "SPSC ring capacity must be nonzero");
    let buf = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        buf,
        cap: capacity,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        SpscProducer {
            inner: Arc::clone(&inner),
            tail: Cell::new(0),
            cached_head: Cell::new(0),
        },
        SpscConsumer {
            inner,
            head: Cell::new(0),
            cached_tail: Cell::new(0),
        },
    )
}

impl<T> SpscProducer<T> {
    /// Attempts to push; returns the value back if the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.get();
        if tail - self.cached_head.get() == self.inner.cap {
            // Looks full; refresh the head snapshot.
            self.cached_head
                .set(self.inner.head.load(Ordering::Acquire));
            if tail - self.cached_head.get() == self.inner.cap {
                return Err(value);
            }
        }
        let slot = &self.inner.buf[tail % self.inner.cap];
        // SAFETY: slot indices in [head, head+cap) are exclusively ours
        // until published via the Release store below, and `tail` is below
        // `head + cap` by the check above.
        unsafe { (*slot.get()).write(value) };
        self.inner.tail.store(tail + 1, Ordering::Release);
        self.tail.set(tail + 1);
        Ok(())
    }

    /// Pushes as many items from `items` as there is space for and
    /// returns the count (a prefix of the slice; zero when full).
    ///
    /// This is the batch fast path: the free-space check runs once for
    /// the whole slice, the items are copied in at most two contiguous
    /// runs across the wrap point, and the entire batch is published
    /// with a *single* `Release` store of `tail` — one cross-core
    /// cache-line transfer per batch instead of one per item.
    pub fn push_slice(&self, items: &[T]) -> usize
    where
        T: Copy,
    {
        if items.is_empty() {
            return 0;
        }
        let tail = self.tail.get();
        let cap = self.inner.cap;
        let mut space = cap - (tail - self.cached_head.get());
        if space < items.len() {
            // Not enough room in the stale view; refresh once.
            self.cached_head
                .set(self.inner.head.load(Ordering::Acquire));
            space = cap - (tail - self.cached_head.get());
        }
        let n = space.min(items.len());
        if n == 0 {
            return 0;
        }
        let start = tail % cap;
        let first = n.min(cap - start);
        // SAFETY: slots [tail, tail+n) lie within [head, head+cap) by the
        // space check above and are exclusively ours until the Release
        // store publishes them.
        for (k, &v) in items[..first].iter().enumerate() {
            unsafe { (*self.inner.buf[start + k].get()).write(v) };
        }
        for (k, &v) in items[first..n].iter().enumerate() {
            unsafe { (*self.inner.buf[k].get()).write(v) };
        }
        self.inner.tail.store(tail + n, Ordering::Release);
        self.tail.set(tail + n);
        n
    }

    /// Number of items currently buffered (exact from the producer's
    /// perspective, may lag pops by the consumer).
    pub fn len(&self) -> usize {
        self.tail.get() - self.inner.head.load(Ordering::Acquire)
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the ring appears full.
    pub fn is_full(&self) -> bool {
        self.len() == self.inner.cap
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }
}

impl<T> SpscConsumer<T> {
    /// Pops the oldest item, or `None` if the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.get();
        if head == self.cached_tail.get() {
            // Looks empty; refresh the tail snapshot.
            self.cached_tail
                .set(self.inner.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        let slot = &self.inner.buf[head % self.inner.cap];
        // SAFETY: the Acquire load of `tail` above proved the producer
        // initialised this slot; we take ownership before publishing the
        // slot as free with the Release store.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.inner.head.store(head + 1, Ordering::Release);
        self.head.set(head + 1);
        Some(value)
    }

    /// Pops up to `max` items into `out` and returns the count.
    ///
    /// The batch fast path mirroring [`SpscProducer::push_slice`]: one
    /// availability check (refreshing the cached tail only when the
    /// stale view cannot satisfy `max`), at most two contiguous read
    /// runs across the wrap point, and a *single* `Release` store of
    /// `head` frees the whole batch for the producer.
    pub fn pop_chunk(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let head = self.head.get();
        let mut avail = self.cached_tail.get() - head;
        if avail < max {
            self.cached_tail
                .set(self.inner.tail.load(Ordering::Acquire));
            avail = self.cached_tail.get() - head;
        }
        let n = avail.min(max);
        if n == 0 {
            return 0;
        }
        let cap = self.inner.cap;
        out.reserve(n);
        let start = head % cap;
        let first = n.min(cap - start);
        // SAFETY: the Acquire load of `tail` proved the producer
        // initialised slots [head, head+n); we take ownership of each
        // before the Release store below publishes them as free.
        for k in 0..first {
            out.push(unsafe { (*self.inner.buf[start + k].get()).assume_init_read() });
        }
        for k in 0..(n - first) {
            out.push(unsafe { (*self.inner.buf[k].get()).assume_init_read() });
        }
        self.inner.head.store(head + n, Ordering::Release);
        self.head.set(head + n);
        n
    }

    /// Pops everything currently visible into `out`; returns the count.
    /// This is the batch-drain primitive the BP/PBP/SPBP/PBPL consumers
    /// are built on (a [`SpscConsumer::pop_chunk`] with no size limit).
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        self.pop_chunk(out, usize::MAX)
    }

    /// Number of items currently buffered (exact from the consumer's
    /// perspective, may lag pushes by the producer).
    pub fn len(&self) -> usize {
        self.inner.tail.load(Ordering::Acquire) - self.head.get()
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::Backoff;
    use std::thread;

    /// Debug builds scale the cross-thread stress iteration counts down
    /// tenfold: the unoptimised spin loops otherwise dominate the whole
    /// workspace test run. Release builds keep the full counts.
    const fn stress_n(release: u64) -> u64 {
        if cfg!(debug_assertions) {
            release / 10
        } else {
            release
        }
    }

    #[test]
    fn fifo_single_thread() {
        let (p, c) = spsc_ring(4);
        assert!(c.pop().is_none());
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(c.pop(), Some(1));
        p.push(3).unwrap();
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(3));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let (p, c) = spsc_ring(2);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.push(3), Err(3));
        assert!(p.is_full());
        c.pop().unwrap();
        p.push(3).unwrap();
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(3));
    }

    #[test]
    fn capacity_one_alternates() {
        let (p, c) = spsc_ring(1);
        for i in 0..100 {
            p.push(i).unwrap();
            assert_eq!(p.push(i), Err(i));
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn len_views_agree_when_quiescent() {
        let (p, c) = spsc_ring(8);
        for i in 0..5 {
            p.push(i).unwrap();
        }
        assert_eq!(p.len(), 5);
        assert_eq!(c.len(), 5);
        c.pop();
        assert_eq!(c.len(), 4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.capacity(), 8);
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn drain_into_takes_everything() {
        let (p, c) = spsc_ring(16);
        for i in 0..10 {
            p.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(c.drain_into(&mut out), 10);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(c.is_empty());
    }

    #[test]
    fn wraparound_many_times() {
        let (p, c) = spsc_ring(3);
        for i in 0..1000 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn drops_remaining_items() {
        // Detect double-drop / leak with a counting guard.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let (p, c) = spsc_ring(8);
            for _ in 0..5 {
                assert!(p.push(Guard).is_ok());
            }
            drop(c.pop()); // one popped and dropped
                           // p, c dropped here with 4 items inside
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn push_slice_fills_and_reports_prefix() {
        let (p, c) = spsc_ring::<u32>(8);
        assert_eq!(p.push_slice(&[]), 0);
        assert_eq!(p.push_slice(&[1, 2, 3]), 3);
        assert_eq!(p.push_slice(&[4, 5, 6, 7, 8, 9, 10]), 5, "clips at cap");
        assert!(p.is_full());
        assert_eq!(p.push_slice(&[99]), 0);
        for want in 1..=8 {
            assert_eq!(c.pop(), Some(want));
        }
    }

    #[test]
    fn pop_chunk_respects_max_and_order() {
        let (p, c) = spsc_ring::<u32>(8);
        assert_eq!(p.push_slice(&[1, 2, 3, 4, 5]), 5);
        let mut out = Vec::new();
        assert_eq!(c.pop_chunk(&mut out, 0), 0);
        assert_eq!(c.pop_chunk(&mut out, 2), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(c.pop_chunk(&mut out, 100), 3);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(c.pop_chunk(&mut out, 1), 0);
    }

    #[test]
    fn batched_ops_wrap_around() {
        // Drive the cursors far past several wrap points with batches
        // deliberately misaligned to the capacity.
        let (p, c) = spsc_ring::<u64>(7);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        let mut out = Vec::new();
        for round in 0..200u64 {
            let batch: Vec<u64> = (0..(round % 5) + 1).map(|k| next_in + k).collect();
            let pushed = p.push_slice(&batch);
            next_in += pushed as u64;
            out.clear();
            let popped = c.pop_chunk(&mut out, (round % 4 + 1) as usize);
            assert_eq!(popped, out.len());
            for &v in &out {
                assert_eq!(v, next_out, "FIFO across wrap");
                next_out += 1;
            }
        }
        out.clear();
        c.drain_into(&mut out);
        for v in out {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_in, next_out, "every pushed item popped exactly once");
    }

    #[test]
    fn two_thread_stress_no_loss_no_dup() {
        const N: u64 = stress_n(40_000);
        let (p, c) = spsc_ring(64);
        let producer = thread::spawn(move || {
            let mut backoff = Backoff::new();
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.push(v) {
                        Ok(()) => {
                            backoff.reset();
                            break;
                        }
                        Err(back) => {
                            v = back;
                            backoff.snooze();
                        }
                    }
                }
            }
        });
        let consumer = thread::spawn(move || {
            let mut expected = 0u64;
            let mut sum = 0u128;
            let mut backoff = Backoff::new();
            while expected < N {
                if let Some(v) = c.pop() {
                    assert_eq!(v, expected, "items must arrive in order");
                    sum += v as u128;
                    expected += 1;
                    backoff.reset();
                } else {
                    backoff.snooze();
                }
            }
            sum
        });
        producer.join().unwrap();
        let sum = consumer.join().unwrap();
        assert_eq!(sum, (N as u128 - 1) * N as u128 / 2);
    }

    #[test]
    fn two_thread_batch_drain_stress() {
        const N: u64 = stress_n(25_000);
        let (p, c) = spsc_ring(25); // the paper's small buffer size
        let producer = thread::spawn(move || {
            let mut backoff = Backoff::new();
            for i in 0..N {
                let mut v = i;
                while let Err(back) = p.push(v) {
                    v = back;
                    backoff.snooze();
                }
                backoff.reset();
            }
        });
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            let mut out = Vec::new();
            let mut backoff = Backoff::new();
            while (got.len() as u64) < N {
                out.clear();
                if c.drain_into(&mut out) > 0 {
                    got.extend_from_slice(&out);
                    backoff.reset();
                } else {
                    backoff.snooze();
                }
            }
            got
        });
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got.len() as u64, N);
        assert!(got.windows(2).all(|w| w[0] + 1 == w[1]), "strictly ordered");
    }

    #[test]
    fn two_thread_batched_api_stress() {
        // The push_slice/pop_chunk pair under real concurrency: no loss,
        // no duplication, strict order, across many wrap points.
        const N: u64 = stress_n(30_000);
        const BATCH: usize = 17; // misaligned to the capacity on purpose
        let (p, c) = spsc_ring(64);
        let producer = thread::spawn(move || {
            let mut backoff = Backoff::new();
            let mut next = 0u64;
            let mut staged: Vec<u64> = Vec::with_capacity(BATCH);
            while next < N {
                staged.clear();
                let take = BATCH.min((N - next) as usize);
                staged.extend(next..next + take as u64);
                let mut sent = 0;
                while sent < staged.len() {
                    let pushed = p.push_slice(&staged[sent..]);
                    if pushed == 0 {
                        backoff.snooze();
                    } else {
                        sent += pushed;
                        backoff.reset();
                    }
                }
                next += take as u64;
            }
        });
        let consumer = thread::spawn(move || {
            let mut expected = 0u64;
            let mut out = Vec::new();
            let mut backoff = Backoff::new();
            while expected < N {
                out.clear();
                if c.pop_chunk(&mut out, BATCH) == 0 {
                    backoff.snooze();
                    continue;
                }
                backoff.reset();
                for &v in &out {
                    assert_eq!(v, expected, "strict order across batches");
                    expected += 1;
                }
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = spsc_ring::<u8>(0);
    }
}

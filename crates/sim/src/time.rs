//! Simulated time.
//!
//! All simulation time is kept in integer nanoseconds. Integer time makes
//! event ordering total and platform-independent, which in turn makes every
//! experiment in this repository bit-reproducible — a property the paper's
//! oscilloscope-based measurements obviously did not have, and one we lean
//! on heavily in tests.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated timeline, in nanoseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the origin.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the origin
    /// (saturating at the representable maximum).
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros.saturating_mul(1_000))
    }

    /// Creates an instant `millis` milliseconds after the origin
    /// (saturating).
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis.saturating_mul(1_000_000))
    }

    /// Creates an instant `secs` seconds after the origin (saturating).
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000_000))
    }

    /// Nanoseconds since the origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (lossy for very large values).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self - earlier`, panicking on underflow in debug builds.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            self >= earlier,
            "SimTime::since underflow: {self} < {earlier}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A duration of `nanos` nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// A duration of `micros` microseconds (saturating at the
    /// representable maximum).
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// A duration of `millis` milliseconds (saturating).
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// A duration of `secs` seconds (saturating).
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// A duration of `secs` seconds given as a float. Negative and NaN
    /// inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// Duration in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest nanosecond. Negative and NaN factors clamp to zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    /// Panics on overflow in all build profiles (a wrapped duration would
    /// silently corrupt a simulation).
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(k)
                .expect("SimDuration multiply overflow"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Integer division: how many `other` spans fit into `self`.
    #[inline]
    fn div(self, other: SimDuration) -> u64 {
        self.0 / other.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d * 3, SimDuration::from_micros(300));
        assert_eq!(d / 4, SimDuration::from_micros(25));
        assert_eq!(SimDuration::from_millis(1) / d, 10);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_constructors() {
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration::MAX);
        assert_eq!(SimTime::from_secs(5).as_nanos(), 5_000_000_000);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn mul_overflow_panics() {
        let _ = SimDuration::MAX * 2;
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimDuration::from_secs(50).to_string(), "50.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(5) < SimTime::from_nanos(6));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }
}

//! A cancellable discrete-event priority queue.
//!
//! Events are ordered by their scheduled time; ties are broken by insertion
//! order (FIFO), which keeps simulations deterministic when several events
//! fall on the same nanosecond — a common situation when consumer wakeups
//! are deliberately *aligned to slots*, which is the whole point of the
//! PBPL algorithm.
//!
//! Cancellation is lazy: a cancelled event stays in the heap and is skipped
//! on pop. This gives O(1) cancellation, which matters because the PBPL
//! core manager frequently re-targets its "next slot" timer. To keep that
//! laziness from leaking memory under sustained re-targeting, the heap is
//! compacted (rebuilt from the live entries) whenever tombstones come to
//! outnumber pending events past a small floor — amortised O(1) per
//! cancellation, and invisible to pop order, which is a total order on
//! `(at, seq)`.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Sequence numbers are already unique, dense integers — hashing them
/// through SipHash on every schedule/pop would be pure overhead on the
/// simulator's hottest path.
#[derive(Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("SeqHasher only hashes u64 sequence numbers");
    }
    fn write_u64(&mut self, n: u64) {
        // Multiply by a large odd constant so dense seqs spread across
        // buckets despite HashMap's power-of-two masking.
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SeqSet = HashSet<u64, BuildHasherDefault<SeqHasher>>;

/// Identifies a scheduled event so it can be cancelled later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events with lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Sequence numbers of events that are scheduled and not yet fired or
    /// cancelled. Heap entries whose seq is absent here are tombstones.
    pending: SeqSet,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: SeqSet::default(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns a handle usable with
    /// [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending, `false` if it had already fired or been
    /// cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let cancelled = self.pending.remove(&id.0);
        if cancelled {
            self.maybe_compact();
        }
        cancelled
    }

    /// Rebuilds the heap from its live entries once tombstones dominate.
    /// The floor stops tiny queues from rebuilding constantly; the 2×
    /// ratio bounds wasted memory at half the heap while keeping the
    /// amortised rebuild cost constant per cancellation.
    fn maybe_compact(&mut self) {
        const COMPACT_FLOOR: usize = 64;
        if self.heap.len() < COMPACT_FLOOR || self.heap.len() <= 2 * self.pending.len() {
            return;
        }
        let pending = &self.pending;
        self.heap = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|s| pending.contains(&s.seq))
            .collect();
    }

    /// The earliest pending event time, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_tombstones();
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_tombstones();
        let s = self.heap.pop()?;
        self.pending.remove(&s.seq);
        Some((s.at, s.payload))
    }

    /// Pops the earliest pending event only if it fires at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    fn skip_tombstones(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(&top.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn cancel_after_fire_is_false_and_harmless() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        q.schedule(t(50), "b");
        assert_eq!(q.pop_until(t(10)), Some((t(10), "a")));
        assert_eq!(q.pop_until(t(30)), None);
        assert_eq!(q.pop_until(t(50)), Some((t(50), "b")));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_shrinks_heap_and_preserves_order() {
        let mut q = EventQueue::new();
        let mut live = Vec::new();
        let mut ids = Vec::new();
        // 300 events; cancel all but every 10th so tombstones dominate.
        for i in 0u64..300 {
            let at = t((i * 37) % 1000);
            ids.push((q.schedule(at, i), at));
        }
        for (n, (id, at)) in ids.into_iter().enumerate() {
            if n % 10 == 0 {
                live.push((at, n as u64));
            } else {
                q.cancel(id);
            }
        }
        assert_eq!(q.len(), live.len());
        assert!(
            q.heap.len() <= 2 * q.pending.len(),
            "heap must have compacted: {} entries for {} pending",
            q.heap.len(),
            q.pending.len()
        );
        live.sort();
        for (at, payload) in live {
            assert_eq!(q.pop(), Some((at, payload)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn small_queues_skip_compaction() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0u64..20).map(|i| q.schedule(t(i), i)).collect();
        for id in &ids[1..] {
            q.cancel(*id);
        }
        // Below the floor the tombstones stay — lazy cancellation intact.
        assert_eq!(q.heap.len(), 20);
        assert_eq!(q.pop(), Some((t(0), 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_cancel_stress() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for round in 0u64..50 {
            for i in 0..20 {
                ids.push(q.schedule(t(round * 100 + i * 3), (round, i)));
            }
            for id in ids.iter().skip((round as usize) * 20).step_by(3) {
                q.cancel(*id);
            }
            for _ in 0..10 {
                q.pop();
            }
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
        }
        assert!(q.is_empty());
    }
}

//! A cancellable discrete-event priority queue on a hierarchical timer
//! wheel.
//!
//! Events are ordered by their scheduled time; ties are broken by insertion
//! order (FIFO), which keeps simulations deterministic when several events
//! fall on the same nanosecond — a common situation when consumer wakeups
//! are deliberately *aligned to slots*, which is the whole point of the
//! PBPL algorithm.
//!
//! The queue is a hierarchical timer wheel (DESIGN.md §13) rather than a
//! binary heap: `schedule` and `cancel` are O(1) — an event lives in a
//! slab node linked into a doubly-linked bucket, so cancellation unlinks
//! it directly instead of leaving a tombstone behind — and the only
//! super-constant work is the occasional *cascade* of a coarse bucket
//! into finer levels when the wheel turns past it. Pop order is the same
//! total order on `(at, seq)` the heap implementation had: level-0
//! buckets are drained into a sorted staging area before anything is
//! handed out, so simulations replay bit-identically (the golden fixtures
//! under `tests/fixtures/` pin this).
//!
//! Layout: `LEVELS` levels of `SLOTS` slots. A level-0 slot covers one
//! *tick* of `1 << TICK_BITS` nanoseconds; each higher level covers
//! `SLOTS`× the span of the one below. Events beyond the outermost
//! horizon (≈ 19.5 h of sim time at the default parameters) sit in an
//! unsorted overflow list that re-enters the wheel when the clock gets
//! close — sims here run seconds, so the overflow path is exercised by
//! tests, not workloads.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// log2 of the number of slots per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels.
const LEVELS: usize = 6;
/// log2 of the level-0 tick width in nanoseconds (1024 ns). Events inside
/// one tick are ordered exactly by `(at, seq)` at drain time, so the tick
/// width trades staging-sort batch size against wheel span; it never
/// affects pop order.
const TICK_BITS: u32 = 10;
/// First tick delta that no longer fits the outermost level.
const MAX_WHEEL_DELTA: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

/// Null link in the intrusive bucket lists / free list.
const NIL: u32 = u32::MAX;

/// Identifies a scheduled event so it can be cancelled later.
///
/// Handles are generation-tagged slab indices: after an event fires or is
/// cancelled its slot is recycled with a bumped generation, so a stale
/// handle fails to cancel instead of hitting the new occupant. (A single
/// slot would need 2³² reuses between a handle's issue and its use for a
/// false positive.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    idx: u32,
    gen: u32,
}

/// Deterministic operation counters, exported per simulation cell into the
/// `BENCH_*` sidecars so performance PRs can show op-count reductions, not
/// just host-dependent timings. Counters depend only on the event stream,
/// never on the host, thread count or wall-clock.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Events scheduled.
    pub scheduled: u64,
    /// Events cancelled while still pending.
    pub cancelled: u64,
    /// Events popped (fired).
    pub popped: u64,
    /// Bucket cascades: a coarse bucket (level ≥ 1, or the overflow list)
    /// redistributed into finer levels as the wheel turned past it.
    pub cascades: u64,
    /// Full-queue rebuilds. Always 0 for the timer wheel — cancellation
    /// unlinks in place, so there are no tombstones to compact away. The
    /// counter is retained (and asserted zero in tests) as the proof that
    /// the heap's compaction path is gone.
    pub compactions: u64,
    /// Workload arrivals filed through the calendar front-end
    /// (DESIGN.md §14) instead of the wheel. Zero for a bare
    /// [`EventQueue`]; stamped by `Engine::queue_stats`.
    pub arrivals_scheduled: u64,
    /// Workload arrivals popped from the calendar front-end.
    pub arrivals_popped: u64,
    /// Events (wheel + calendar) still pending when this snapshot was
    /// taken. Named for its load-bearing reading: a run's end-of-run
    /// stats count the events it scheduled but never processed (e.g. a
    /// `DrainDone` whose drain window outlives the horizon).
    pub pending_at_teardown: u64,
    /// Arrivals shed by the admission controller (DESIGN.md §15).
    /// Zero for a bare [`EventQueue`] and for every run with overload
    /// control disabled; stamped by the simulation at teardown. A shed
    /// arrival was still *popped* from the calendar — the rejection
    /// happens in the produce handler after the pop — so this counter
    /// sits outside the [`ledger_balanced`](Self::ledger_balanced)
    /// equation and the ledger closes with or without sheds.
    pub items_shed: u64,
}

impl QueueStats {
    /// The scheduler conservation ledger: every event ever accepted —
    /// through the wheel or the calendar — is popped, cancelled, or
    /// still pending at the snapshot. The bench harnesses and the
    /// replay tooling assert this at end-of-run; a miss means a counter
    /// leak, not a tolerable rounding.
    pub fn ledger_balanced(&self) -> bool {
        self.scheduled + self.arrivals_scheduled
            == self.popped + self.arrivals_popped + self.cancelled + self.pending_at_teardown
    }
}

/// Where a slab node currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// On the free list (`next` is the free-list link).
    Free,
    /// Linked into wheel bucket (level, slot).
    Bucket(u8, u8),
    /// Referenced by the sorted staging vector.
    Staged,
    /// Referenced by the overflow vector.
    Overflow,
    /// Cancelled while `Staged`/`Overflow`: the vector still holds the
    /// index, so the slot is freed lazily when that reference drains.
    Dead,
}

struct Node<E> {
    at: u64,
    seq: u64,
    gen: u32,
    prev: u32,
    next: u32,
    loc: Loc,
    payload: Option<E>,
}

/// Doubly-linked list head for one wheel slot.
#[derive(Clone, Copy)]
struct Bucket {
    head: u32,
}

struct Level {
    /// Bit i set ⇔ `slots[i]` is non-empty.
    occupancy: u64,
    slots: [Bucket; SLOTS],
}

impl Level {
    fn new() -> Self {
        Level {
            occupancy: 0,
            slots: [Bucket { head: NIL }; SLOTS],
        }
    }
}

/// A time-ordered queue of simulation events with O(1) cancellation.
pub struct EventQueue<E> {
    levels: [Level; LEVELS],
    /// Slab of event nodes; `free_head` chains recycled slots.
    nodes: Vec<Node<E>>,
    free_head: u32,
    /// The next tick the wheel has not yet drained. Only ever advances,
    /// and never past the tick of a live pending event.
    elapsed: u64,
    /// Drained level-0 events, sorted *descending* by `(at, seq)` so the
    /// next event to fire is `staging.last()`. Late schedules (tick
    /// already drained) insert here in sorted position, which is what
    /// preserves the heap's "pop = min pending at pop time" semantics.
    staging: Vec<(u64, u64, u32)>,
    /// Events beyond the wheel horizon, unsorted.
    overflow: Vec<u32>,
    next_seq: u64,
    live: usize,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            levels: [
                Level::new(),
                Level::new(),
                Level::new(),
                Level::new(),
                Level::new(),
                Level::new(),
            ],
            nodes: Vec::new(),
            free_head: NIL,
            elapsed: 0,
            staging: Vec::new(),
            overflow: Vec::new(),
            next_seq: 0,
            live: 0,
            stats: QueueStats::default(),
        }
    }

    /// Schedules `payload` to fire at `at`. Returns a handle usable with
    /// [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.scheduled += 1;
        self.live += 1;
        let idx = self.alloc(at.as_nanos(), seq, payload);
        let gen = self.nodes[idx as usize].gen;
        self.place(idx);
        EventId { idx, gen }
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending, `false` if it had already fired or been
    /// cancelled. O(1): bucket-resident events unlink in place; staged or
    /// overflowed events drop their payload and leave a husk that the
    /// holding vector reclaims when it drains.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(node) = self.nodes.get_mut(id.idx as usize) else {
            return false;
        };
        if node.gen != id.gen {
            return false;
        }
        match node.loc {
            Loc::Bucket(level, slot) => {
                self.unlink(id.idx, level as usize, slot as usize);
                self.release(id.idx);
            }
            Loc::Staged | Loc::Overflow => {
                node.payload = None;
                node.loc = Loc::Dead;
            }
            Loc::Free | Loc::Dead => return false,
        }
        self.stats.cancelled += 1;
        self.live -= 1;
        true
    }

    /// The earliest pending event time, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(at, _)| SimTime::from_nanos(at))
    }

    /// The `(time_ns, seq)` key of the earliest pending event — the
    /// wheel's side of the merged pop with the arrival calendar
    /// (DESIGN.md §14). Like [`EventQueue::peek_time`] this may drain
    /// buckets into staging, but it never pops.
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        loop {
            while let Some(&(at, seq, idx)) = self.staging.last() {
                if self.nodes[idx as usize].loc == Loc::Dead {
                    self.staging.pop();
                    self.release(idx);
                    continue;
                }
                return Some((at, seq));
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Consumes one sequence number from the queue's tie-break counter
    /// without scheduling anything. The arrival calendar draws its seqs
    /// here so wheel events and arrivals share one global `(time, seq)`
    /// total order — the linchpin of the bit-identical merged pop.
    pub fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            while let Some((at, _, idx)) = self.staging.pop() {
                if self.nodes[idx as usize].loc == Loc::Dead {
                    self.release(idx);
                    continue;
                }
                debug_assert_eq!(self.nodes[idx as usize].loc, Loc::Staged);
                let payload = self.nodes[idx as usize]
                    .payload
                    .take()
                    .expect("staged node has payload");
                self.release(idx);
                self.live -= 1;
                self.stats.popped += 1;
                return Some((SimTime::from_nanos(at), payload));
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Pops the earliest pending event only if it fires at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Deterministic operation counters since construction. The
    /// `pending_at_teardown` field is stamped with the current live
    /// count, so the snapshot always satisfies
    /// [`QueueStats::ledger_balanced`].
    pub fn stats(&self) -> QueueStats {
        let mut stats = self.stats;
        stats.pending_at_teardown = self.live as u64;
        stats
    }

    // ---- slab -----------------------------------------------------------

    fn alloc(&mut self, at: u64, seq: u64, payload: E) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next;
            node.at = at;
            node.seq = seq;
            node.prev = NIL;
            node.next = NIL;
            node.payload = Some(payload);
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("event slab exceeds u32 indices");
            self.nodes.push(Node {
                at,
                seq,
                gen: 0,
                prev: NIL,
                next: NIL,
                loc: Loc::Free,
                payload: Some(payload),
            });
            idx
        }
    }

    /// Returns a slot to the free list, invalidating outstanding handles.
    fn release(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        debug_assert_ne!(node.loc, Loc::Free, "double free of event node");
        node.gen = node.gen.wrapping_add(1);
        node.loc = Loc::Free;
        node.payload = None;
        node.prev = NIL;
        node.next = self.free_head;
        self.free_head = idx;
    }

    // ---- wheel ----------------------------------------------------------

    /// Files a live node into staging, a wheel bucket or the overflow
    /// list, according to its tick relative to `elapsed`.
    fn place(&mut self, idx: u32) {
        let (at, seq) = {
            let node = &self.nodes[idx as usize];
            (node.at, node.seq)
        };
        let tick = at >> TICK_BITS;
        if tick < self.elapsed {
            // The wheel already turned past this tick (a handler scheduled
            // into the past, or into the tick being drained). Insert into
            // the sorted staging area so it still pops in `(at, seq)`
            // order relative to everything pending.
            let pos = self
                .staging
                .partition_point(|&(a, s, _)| (a, s) > (at, seq));
            self.staging.insert(pos, (at, seq, idx));
            self.nodes[idx as usize].loc = Loc::Staged;
            return;
        }
        let delta = tick - self.elapsed;
        if delta >= MAX_WHEEL_DELTA {
            self.overflow.push(idx);
            self.nodes[idx as usize].loc = Loc::Overflow;
            return;
        }
        let mut level = if delta == 0 {
            0
        } else {
            ((63 - delta.leading_zeros()) / LEVEL_BITS) as usize
        };
        loop {
            let shift = LEVEL_BITS * level as u32;
            let slot = ((tick >> shift) & (SLOTS as u64 - 1)) as usize;
            let cur = ((self.elapsed >> shift) & (SLOTS as u64 - 1)) as usize;
            // Rotation aliasing: `tick` maps to the slot the wheel is
            // currently pointing at, but one full rotation ahead. Filing
            // it here would break the single-rotation bucket invariant
            // the scan relies on, so bump it one level out (at most once:
            // the next level cannot alias again within this delta).
            if slot == cur
                && (tick >> (shift + LEVEL_BITS)) != (self.elapsed >> (shift + LEVEL_BITS))
            {
                level += 1;
                if level == LEVELS {
                    self.overflow.push(idx);
                    self.nodes[idx as usize].loc = Loc::Overflow;
                    return;
                }
                continue;
            }
            self.link(idx, level, slot);
            return;
        }
    }

    fn link(&mut self, idx: u32, level: usize, slot: usize) {
        let head = self.levels[level].slots[slot].head;
        {
            let node = &mut self.nodes[idx as usize];
            node.loc = Loc::Bucket(level as u8, slot as u8);
            node.prev = NIL;
            node.next = head;
        }
        if head != NIL {
            self.nodes[head as usize].prev = idx;
        }
        self.levels[level].slots[slot].head = idx;
        self.levels[level].occupancy |= 1u64 << slot;
    }

    fn unlink(&mut self, idx: u32, level: usize, slot: usize) {
        let (prev, next) = {
            let node = &self.nodes[idx as usize];
            (node.prev, node.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.levels[level].slots[slot].head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        }
        if self.levels[level].slots[slot].head == NIL {
            self.levels[level].occupancy &= !(1u64 << slot);
        }
    }

    /// Advances the wheel to the next pending tick and drains its level-0
    /// bucket into the sorted staging area. Returns `false` if nothing is
    /// pending anywhere. Coarse buckets (and the overflow list) whose
    /// span starts at or before that tick cascade into finer levels
    /// first, so by the time a level-0 bucket is drained it holds *every*
    /// event of its tick — that is what makes the staging sort produce
    /// the exact global `(at, seq)` order.
    fn refill(&mut self) -> bool {
        debug_assert!(self.staging.is_empty());
        loop {
            // Candidate = (lower bound on earliest tick, source). Sources
            // with equal bounds must be processed coarse-to-fine so
            // cascades land before the level-0 drain commits an order:
            // overflow (2) before wheel levels, higher level (1, by
            // `level`) before level 0 (0).
            let mut best: Option<(u64, u8, usize)> = None;

            if !self.overflow.is_empty() {
                // Purge cancelled husks and find the live minimum. O(n),
                // but the overflow list only populates for deltas beyond
                // the ~19.5 h wheel horizon.
                let mut min_tick = u64::MAX;
                let mut kept = Vec::with_capacity(self.overflow.len());
                for i in 0..self.overflow.len() {
                    let idx = self.overflow[i];
                    if self.nodes[idx as usize].loc == Loc::Dead {
                        self.release(idx);
                    } else {
                        min_tick = min_tick.min(self.nodes[idx as usize].at >> TICK_BITS);
                        kept.push(idx);
                    }
                }
                self.overflow = kept;
                if !self.overflow.is_empty() {
                    best = Some((min_tick, 2, 0));
                }
            }

            for level in 0..LEVELS {
                let occupancy = self.levels[level].occupancy;
                if occupancy == 0 {
                    continue;
                }
                let shift = LEVEL_BITS * level as u32;
                let cur = ((self.elapsed >> shift) & (SLOTS as u64 - 1)) as u32;
                // First occupied slot at or after the wheel's current
                // position, scanning the rotated occupancy bitmap.
                let offset = occupancy.rotate_right(cur).trailing_zeros() as u64;
                let start_slot = (self.elapsed >> shift) + offset;
                let start_tick = (start_slot << shift).max(self.elapsed);
                let candidate = (start_tick, if level == 0 { 0 } else { 1 }, level);
                let better = match best {
                    None => true,
                    Some((t, k, l)) => {
                        candidate.0 < t
                            || (candidate.0 == t
                                && (candidate.1 > k || (candidate.1 == k && candidate.2 > l)))
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }

            let Some((tick, kind, level)) = best else {
                return false;
            };
            // `tick` is ≤ every live pending tick, so advancing `elapsed`
            // to it preserves the wheel invariants.
            debug_assert!(tick >= self.elapsed);
            self.elapsed = tick;

            match kind {
                2 => {
                    // Overflow re-entry: refile everything; deltas shrink
                    // as `elapsed` advances, and at least the minimum node
                    // now fits the wheel, so this terminates.
                    let pending = std::mem::take(&mut self.overflow);
                    for idx in pending {
                        self.place(idx);
                    }
                    self.stats.cascades += 1;
                }
                1 => {
                    // Cascade one coarse bucket into finer levels.
                    let shift = LEVEL_BITS * level as u32;
                    let slot = ((tick >> shift) & (SLOTS as u64 - 1)) as usize;
                    let mut head = self.levels[level].slots[slot].head;
                    self.levels[level].slots[slot].head = NIL;
                    self.levels[level].occupancy &= !(1u64 << slot);
                    while head != NIL {
                        let next = self.nodes[head as usize].next;
                        self.place(head);
                        head = next;
                    }
                    self.stats.cascades += 1;
                }
                _ => {
                    // Drain the level-0 bucket for `tick` into staging.
                    let slot = (tick & (SLOTS as u64 - 1)) as usize;
                    let mut head = self.levels[0].slots[slot].head;
                    self.levels[0].slots[slot].head = NIL;
                    self.levels[0].occupancy &= !(1u64 << slot);
                    while head != NIL {
                        let node = &mut self.nodes[head as usize];
                        debug_assert_eq!(node.at >> TICK_BITS, tick);
                        node.loc = Loc::Staged;
                        self.staging.push((node.at, node.seq, head));
                        head = node.next;
                    }
                    // Descending, so `staging.last()` is the earliest.
                    self.staging
                        .sort_unstable_by_key(|&(at, seq, _)| std::cmp::Reverse((at, seq)));
                    self.elapsed = tick + 1;
                    return true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn cancel_after_fire_is_false_and_harmless() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId { idx: 42, gen: 0 }));
    }

    #[test]
    fn stale_handle_does_not_cancel_slot_reuser() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert_eq!(q.pop(), Some((t(10), "a")));
        // "b" recycles a's slab slot with a bumped generation.
        let b = q.schedule(t(20), "b");
        assert_eq!(b.idx, a.idx);
        assert!(!q.cancel(a), "stale handle must not hit the new occupant");
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        q.schedule(t(50), "b");
        assert_eq!(q.pop_until(t(10)), Some((t(10), "a")));
        assert_eq!(q.pop_until(t(30)), None);
        assert_eq!(q.pop_until(t(50)), Some((t(50), "b")));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn cancel_of_staged_event_is_honoured() {
        let mut q = EventQueue::new();
        // Same tick, so peek stages both before the cancel lands.
        let a = q.schedule(t(100), "a");
        q.schedule(t(101), "b");
        assert_eq!(q.peek_time(), Some(t(100)));
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(101), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn late_schedule_pops_before_wheel_events() {
        let mut q = EventQueue::new();
        q.schedule(t(5_000_000), "later");
        assert_eq!(q.pop(), Some((t(5_000_000), "later")));
        // The wheel has turned past tick 0; a schedule into the past must
        // still pop, and before anything later.
        q.schedule(t(9_000_000), "future");
        q.schedule(t(7), "past");
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.pop(), Some((t(7), "past")));
        assert_eq!(q.pop(), Some((t(9_000_000), "future")));
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut q = EventQueue::new();
        let horizon_ns = MAX_WHEEL_DELTA << TICK_BITS;
        let a = q.schedule(t(horizon_ns * 3), "far");
        let b = q.schedule(t(horizon_ns * 2), "near-far");
        q.schedule(t(40), "now");
        assert_eq!(q.overflow.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(40), "now")));
        assert_eq!(q.pop(), Some((t(horizon_ns * 2), "near-far")));
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(b), "popped overflow event is gone");
        assert!(q.stats().cascades > 0, "overflow re-entry is a cascade");
    }

    #[test]
    fn cascades_preserve_order_across_levels() {
        let mut q = EventQueue::new();
        // Spread events across every wheel level (tick deltas 64^0..64^5,
        // scaled to nanoseconds) plus same-tick ties, scheduled in
        // shuffled order.
        let mut times: Vec<u64> = Vec::new();
        for level in 0..LEVELS as u32 {
            let tick = 1u64 << (LEVEL_BITS * level);
            times.push(tick << TICK_BITS);
            times.push((tick << TICK_BITS) + 1);
            times.push((tick + 1) << TICK_BITS);
        }
        let shuffled: Vec<u64> = times
            .iter()
            .enumerate()
            .filter(|(n, _)| n % 2 == 0)
            .map(|(_, &v)| v)
            .chain(
                times
                    .iter()
                    .enumerate()
                    .filter(|(n, _)| n % 2 == 1)
                    .map(|(_, &v)| v),
            )
            .collect();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for (n, &at) in shuffled.iter().enumerate() {
            q.schedule(t(at), n);
            expected.push((at, n));
        }
        expected.sort();
        for (at, n) in expected {
            assert_eq!(q.pop(), Some((t(at), n)));
        }
        assert!(q.is_empty());
        assert!(q.stats().cascades > 0, "multi-level spread must cascade");
    }

    #[test]
    fn stats_count_operations_and_never_compact() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0u64..300).map(|i| q.schedule(t(i * 37_000), i)).collect();
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
        }
        while q.pop().is_some() {}
        let stats = q.stats();
        assert_eq!(stats.scheduled, 300);
        assert_eq!(stats.cancelled, 100);
        assert_eq!(stats.popped, 200);
        assert_eq!(
            stats.compactions, 0,
            "the wheel cancels in place; nothing to compact"
        );
    }

    #[test]
    fn interleaved_schedule_pop_cancel_stress() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for round in 0u64..50 {
            for i in 0..20 {
                ids.push(q.schedule(t(round * 100 + i * 3), (round, i)));
            }
            for id in ids.iter().skip((round as usize) * 20).step_by(3) {
                q.cancel(*id);
            }
            for _ in 0..10 {
                q.pop();
            }
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
        }
        assert!(q.is_empty());
    }
}

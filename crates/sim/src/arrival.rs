//! Arrival calendar: the merge front-end for pre-sorted per-source
//! event streams (DESIGN.md §14).
//!
//! Workload arrivals dominate a simulation's event volume (85–95 % of
//! all pops at fleet scale), yet they are the *least* dynamic events in
//! the system: every pair's production times are pre-generated, sorted,
//! and never cancelled, and each pair has at most one arrival pending
//! at a time (`schedule_next_produce` arms the next one only when the
//! previous pops). Routing them through the timer wheel pays a slab
//! insert, a bucket link and a cascade share per item for flexibility
//! nothing uses.
//!
//! [`ArrivalCalendar`] instead keeps one `(time, seq)` key per source
//! in a tournament (winner) tree: replacing a source's pending arrival
//! and re-seeding the winner is O(log M) with zero allocation, and
//! peeking the fleet-wide minimum is O(1) — a k-way merge over M
//! sorted streams, which is exactly what the workload is. The engine
//! pops `min(calendar.peek(), wheel.peek())` under the wheel's own
//! `(time, seq)` total order; because arrivals draw their sequence
//! numbers from the *same* counter as wheel events (see
//! [`crate::engine::Engine::schedule_arrival`]), the merged pop stream
//! is bit-identical to scheduling every arrival through the wheel.
//!
//! The calendar deliberately supports no cancellation: arrivals are
//! facts of the workload. Dynamic events (timers, drain completions,
//! slot wakes, fault edges) stay on the wheel, which is built for them.

/// Key of a pending arrival: `(time_ns, seq)`. The sentinel marks an
/// empty source slot and loses every tournament match (no real event
/// carries `u64::MAX` for both fields — sequence numbers are shared
/// with the wheel and bounded by total events scheduled).
const EMPTY: (u64, u64) = (u64::MAX, u64::MAX);

/// No-source marker in the tournament tree.
const NONE: u32 = u32::MAX;

/// An M-way merge structure holding at most one pending `(time, seq)`
/// arrival per source, with O(1) peek-min and O(log M) replace/pop.
///
/// Sources are dense small integers (pair indices). The tree grows on
/// demand; growth rebuilds in O(M) and happens O(log M) times total.
pub struct ArrivalCalendar {
    /// `keys[s]` = the pending arrival of source `s`, or [`EMPTY`].
    keys: Vec<(u64, u64)>,
    /// Winner tree over `cap` leaves: `tree[1]` is the overall winner,
    /// node `i`'s children are `2i` and `2i + 1`, leaf `cap + s` maps
    /// to source `s`. Each internal node holds the winning source index
    /// of its subtree (or [`NONE`] if the subtree is empty).
    tree: Vec<u32>,
    /// Leaf count; a power of two ≥ `keys.len()` (0 before first use).
    cap: usize,
    /// Sources currently holding a pending arrival.
    pending: usize,
    /// Arrivals accepted since construction.
    scheduled: u64,
    /// Arrivals popped since construction.
    popped: u64,
}

impl Default for ArrivalCalendar {
    fn default() -> Self {
        Self::new()
    }
}

impl ArrivalCalendar {
    /// Creates an empty calendar; source slots materialise on first use.
    pub fn new() -> Self {
        ArrivalCalendar {
            keys: Vec::new(),
            tree: Vec::new(),
            cap: 0,
            pending: 0,
            scheduled: 0,
            popped: 0,
        }
    }

    /// Number of sources with a pending arrival.
    #[inline]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no arrivals are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Arrivals accepted since construction.
    #[inline]
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Arrivals popped since construction.
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Files source `source`'s next arrival. The source must not
    /// already hold a pending arrival — arrivals are never replaced or
    /// cancelled, only popped (checked in debug builds).
    pub fn set(&mut self, source: usize, at: u64, seq: u64) {
        if source >= self.keys.len() {
            self.grow(source + 1);
        }
        debug_assert_eq!(
            self.keys[source], EMPTY,
            "source {source} already holds a pending arrival"
        );
        self.keys[source] = (at, seq);
        self.pending += 1;
        self.scheduled += 1;
        self.reseed(source);
    }

    /// The earliest pending arrival as `(time_ns, seq, source)`.
    #[inline]
    pub fn peek(&self) -> Option<(u64, u64, u32)> {
        if self.pending == 0 {
            return None;
        }
        let winner = self.tree[1];
        debug_assert_ne!(winner, NONE);
        let (at, seq) = self.keys[winner as usize];
        Some((at, seq, winner))
    }

    /// Removes and returns the earliest pending arrival.
    pub fn pop(&mut self) -> Option<(u64, u64, u32)> {
        let (at, seq, source) = self.peek()?;
        self.keys[source as usize] = EMPTY;
        self.pending -= 1;
        self.popped += 1;
        self.reseed(source as usize);
        Some((at, seq, source))
    }

    /// Key of a leaf position (sources past `keys.len()` are padding).
    #[inline]
    fn leaf_key(&self, s: u32) -> (u64, u64) {
        if s == NONE {
            EMPTY
        } else {
            self.keys[s as usize]
        }
    }

    /// Replays the tournament along the path from source `s`'s leaf to
    /// the root.
    fn reseed(&mut self, s: usize) {
        let mut node = (self.cap + s) >> 1;
        while node >= 1 {
            let left = self.tree[node << 1];
            let right = self.tree[(node << 1) | 1];
            self.tree[node] = if self.leaf_key(right) < self.leaf_key(left) {
                right
            } else {
                left
            };
            node >>= 1;
        }
    }

    /// Grows the source table to hold at least `want` sources,
    /// rebuilding the tournament tree if the leaf capacity doubles.
    fn grow(&mut self, want: usize) {
        let old_len = self.keys.len();
        self.keys.resize(want, EMPTY);
        if want <= self.cap {
            // New sources fit the existing leaf row; their keys are
            // EMPTY so no internal node can change yet.
            for s in old_len..want {
                self.tree[self.cap + s] = s as u32;
            }
            return;
        }
        let cap = want.next_power_of_two().max(2);
        self.cap = cap;
        self.tree = vec![NONE; 2 * cap];
        for s in 0..self.keys.len() {
            self.tree[cap + s] = s as u32;
        }
        for node in (1..cap).rev() {
            let left = self.tree[node << 1];
            let right = self.tree[(node << 1) | 1];
            self.tree[node] = if self.leaf_key(right) < self.leaf_key(left) {
                right
            } else {
                left
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_global_min_across_sources() {
        let mut cal = ArrivalCalendar::new();
        cal.set(0, 30, 2);
        cal.set(1, 10, 0);
        cal.set(2, 20, 1);
        assert_eq!(cal.peek(), Some((10, 0, 1)));
        assert_eq!(cal.pop(), Some((10, 0, 1)));
        assert_eq!(cal.pop(), Some((20, 1, 2)));
        cal.set(1, 25, 3);
        assert_eq!(cal.pop(), Some((25, 3, 1)));
        assert_eq!(cal.pop(), Some((30, 2, 0)));
        assert_eq!(cal.pop(), None);
        assert_eq!(cal.scheduled(), 4);
        assert_eq!(cal.popped(), 4);
    }

    #[test]
    fn same_time_ties_break_by_seq() {
        let mut cal = ArrivalCalendar::new();
        cal.set(3, 5, 7);
        cal.set(1, 5, 4);
        cal.set(2, 5, 9);
        assert_eq!(cal.pop(), Some((5, 4, 1)));
        assert_eq!(cal.pop(), Some((5, 7, 3)));
        assert_eq!(cal.pop(), Some((5, 9, 2)));
    }

    #[test]
    fn growth_preserves_pending_entries() {
        let mut cal = ArrivalCalendar::new();
        cal.set(0, 100, 0);
        cal.set(1, 50, 1);
        // Force several capacity doublings past the live entries.
        cal.set(700, 75, 2);
        assert_eq!(cal.len(), 3);
        assert_eq!(cal.pop(), Some((50, 1, 1)));
        assert_eq!(cal.pop(), Some((75, 2, 700)));
        assert_eq!(cal.pop(), Some((100, 0, 0)));
    }

    #[test]
    fn empty_calendar_peeks_none() {
        let cal = ArrivalCalendar::new();
        assert_eq!(cal.peek(), None);
        assert!(cal.is_empty());
    }

    #[test]
    fn matches_sorted_merge_reference() {
        // Deterministic pseudo-random merge of 13 streams against a
        // flat sort: identical pop order, every time.
        let sources = 13usize;
        let mut cal = ArrivalCalendar::new();
        let mut cursors = vec![0u64; sources];
        let mut seq = 0u64;
        let mut expect: Vec<(u64, u64, u32)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let next = |s: &mut u64| {
            *s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *s >> 33
        };
        for (s, cursor) in cursors.iter_mut().enumerate() {
            let at = next(&mut state) % 64;
            *cursor = at;
            cal.set(s, at, seq);
            expect.push((at, seq, s as u32));
            seq += 1;
        }
        let mut got = Vec::new();
        for _ in 0..2000 {
            let (at, sq, src) = cal.pop().expect("streams never dry here");
            got.push((at, sq, src));
            // Source emits its next arrival at a later time.
            let step = 1 + next(&mut state) % 64;
            let at = cursors[src as usize] + step;
            cursors[src as usize] = at;
            cal.set(src as usize, at, seq);
            expect.push((at, seq, src));
            seq += 1;
        }
        while let Some(e) = cal.pop() {
            got.push(e);
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert_eq!(cal.scheduled(), cal.popped());
    }
}

//! Bounded explicit-state model of the reservation-book protocol
//! (DESIGN.md §12).
//!
//! The runtime oracle (`pc_bench::oracle`) checks the invariants of the
//! reservation book and elastic pool *along one recorded execution*;
//! this module encodes the same protocol as a small transition system
//! and hands it to the `stateright` checker, which explores **every**
//! interleaving of the abstract actions up to a bound. The two layers
//! verify the same claims from opposite directions: the oracle says "no
//! recorded run violated the invariant", the checker says "no reachable
//! state of the protocol can".
//!
//! The model covers the moving parts the paper's §V-C / §V-D machinery
//! coordinates — per-pair elastic buffers drawing on one global pool,
//! slot reservations latching consumers onto shared core wakeups, the
//! pool-squeeze fault path and the degradation watchdog's emergency
//! rebalance — over a deliberately tiny M×core state space. The
//! [`ModelConfig::from_trace`] bridge populates the model's constants
//! (B₀, pool total, geometry, slot range, squeeze schedule) from a
//! recorded event stream, so the checked protocol instance is the one
//! the simulator actually ran; [`ModelConfig::scaled`] then shrinks the
//! constants proportionally to keep breadth-first search tractable.
//!
//! `broken_floor` selects a deliberately buggy variant whose emergency
//! rebalance skips the PBPL floor check — the checker must find the
//! "capacity respects floor" violation (pinned by
//! `crates/sim/tests/reservation_model.rs`).

use pc_trace_events::{Event, TraceEvent};
use stateright::{Model, Property};

/// Constants of one reservation-protocol instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Producer-consumer pairs (the paper's M).
    pub pairs: u32,
    /// Cores; pair `p` is pinned to core `p % cores`.
    pub cores: u32,
    /// Initial per-pair buffer capacity B₀.
    pub b0: u64,
    /// Global pool total B_g (units shared by all buffers).
    pub pool_total: u64,
    /// Slot ring size (the PBPL Δ grid a reservation can target).
    pub slots: u64,
    /// Minimum capacity the rebalancers may shrink a buffer to
    /// (PBPL's `0.55·B₀` floor, rounded up).
    pub floor: u64,
    /// Pool-squeeze fault schedule: units each squeeze tries to reserve
    /// away, injected in order.
    pub squeezes: Vec<u64>,
    /// Deliberately buggy variant: the emergency rebalance skips the
    /// floor check. The checker must catch it.
    pub broken_floor: bool,
}

impl ModelConfig {
    /// A small hand-picked instance: 2 pairs on 1 core, B₀ = 3 with
    /// floor 2, one 2-unit squeeze. Fully explorable in milliseconds.
    pub fn example() -> ModelConfig {
        ModelConfig {
            pairs: 2,
            cores: 1,
            b0: 3,
            pool_total: 8,
            slots: 2,
            floor: 2,
            squeezes: vec![2],
            broken_floor: false,
        }
    }

    /// The same instance with the floor-skipping rebalance bug.
    pub fn broken(mut self) -> ModelConfig {
        self.broken_floor = true;
        self
    }

    /// Populates the model constants from a recorded event stream:
    /// pairs and cores from the indices actually seen, B₀ and the pool
    /// total from the first `BufferCreate`, the slot range from the
    /// reservation events, and the squeeze schedule from the
    /// `pool_squeeze` fault injections (in stream order). The floor is
    /// derived as ⌈0.55·B₀⌉ — `PbplConfig::default()`'s ratio. Returns
    /// the *raw* instance; call [`Self::scaled`] before checking.
    pub fn from_trace(events: &[Event]) -> ModelConfig {
        let mut pairs = 0u32;
        let mut cores = 0u32;
        let mut b0 = 0u64;
        let mut pool_total = 0u64;
        let mut max_slot = 0u64;
        let mut saw_slot = false;
        let mut squeezes = Vec::new();
        let pair_seen = |p: u32, pairs: &mut u32| {
            if p != u32::MAX {
                *pairs = (*pairs).max(p + 1);
            }
        };
        let core_seen = |c: u32, cores: &mut u32| {
            if c != u32::MAX {
                *cores = (*cores).max(c + 1);
            }
        };
        for ev in events {
            match &ev.kind {
                TraceEvent::Produce { pair }
                | TraceEvent::Invoke { pair, .. }
                | TraceEvent::Flush { pair, .. }
                | TraceEvent::Wakeup { pair } => pair_seen(*pair, &mut pairs),
                TraceEvent::CoreSpan { core, .. } => core_seen(*core, &mut cores),
                TraceEvent::SlotSelect {
                    pair, core, slot, ..
                } => {
                    pair_seen(*pair, &mut pairs);
                    core_seen(*core, &mut cores);
                    max_slot = max_slot.max(*slot);
                    saw_slot = true;
                }
                TraceEvent::SlotReserve {
                    core,
                    consumer,
                    slot,
                    ..
                }
                | TraceEvent::SlotRelease {
                    core,
                    consumer,
                    slot,
                } => {
                    pair_seen(*consumer, &mut pairs);
                    core_seen(*core, &mut cores);
                    max_slot = max_slot.max(*slot);
                    saw_slot = true;
                }
                TraceEvent::SlotDispatch {
                    core,
                    slot,
                    consumers,
                } => {
                    core_seen(*core, &mut cores);
                    for c in consumers {
                        pair_seen(*c, &mut pairs);
                    }
                    max_slot = max_slot.max(*slot);
                    saw_slot = true;
                }
                TraceEvent::BufferCreate {
                    owner,
                    capacity,
                    pool_total: total,
                    ..
                } => {
                    pair_seen(*owner, &mut pairs);
                    if b0 == 0 {
                        b0 = *capacity;
                    }
                    pool_total = pool_total.max(*total);
                }
                TraceEvent::BufferGrow { owner, .. }
                | TraceEvent::BufferShrink { owner, .. }
                | TraceEvent::BufferDestroy { owner, .. } => pair_seen(*owner, &mut pairs),
                TraceEvent::FaultInjected {
                    kind,
                    pair,
                    core,
                    param,
                    ..
                } => {
                    pair_seen(*pair, &mut pairs);
                    core_seen(*core, &mut cores);
                    if kind == "pool_squeeze" {
                        squeezes.push(*param);
                    }
                }
                TraceEvent::FaultRecovered { pair, core, .. } => {
                    pair_seen(*pair, &mut pairs);
                    core_seen(*core, &mut cores);
                }
                TraceEvent::ItemShed { pair } => pair_seen(*pair, &mut pairs),
                TraceEvent::OverloadEntered { pair, .. }
                | TraceEvent::OverloadCleared { pair, .. } => pair_seen(*pair, &mut pairs),
            }
        }
        let pairs = pairs.max(1);
        let b0 = if b0 == 0 { 2 } else { b0 };
        ModelConfig {
            pairs,
            cores: cores.max(1),
            b0,
            pool_total: pool_total.max(b0 * pairs as u64),
            slots: if saw_slot { max_slot + 1 } else { 2 },
            floor: div_ceil_55(b0),
            squeezes,
            broken_floor: false,
        }
    }

    /// Shrinks a raw (trace-derived) instance to checker scale while
    /// preserving the protocol's shape: at most 2 pairs on at most
    /// 2 cores, B₀ clamped to 3 with the floor re-derived at the same
    /// 0.55 ratio, at most 2 slots, and the first two squeezes clamped
    /// to the pool slack. The scaled pool always carries 2 spare units —
    /// the runtime pool's slack is often zero (chaos sizes it at exactly
    /// B₀·M) and a slack-free model could never exercise the grow or
    /// squeeze transitions it exists to check.
    pub fn scaled(&self) -> ModelConfig {
        let pairs = self.pairs.min(2);
        let cores = self.cores.min(2).min(pairs);
        let b0 = self.b0.clamp(1, 3);
        let slack = 2u64;
        let squeezes: Vec<u64> = self
            .squeezes
            .iter()
            .take(2)
            .map(|&u| u.clamp(1, slack))
            .collect();
        ModelConfig {
            pairs,
            cores,
            b0,
            pool_total: b0 * pairs as u64 + slack,
            slots: self.slots.clamp(1, 2),
            floor: div_ceil_55(b0),
            squeezes,
            broken_floor: self.broken_floor,
        }
    }
}

/// ⌈0.55·b0⌉ without floats (floats must never decide model shape).
fn div_ceil_55(b0: u64) -> u64 {
    (b0 * 55).div_ceil(100).max(1)
}

/// Lifecycle of one scheduled pool squeeze.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Squeeze {
    /// Not yet injected.
    Pending,
    /// Injected; holds the units actually reserved away from the pool.
    Active(u64),
    /// Recovered; its units are back in the pool.
    Done,
}

/// One state of the protocol. `Ord` so the checker can dedup states in
/// a `BTreeSet` deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BookState {
    /// Buffered (produced, not yet consumed) items per pair.
    pub pending: Vec<u64>,
    /// Current elastic capacity per pair.
    pub capacity: Vec<u64>,
    /// Units available in the global pool.
    pub pool_available: u64,
    /// Reservation book: the slot each pair holds on its pinned core,
    /// if any. One reservation per pair, exactly as in the manager.
    pub book: Vec<Option<u64>>,
    /// Per-squeeze lifecycle, in schedule order.
    pub squeezes: Vec<Squeeze>,
    /// Whether any dispatch has consumed at least one item yet.
    pub consumed_any: bool,
}

/// Abstract protocol actions; each maps to a runtime code path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BookAction {
    /// A producer enqueues one item (`ElasticBuffer::push`).
    Produce {
        /// Producing pair.
        pair: u32,
    },
    /// A consumer reserves `slot` on its pinned core — a fresh
    /// reservation or a latch onto a slot another consumer already
    /// holds (`SlotReserve` with/without co-holders).
    Reserve {
        /// Reserving pair.
        pair: u32,
        /// Target slot.
        slot: u64,
    },
    /// A consumer drops its reservation (`SlotRelease`).
    Cancel {
        /// Cancelling pair.
        pair: u32,
    },
    /// `slot` fires on `core`: every consumer booked there drains its
    /// buffer in one shared wakeup (`SlotDispatch`).
    Dispatch {
        /// Core whose slot fires.
        core: u32,
        /// The fired slot.
        slot: u64,
    },
    /// §V-C upsizing: a full buffer takes one unit from the pool
    /// (`BufferGrow`).
    Grow {
        /// Growing pair.
        pair: u32,
    },
    /// §V-C downsizing: an under-used buffer returns one unit
    /// (`BufferShrink`), never below the floor.
    Shrink {
        /// Shrinking pair.
        pair: u32,
    },
    /// The degradation watchdog's emergency rebalance: under an active
    /// squeeze, shed up to 2 units back to the pool. The good variant
    /// stops at the floor; the `broken_floor` variant does not.
    DegradedRebalance {
        /// Rebalanced pair.
        pair: u32,
    },
    /// The next scheduled pool squeeze becomes effective, reserving
    /// away what the pool can spare (`FaultInjected{pool_squeeze}`).
    InjectSqueeze {
        /// Schedule index.
        index: u32,
    },
    /// A squeeze's window closes; its units return
    /// (`FaultRecovered{pool_squeeze}`).
    RecoverSqueeze {
        /// Schedule index.
        index: u32,
    },
}

/// The reservation-book protocol as a `stateright` model.
#[derive(Debug, Clone)]
pub struct ReservationModel {
    /// Instance constants.
    pub cfg: ModelConfig,
}

impl ReservationModel {
    /// Builds the model for `cfg`.
    pub fn new(cfg: ModelConfig) -> ReservationModel {
        ReservationModel { cfg }
    }

    fn pin(&self, pair: u32) -> u32 {
        pair % self.cfg.cores
    }

    /// Units held by active squeezes in `state`.
    pub fn squeezed(state: &BookState) -> u64 {
        state
            .squeezes
            .iter()
            .map(|s| match s {
                Squeeze::Active(u) => *u,
                _ => 0,
            })
            .sum()
    }
}

impl Model for ReservationModel {
    type State = BookState;
    type Action = BookAction;

    fn init_states(&self) -> Vec<BookState> {
        let pairs = self.cfg.pairs as usize;
        vec![BookState {
            pending: vec![0; pairs],
            capacity: vec![self.cfg.b0; pairs],
            pool_available: self
                .cfg
                .pool_total
                .saturating_sub(self.cfg.b0 * self.cfg.pairs as u64),
            book: vec![None; pairs],
            squeezes: vec![Squeeze::Pending; self.cfg.squeezes.len()],
            consumed_any: false,
        }]
    }

    fn actions(&self, state: &BookState, actions: &mut Vec<BookAction>) {
        for pair in 0..self.cfg.pairs {
            let p = pair as usize;
            if state.pending[p] < state.capacity[p] {
                actions.push(BookAction::Produce { pair });
            }
            if state.book[p].is_none() && state.pending[p] > 0 {
                for slot in 0..self.cfg.slots {
                    actions.push(BookAction::Reserve { pair, slot });
                }
            }
            if state.book[p].is_some() {
                actions.push(BookAction::Cancel { pair });
            }
            if state.pool_available > 0 && state.pending[p] == state.capacity[p] {
                actions.push(BookAction::Grow { pair });
            }
            if state.capacity[p] > self.cfg.floor && state.pending[p] < state.capacity[p] {
                actions.push(BookAction::Shrink { pair });
            }
            if Self::squeezed(state) > 0 {
                actions.push(BookAction::DegradedRebalance { pair });
            }
        }
        for core in 0..self.cfg.cores {
            for slot in 0..self.cfg.slots {
                let booked = (0..self.cfg.pairs)
                    .any(|pair| self.pin(pair) == core && state.book[pair as usize] == Some(slot));
                if booked {
                    actions.push(BookAction::Dispatch { core, slot });
                }
            }
        }
        for (i, sq) in state.squeezes.iter().enumerate() {
            match sq {
                // Inject in schedule order: only the first pending one.
                Squeeze::Pending => {
                    if state.squeezes[..i].iter().all(|s| *s != Squeeze::Pending) {
                        actions.push(BookAction::InjectSqueeze { index: i as u32 });
                    }
                }
                Squeeze::Active(_) => actions.push(BookAction::RecoverSqueeze { index: i as u32 }),
                Squeeze::Done => {}
            }
        }
    }

    fn next_state(&self, state: &BookState, action: &BookAction) -> Option<BookState> {
        let mut next = state.clone();
        match action {
            BookAction::Produce { pair } => {
                let p = *pair as usize;
                if next.pending[p] >= next.capacity[p] {
                    return None;
                }
                next.pending[p] += 1;
            }
            BookAction::Reserve { pair, slot } => {
                let p = *pair as usize;
                if next.book[p].is_some() {
                    return None;
                }
                next.book[p] = Some(*slot);
            }
            BookAction::Cancel { pair } => {
                let p = *pair as usize;
                next.book[p].take()?;
            }
            BookAction::Dispatch { core, slot } => {
                let mut fired = false;
                for pair in 0..self.cfg.pairs {
                    let p = pair as usize;
                    if self.pin(pair) == *core && next.book[p] == Some(*slot) {
                        fired = true;
                        if next.pending[p] > 0 {
                            next.consumed_any = true;
                        }
                        next.pending[p] = 0;
                        next.book[p] = None;
                    }
                }
                if !fired {
                    return None;
                }
            }
            BookAction::Grow { pair } => {
                let p = *pair as usize;
                if next.pool_available == 0 {
                    return None;
                }
                next.pool_available -= 1;
                next.capacity[p] += 1;
            }
            BookAction::Shrink { pair } => {
                let p = *pair as usize;
                if next.capacity[p] <= self.cfg.floor {
                    return None;
                }
                next.capacity[p] -= 1;
                next.pool_available += 1;
            }
            BookAction::DegradedRebalance { pair } => {
                let p = *pair as usize;
                let cap = next.capacity[p];
                let target = if self.cfg.broken_floor {
                    cap.saturating_sub(2)
                } else {
                    cap.saturating_sub(2).max(self.cfg.floor)
                };
                // Occupied units cannot be shed — mirror the runtime,
                // which floors emergency shrinks at current occupancy.
                let target = target.max(next.pending[p]);
                if target >= cap {
                    return None;
                }
                next.pool_available += cap - target;
                next.capacity[p] = target;
            }
            BookAction::InjectSqueeze { index } => {
                let i = *index as usize;
                if state.squeezes[i] != Squeeze::Pending {
                    return None;
                }
                let grab = self.cfg.squeezes[i].min(next.pool_available);
                next.pool_available -= grab;
                next.squeezes[i] = Squeeze::Active(grab);
            }
            BookAction::RecoverSqueeze { index } => {
                let i = *index as usize;
                match state.squeezes[i] {
                    Squeeze::Active(held) => {
                        next.pool_available += held;
                        next.squeezes[i] = Squeeze::Done;
                    }
                    _ => return None,
                }
            }
        }
        Some(next)
    }

    fn properties(&self) -> Vec<Property<Self>> {
        vec![
            // The oracle's pool ledger: Σ capacities + Σ active
            // squeezes + available == total, at every step.
            Property::always(
                "pool conservation",
                |m: &ReservationModel, s: &BookState| {
                    s.capacity.iter().sum::<u64>()
                        + ReservationModel::squeezed(s)
                        + s.pool_available
                        == m.cfg.pool_total
                },
            ),
            // PBPL never shrinks below the 0.55·B₀ floor — the property
            // the broken_floor variant must be caught violating.
            Property::always(
                "capacity respects floor",
                |m: &ReservationModel, s: &BookState| {
                    s.capacity.iter().all(|&c| c >= m.cfg.floor.min(m.cfg.b0))
                },
            ),
            // Item conservation's state-local face: a buffer never holds
            // more than its capacity (overflow items are never dropped,
            // they just can't exist).
            Property::always(
                "pending within capacity",
                |_: &ReservationModel, s: &BookState| {
                    s.pending.iter().zip(&s.capacity).all(|(&p, &c)| p <= c)
                },
            ),
            // Book consistency: a reservation always targets a slot in
            // the ring, and each pair holds at most one (structural in
            // the state shape, checked anyway as in the oracle).
            Property::always(
                "book targets valid slots",
                |m: &ReservationModel, s: &BookState| {
                    s.book.iter().flatten().all(|&slot| slot < m.cfg.slots)
                },
            ),
            // Discovery: dispatch actually consumes something.
            Property::sometimes(
                "an item is consumed",
                |_: &ReservationModel, s: &BookState| s.consumed_any,
            ),
            // Fault-window pairing: the full schedule can inject and
            // recover (every FaultInjected gets its FaultRecovered).
            Property::sometimes(
                "every squeeze recovers",
                |_: &ReservationModel, s: &BookState| {
                    s.squeezes.iter().all(|sq| *sq == Squeeze::Done)
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateright::Checker;

    #[test]
    fn example_instance_is_clean() {
        let result =
            Checker::bounded(12, 200_000).check(&ReservationModel::new(ModelConfig::example()));
        assert!(result.is_clean(), "violations: {:?}", result.violations);
        assert!(result.states_explored > 100);
    }

    #[test]
    fn broken_floor_is_caught() {
        let result = Checker::bounded(12, 200_000)
            .check(&ReservationModel::new(ModelConfig::example().broken()));
        let v = result
            .violation("capacity respects floor")
            .expect("checker must catch the floor-skipping rebalance");
        assert!(matches!(
            v.path.last(),
            Some(BookAction::DegradedRebalance { .. })
        ));
    }

    #[test]
    fn scaled_preserves_shape() {
        let raw = ModelConfig {
            pairs: 1000,
            cores: 100,
            b0: 25,
            pool_total: 25_000,
            slots: 40,
            floor: 14,
            squeezes: vec![6000, 3000, 1000],
            broken_floor: false,
        };
        let s = raw.scaled();
        assert_eq!(s.pairs, 2);
        assert_eq!(s.cores, 2);
        assert_eq!(s.b0, 3);
        assert_eq!(s.floor, 2);
        assert_eq!(s.pool_total, 3 * 2 + 2);
        assert_eq!(s.slots, 2);
        assert_eq!(s.squeezes.len(), 2);
        assert!(s.squeezes.iter().all(|&u| (1..=2).contains(&u)));
    }

    #[test]
    fn from_trace_reads_constants() {
        let ev = |seq: u64, kind: TraceEvent| Event {
            seq,
            t_ns: seq * 10,
            kind,
        };
        let events = vec![
            ev(
                0,
                TraceEvent::BufferCreate {
                    owner: 0,
                    capacity: 25,
                    pool_available: 100,
                    pool_total: 125,
                },
            ),
            ev(1, TraceEvent::Produce { pair: 4 }),
            ev(
                2,
                TraceEvent::SlotReserve {
                    core: 1,
                    consumer: 2,
                    slot: 7,
                    prev: None,
                },
            ),
            ev(
                3,
                TraceEvent::FaultInjected {
                    id: 0,
                    kind: "pool_squeeze".into(),
                    pair: u32::MAX,
                    core: u32::MAX,
                    param: 30,
                    pool_available: 70,
                },
            ),
        ];
        let cfg = ModelConfig::from_trace(&events);
        assert_eq!(cfg.pairs, 5);
        assert_eq!(cfg.cores, 2);
        assert_eq!(cfg.b0, 25);
        assert_eq!(cfg.pool_total, 125);
        assert_eq!(cfg.slots, 8);
        assert_eq!(cfg.floor, 14); // ceil(0.55 * 25)
        assert_eq!(cfg.squeezes, vec![30]);
    }
}

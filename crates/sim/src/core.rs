//! Per-core activity accounting.
//!
//! The paper's formal model (§IV-B) reduces a core to two states — *idle*
//! and *active* — and charges a wakeup cost ω for every idle→active
//! transition (Eq. 3). [`Core`] implements exactly that model as an online
//! accumulator: system models report *active spans* (`[start, end)`
//! intervals during which the core executes consumer work), the core
//! merges overlapping/adjacent spans, counts a **wakeup** whenever a span
//! begins after a genuine idle gap, and records the full idle/active
//! timeline that `pc-power` later integrates into energy.

use crate::time::{SimDuration, SimTime};
use pc_trace_events::{TraceEvent, TraceHandle};
use serde::{Deserialize, Serialize};

/// Index of a CPU core in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// The two-state core model of the paper (§IV-A "Simplified power model").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreState {
    /// The core is powered down to some C-state.
    Idle,
    /// The core is executing.
    Active,
}

/// One maximal interval of the core timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateInterval {
    /// Interval start (inclusive).
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
    /// State held throughout the interval.
    pub state: CoreState,
}

impl StateInterval {
    /// Length of the interval.
    pub fn len(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Online activity accumulator for one core.
///
/// Active spans must be reported with non-decreasing start times, which a
/// discrete-event simulation provides naturally. Overlapping or adjacent
/// spans merge; a span starting strictly after the current activity ends
/// closes an idle gap and counts one wakeup.
#[derive(Debug, Clone)]
pub struct Core {
    id: CoreId,
    /// Current open active span, if the core has ever been woken.
    open: Option<(SimTime, SimTime)>,
    /// Completed timeline (idle gaps and closed active spans), in order.
    timeline: Vec<StateInterval>,
    wakeups: u64,
    active_total: SimDuration,
    last_span_start: SimTime,
    trace: TraceHandle,
}

impl Core {
    /// Creates an idle core at time zero.
    pub fn new(id: CoreId) -> Self {
        Core {
            id,
            open: None,
            timeline: Vec::new(),
            wakeups: 0,
            active_total: SimDuration::ZERO,
            last_span_start: SimTime::ZERO,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attaches an event-trace handle; accepted spans are emitted as
    /// [`TraceEvent::CoreSpan`] events.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Reports that the core executes during `[start, end)`.
    ///
    /// Panics if `start` precedes the start of a previously reported span
    /// (event-ordered callers cannot trigger this) or if `end < start`.
    pub fn add_active_span(&mut self, start: SimTime, end: SimTime) {
        assert!(end >= start, "active span ends before it starts");
        assert!(
            start >= self.last_span_start,
            "active spans must be reported in start order"
        );
        self.last_span_start = start;
        if start == end {
            return;
        }
        let wakeup;
        match self.open {
            None => {
                // First activity ever: idle from t=0 until start.
                if start > SimTime::ZERO {
                    self.timeline.push(StateInterval {
                        start: SimTime::ZERO,
                        end: start,
                        state: CoreState::Idle,
                    });
                }
                self.wakeups += 1;
                wakeup = true;
                self.open = Some((start, end));
            }
            Some((ostart, oend)) => {
                if start <= oend {
                    // Overlaps or abuts the open span: extend (latch — no
                    // new wakeup, the core is already awake).
                    self.open = Some((ostart, oend.max(end)));
                    wakeup = false;
                } else {
                    // Genuine idle gap.
                    self.close_open_span();
                    self.timeline.push(StateInterval {
                        start: oend,
                        end: start,
                        state: CoreState::Idle,
                    });
                    self.wakeups += 1;
                    wakeup = true;
                    self.open = Some((start, end));
                }
            }
        }
        self.trace.record(|| TraceEvent::CoreSpan {
            core: self.id.0 as u32,
            start_ns: start.as_nanos(),
            end_ns: end.as_nanos(),
            wakeup,
        });
    }

    fn close_open_span(&mut self) {
        if let Some((s, e)) = self.open.take() {
            self.timeline.push(StateInterval {
                start: s,
                end: e,
                state: CoreState::Active,
            });
            self.active_total += e.since(s);
        }
    }

    /// Whether the core would be active at instant `t` given spans seen so
    /// far. (Exact for `t` ≤ the latest reported activity.)
    pub fn is_active_at(&self, t: SimTime) -> bool {
        if let Some((s, e)) = self.open {
            if t >= s && t < e {
                return true;
            }
        }
        // Binary search over the closed timeline.
        let idx = self.timeline.partition_point(|iv| iv.end <= t);
        self.timeline
            .get(idx)
            .map(|iv| iv.state == CoreState::Active && t >= iv.start)
            .unwrap_or(false)
    }

    /// End of the currently known activity, i.e. the earliest time the
    /// core could go idle. `None` if the core was never woken.
    pub fn busy_until(&self) -> Option<SimTime> {
        self.open.map(|(_, e)| e)
    }

    /// Number of idle→active transitions so far.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Total active time over closed spans plus the open span.
    pub fn active_time(&self) -> SimDuration {
        match self.open {
            Some((s, e)) => self.active_total + e.since(s),
            None => self.active_total,
        }
    }

    /// Finalises the timeline at `end_of_run`, closing the open span and
    /// appending the trailing idle interval. Returns the complete
    /// timeline. The core must not be used afterwards.
    pub fn finish(mut self, end_of_run: SimTime) -> CoreReport {
        if let Some((s, e)) = self.open {
            // Clip the open span to the end of the run if it overruns.
            let e = e.min(end_of_run).max(s);
            self.open = Some((s, e));
        }
        self.close_open_span();
        let tail_start = self
            .timeline
            .last()
            .map(|iv| iv.end)
            .unwrap_or(SimTime::ZERO);
        if tail_start < end_of_run {
            self.timeline.push(StateInterval {
                start: tail_start,
                end: end_of_run,
                state: CoreState::Idle,
            });
        }
        CoreReport {
            id: self.id,
            wakeups: self.wakeups,
            active_time: self.active_total,
            duration: end_of_run.saturating_since(SimTime::ZERO),
            timeline: self.timeline,
        }
    }
}

/// The finalised activity record of one core over a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreReport {
    /// Which core this describes.
    pub id: CoreId,
    /// Idle→active transitions over the run.
    pub wakeups: u64,
    /// Total time spent active.
    pub active_time: SimDuration,
    /// Length of the run.
    pub duration: SimDuration,
    /// Complete alternating idle/active timeline covering `[0, duration)`.
    pub timeline: Vec<StateInterval>,
}

impl CoreReport {
    /// Total idle time.
    pub fn idle_time(&self) -> SimDuration {
        self.duration.saturating_sub(self.active_time)
    }

    /// Wakeups per second of run time.
    pub fn wakeups_per_sec(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.wakeups as f64 / self.duration.as_secs_f64()
        }
    }

    /// CPU usage in the paper's PowerTop unit: milliseconds of execution
    /// per second of wall time.
    pub fn usage_ms_per_sec(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.active_time.as_secs_f64() * 1e3 / self.duration.as_secs_f64()
        }
    }

    /// Iterator over the idle intervals of the timeline.
    pub fn idle_intervals(&self) -> impl Iterator<Item = &StateInterval> {
        self.timeline
            .iter()
            .filter(|iv| iv.state == CoreState::Idle)
    }

    /// Validates internal consistency: contiguous coverage of `[0, end)`,
    /// alternating bookkeeping, and totals matching the timeline. Used by
    /// tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let mut cursor = SimTime::ZERO;
        let mut active = SimDuration::ZERO;
        for iv in &self.timeline {
            if iv.start != cursor {
                return Err(format!(
                    "gap at {cursor}: next interval starts {}",
                    iv.start
                ));
            }
            if iv.is_empty() {
                return Err(format!("empty interval at {}", iv.start));
            }
            if iv.state == CoreState::Active {
                active += iv.len();
            }
            cursor = iv.end;
        }
        let expected_end = SimTime::ZERO + self.duration;
        if cursor != expected_end {
            return Err(format!(
                "timeline ends at {cursor}, run ends at {expected_end}"
            ));
        }
        if active != self.active_time {
            return Err(format!(
                "active total mismatch: timeline {active}, counter {}",
                self.active_time
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn single_span_counts_one_wakeup() {
        let mut c = Core::new(CoreId(0));
        c.add_active_span(t(10), t(20));
        assert_eq!(c.wakeups(), 1);
        let r = c.finish(t(100));
        assert_eq!(r.wakeups, 1);
        assert_eq!(r.active_time, SimDuration::from_micros(10));
        r.validate().unwrap();
        assert_eq!(r.timeline.len(), 3); // idle, active, idle
    }

    #[test]
    fn overlapping_spans_merge_without_new_wakeup() {
        let mut c = Core::new(CoreId(0));
        c.add_active_span(t(10), t(20));
        c.add_active_span(t(15), t(30)); // overlaps
        c.add_active_span(t(30), t(35)); // abuts
        assert_eq!(c.wakeups(), 1);
        let r = c.finish(t(100));
        assert_eq!(r.active_time, SimDuration::from_micros(25));
        r.validate().unwrap();
    }

    #[test]
    fn gap_counts_new_wakeup_and_idle_interval() {
        let mut c = Core::new(CoreId(0));
        c.add_active_span(t(10), t(20));
        c.add_active_span(t(50), t(60));
        assert_eq!(c.wakeups(), 2);
        let r = c.finish(t(100));
        r.validate().unwrap();
        let idles: Vec<_> = r.idle_intervals().collect();
        assert_eq!(idles.len(), 3);
        assert_eq!(idles[1].start, t(20));
        assert_eq!(idles[1].end, t(50));
    }

    #[test]
    fn never_woken_core_is_fully_idle() {
        let c = Core::new(CoreId(3));
        let r = c.finish(t(1000));
        assert_eq!(r.wakeups, 0);
        assert_eq!(r.active_time, SimDuration::ZERO);
        assert_eq!(r.idle_time(), SimDuration::from_micros(1000));
        r.validate().unwrap();
        assert_eq!(r.timeline.len(), 1);
    }

    #[test]
    fn is_active_at_queries() {
        let mut c = Core::new(CoreId(0));
        c.add_active_span(t(10), t(20));
        c.add_active_span(t(50), t(60));
        assert!(!c.is_active_at(t(5)));
        assert!(c.is_active_at(t(10)));
        assert!(c.is_active_at(t(15)));
        assert!(!c.is_active_at(t(20))); // end-exclusive
        assert!(!c.is_active_at(t(30)));
        assert!(c.is_active_at(t(55)));
    }

    #[test]
    fn zero_length_span_is_ignored() {
        let mut c = Core::new(CoreId(0));
        c.add_active_span(t(10), t(10));
        assert_eq!(c.wakeups(), 0);
        let r = c.finish(t(50));
        assert_eq!(r.active_time, SimDuration::ZERO);
        r.validate().unwrap();
    }

    #[test]
    fn open_span_clipped_to_end_of_run() {
        let mut c = Core::new(CoreId(0));
        c.add_active_span(t(90), t(200));
        let r = c.finish(t(100));
        assert_eq!(r.active_time, SimDuration::from_micros(10));
        r.validate().unwrap();
    }

    #[test]
    fn metrics_per_second() {
        let mut c = Core::new(CoreId(0));
        // 4 wakeups over 2 seconds, 100ms active each.
        for k in 0..4u64 {
            let start = SimTime::from_millis(k * 500);
            c.add_active_span(start, start + SimDuration::from_millis(100));
        }
        let r = c.finish(SimTime::from_secs(2));
        assert!((r.wakeups_per_sec() - 2.0).abs() < 1e-9);
        assert!((r.usage_ms_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "start order")]
    fn out_of_order_spans_panic() {
        let mut c = Core::new(CoreId(0));
        c.add_active_span(t(50), t(60));
        c.add_active_span(t(10), t(20));
    }

    #[test]
    fn busy_until_reflects_open_span() {
        let mut c = Core::new(CoreId(0));
        assert_eq!(c.busy_until(), None);
        c.add_active_span(t(10), t(25));
        assert_eq!(c.busy_until(), Some(t(25)));
        c.add_active_span(t(20), t(40));
        assert_eq!(c.busy_until(), Some(t(40)));
    }
}

//! The simulation driver: an event queue plus a monotonic clock.
//!
//! The engine deliberately does *not* own the system state. The idiomatic
//! driver loop is:
//!
//! ```
//! use pc_sim::{Engine, SimTime, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut eng = Engine::<Ev>::new(42);
//! eng.schedule_after(SimDuration::from_micros(10), Ev::Tick(0));
//! let mut ticks = 0;
//! while let Some((t, ev)) = eng.next_before(SimTime::from_secs(1)) {
//!     match ev {
//!         Ev::Tick(n) if n < 4 => {
//!             ticks += 1;
//!             eng.schedule_after(SimDuration::from_micros(10), Ev::Tick(n + 1));
//!         }
//!         Ev::Tick(_) => { ticks += 1; }
//!     }
//!     let _ = t;
//! }
//! assert_eq!(ticks, 5);
//! ```
//!
//! Keeping state outside the engine sidesteps the usual borrow tangle of
//! callback-based designs and makes system models plain, testable structs.

use crate::arrival::ArrivalCalendar;
use crate::event::{EventId, EventQueue, QueueStats};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use pc_trace_events::TraceHandle;

/// One event handed out by [`Engine::next_merged_before`]: either a
/// workload arrival from the calendar front-end (identified by its
/// source index — the payload is the caller's cursor state) or a
/// dynamic event from the timer wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Popped<E> {
    /// The next pre-filed arrival of `source` (see
    /// [`Engine::schedule_arrival`]).
    Arrival(u32),
    /// A wheel event (timers, drains, slot wakes, fault edges).
    Timer(E),
}

/// Event queue + clock + deterministic RNG. See the module docs for the
/// driver-loop idiom.
pub struct Engine<E> {
    queue: EventQueue<E>,
    /// Merge front-end for pre-sorted workload arrivals (DESIGN.md §14).
    /// Shares the wheel's sequence counter, so the merged pop reproduces
    /// the exact `(time, seq)` order of an all-through-the-wheel run.
    arrivals: ArrivalCalendar,
    now: SimTime,
    rng: SimRng,
    trace: TraceHandle,
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with a seeded RNG.
    pub fn new(seed: u64) -> Self {
        Engine {
            queue: EventQueue::new(),
            arrivals: ArrivalCalendar::new(),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            trace: TraceHandle::disabled(),
        }
    }

    /// Attaches an event-trace handle; every clock advance is forwarded to
    /// the recorder so emission sites stamp events with sim time.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine's deterministic random number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules `ev` at the absolute time `at`. Scheduling in the past is
    /// a logic error and panics in debug builds; in release builds the
    /// event fires "now" (the queue clamps nothing, but the pop loop
    /// processes it immediately, preserving run-to-completion semantics).
    pub fn schedule_at(&mut self, at: SimTime, ev: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.queue.schedule(at, ev)
    }

    /// Schedules `ev` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, ev: E) -> EventId {
        let at = self.now.saturating_add(after);
        self.queue.schedule(at, ev)
    }

    /// Cancels a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Files the next arrival of `source` at absolute time `at`. The
    /// arrival consumes a sequence number from the *same* counter wheel
    /// events use, at the exact point this call is made — so a run that
    /// files arrivals here pops the bit-identical `(time, seq)` stream
    /// of a run that pushed them through [`Engine::schedule_at`]. At
    /// most one arrival per source may be pending (the cursor
    /// discipline); arrivals cannot be cancelled.
    pub fn schedule_arrival(&mut self, at: SimTime, source: u32) {
        debug_assert!(
            at >= self.now,
            "arrival scheduled into the past: {at} < {}",
            self.now
        );
        let seq = self.queue.take_seq();
        self.arrivals.set(source as usize, at.as_nanos(), seq);
    }

    /// Pops the next event if it fires at or before `deadline`, advancing
    /// the clock to its timestamp.
    pub fn next_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop_until(deadline)?;
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.trace.set_now(t.as_nanos());
        Some((t, ev))
    }

    /// Pops the earliest of `min(arrivals.peek(), wheel.peek())` — the
    /// global `(time, seq)` minimum across both backends — if it fires
    /// at or before `deadline`, advancing the clock to its timestamp.
    /// Deadline misses pop nothing and leave the clock untouched,
    /// exactly like [`Engine::next_before`].
    pub fn next_merged_before(&mut self, deadline: SimTime) -> Option<(SimTime, Popped<E>)> {
        // Sequence numbers are globally unique across both backends, so
        // a strict key comparison is a total order; equal times resolve
        // by schedule order, exactly as the wheel alone would.
        let take_arrival = match (self.arrivals.peek(), self.queue.peek_key()) {
            (Some((aa, aseq, _)), Some((wa, wseq))) => (aa, aseq) < (wa, wseq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_arrival {
            let (at, _seq, source) = self.arrivals.peek().expect("checked above");
            let t = SimTime::from_nanos(at);
            if t > deadline {
                return None;
            }
            self.arrivals.pop();
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.trace.set_now(at);
            Some((t, Popped::Arrival(source)))
        } else {
            let (t, ev) = self.queue.pop_until(deadline)?;
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.trace.set_now(t.as_nanos());
            Some((t, Popped::Timer(ev)))
        }
    }

    /// Pops the next event unconditionally, advancing the clock.
    #[allow(clippy::should_implement_trait)] // not an Iterator: &mut self with side effects on the clock
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.trace.set_now(t.as_nanos());
        Some((t, ev))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events (wheel and arrival calendar).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.arrivals.len()
    }

    /// Deterministic scheduler operation counters (see
    /// [`QueueStats`]) accumulated since the engine was created:
    /// wheel counters plus the arrival calendar's, with
    /// `pending_at_teardown` covering both backends — so the snapshot
    /// always satisfies [`QueueStats::ledger_balanced`].
    pub fn queue_stats(&self) -> QueueStats {
        let mut stats = self.queue.stats();
        stats.arrivals_scheduled = self.arrivals.scheduled();
        stats.arrivals_popped = self.arrivals.popped();
        stats.pending_at_teardown += self.arrivals.len() as u64;
        stats
    }

    /// Advances the clock to `t` without processing events. Intended for
    /// finalising accounting at the end of a run; `t` must not precede any
    /// pending event (checked in debug builds).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        self.now = t;
        self.trace.set_now(t.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_follows_events() {
        let mut eng = Engine::new(1);
        eng.schedule_at(SimTime::from_micros(7), "a");
        eng.schedule_at(SimTime::from_micros(3), "b");
        assert_eq!(eng.now(), SimTime::ZERO);
        let (t, ev) = eng.next().unwrap();
        assert_eq!((t, ev), (SimTime::from_micros(3), "b"));
        assert_eq!(eng.now(), SimTime::from_micros(3));
        eng.next().unwrap();
        assert_eq!(eng.now(), SimTime::from_micros(7));
    }

    #[test]
    fn next_before_stops_at_deadline() {
        let mut eng = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(2), ());
        assert!(eng.next_before(SimTime::from_secs(1)).is_none());
        // Deadline misses must not advance the clock.
        assert_eq!(eng.now(), SimTime::ZERO);
        assert!(eng.next_before(SimTime::from_secs(2)).is_some());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut eng = Engine::new(1);
        eng.schedule_at(SimTime::from_micros(10), 0u8);
        eng.next().unwrap();
        eng.schedule_after(SimDuration::from_micros(5), 1u8);
        let (t, ev) = eng.next().unwrap();
        assert_eq!(ev, 1);
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new(1);
        let id = eng.schedule_at(SimTime::from_micros(1), "doomed");
        eng.schedule_at(SimTime::from_micros(2), "kept");
        assert!(eng.cancel(id));
        assert_eq!(eng.next().map(|(_, e)| e), Some("kept"));
    }

    #[test]
    fn merged_pop_interleaves_arrivals_and_timers_by_key() {
        let mut eng = Engine::new(1);
        eng.schedule_arrival(SimTime::from_nanos(5), 0); // seq 0
        eng.schedule_at(SimTime::from_nanos(5), "timer@5"); // seq 1
        eng.schedule_arrival(SimTime::from_nanos(3), 1); // seq 2
        eng.schedule_at(SimTime::from_nanos(1), "timer@1"); // seq 3
        let deadline = SimTime::from_secs(1);
        let mut got = Vec::new();
        while let Some((t, ev)) = eng.next_merged_before(deadline) {
            got.push((t.as_nanos(), ev));
        }
        assert_eq!(
            got,
            vec![
                (1, Popped::Timer("timer@1")),
                (3, Popped::Arrival(1)),
                // Same nanosecond: the arrival was scheduled first, so
                // its shared seq (0) wins the FIFO tie against seq 1.
                (5, Popped::Arrival(0)),
                (5, Popped::Timer("timer@5")),
            ]
        );
        let stats = eng.queue_stats();
        assert_eq!(stats.arrivals_scheduled, 2);
        assert_eq!(stats.arrivals_popped, 2);
        assert_eq!(stats.scheduled, 2);
        assert_eq!(stats.popped, 2);
        assert_eq!(stats.pending_at_teardown, 0);
        assert!(stats.ledger_balanced());
    }

    #[test]
    fn merged_deadline_miss_pops_nothing_for_either_backend() {
        let mut eng = Engine::<()>::new(1);
        eng.schedule_arrival(SimTime::from_secs(2), 0);
        assert!(eng.next_merged_before(SimTime::from_secs(1)).is_none());
        assert_eq!(eng.now(), SimTime::ZERO);
        assert_eq!(eng.pending(), 1);
        let stats = eng.queue_stats();
        assert_eq!(stats.pending_at_teardown, 1);
        assert!(stats.ledger_balanced());
        assert!(eng.next_merged_before(SimTime::from_secs(2)).is_some());
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = Engine::<()>::new(99);
        let mut b = Engine::<()>::new(99);
        for _ in 0..100 {
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        }
    }
}

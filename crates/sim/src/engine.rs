//! The simulation driver: an event queue plus a monotonic clock.
//!
//! The engine deliberately does *not* own the system state. The idiomatic
//! driver loop is:
//!
//! ```
//! use pc_sim::{Engine, SimTime, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut eng = Engine::<Ev>::new(42);
//! eng.schedule_after(SimDuration::from_micros(10), Ev::Tick(0));
//! let mut ticks = 0;
//! while let Some((t, ev)) = eng.next_before(SimTime::from_secs(1)) {
//!     match ev {
//!         Ev::Tick(n) if n < 4 => {
//!             ticks += 1;
//!             eng.schedule_after(SimDuration::from_micros(10), Ev::Tick(n + 1));
//!         }
//!         Ev::Tick(_) => { ticks += 1; }
//!     }
//!     let _ = t;
//! }
//! assert_eq!(ticks, 5);
//! ```
//!
//! Keeping state outside the engine sidesteps the usual borrow tangle of
//! callback-based designs and makes system models plain, testable structs.

use crate::event::{EventId, EventQueue, QueueStats};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use pc_trace_events::TraceHandle;

/// Event queue + clock + deterministic RNG. See the module docs for the
/// driver-loop idiom.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    rng: SimRng,
    trace: TraceHandle,
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with a seeded RNG.
    pub fn new(seed: u64) -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            trace: TraceHandle::disabled(),
        }
    }

    /// Attaches an event-trace handle; every clock advance is forwarded to
    /// the recorder so emission sites stamp events with sim time.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine's deterministic random number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules `ev` at the absolute time `at`. Scheduling in the past is
    /// a logic error and panics in debug builds; in release builds the
    /// event fires "now" (the queue clamps nothing, but the pop loop
    /// processes it immediately, preserving run-to-completion semantics).
    pub fn schedule_at(&mut self, at: SimTime, ev: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.queue.schedule(at, ev)
    }

    /// Schedules `ev` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, ev: E) -> EventId {
        let at = self.now.saturating_add(after);
        self.queue.schedule(at, ev)
    }

    /// Cancels a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pops the next event if it fires at or before `deadline`, advancing
    /// the clock to its timestamp.
    pub fn next_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop_until(deadline)?;
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.trace.set_now(t.as_nanos());
        Some((t, ev))
    }

    /// Pops the next event unconditionally, advancing the clock.
    #[allow(clippy::should_implement_trait)] // not an Iterator: &mut self with side effects on the clock
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.trace.set_now(t.as_nanos());
        Some((t, ev))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Deterministic scheduler operation counters (see
    /// [`QueueStats`]) accumulated since the engine was created.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Advances the clock to `t` without processing events. Intended for
    /// finalising accounting at the end of a run; `t` must not precede any
    /// pending event (checked in debug builds).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        self.now = t;
        self.trace.set_now(t.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_follows_events() {
        let mut eng = Engine::new(1);
        eng.schedule_at(SimTime::from_micros(7), "a");
        eng.schedule_at(SimTime::from_micros(3), "b");
        assert_eq!(eng.now(), SimTime::ZERO);
        let (t, ev) = eng.next().unwrap();
        assert_eq!((t, ev), (SimTime::from_micros(3), "b"));
        assert_eq!(eng.now(), SimTime::from_micros(3));
        eng.next().unwrap();
        assert_eq!(eng.now(), SimTime::from_micros(7));
    }

    #[test]
    fn next_before_stops_at_deadline() {
        let mut eng = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(2), ());
        assert!(eng.next_before(SimTime::from_secs(1)).is_none());
        // Deadline misses must not advance the clock.
        assert_eq!(eng.now(), SimTime::ZERO);
        assert!(eng.next_before(SimTime::from_secs(2)).is_some());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut eng = Engine::new(1);
        eng.schedule_at(SimTime::from_micros(10), 0u8);
        eng.next().unwrap();
        eng.schedule_after(SimDuration::from_micros(5), 1u8);
        let (t, ev) = eng.next().unwrap();
        assert_eq!(ev, 1);
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new(1);
        let id = eng.schedule_at(SimTime::from_micros(1), "doomed");
        eng.schedule_at(SimTime::from_micros(2), "kept");
        assert!(eng.cancel(id));
        assert_eq!(eng.next().map(|(_, e)| e), Some("kept"));
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = Engine::<()>::new(99);
        let mut b = Engine::<()>::new(99);
        for _ in 0..100 {
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        }
    }
}

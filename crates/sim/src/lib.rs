//! # pc-sim — deterministic discrete-event simulation engine
//!
//! This crate is the experimental substrate that replaces the physical
//! testbed of the paper *Power-efficient Multiple Producer-Consumer*
//! (Medhat, Bonakdarpour, Fischmeister — IPDPS 2014): an Arndale Exynos-5
//! board measured with an oscilloscope. Instead of a board we provide a
//! deterministic simulation of a multicore machine:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`]) and
//!   durations ([`SimDuration`]) with checked/saturating arithmetic.
//! * [`event`] — a cancellable priority event queue ([`EventQueue`]) with
//!   stable FIFO ordering for simultaneous events.
//! * [`arrival`] — the arrival-calendar merge front-end
//!   ([`ArrivalCalendar`]): pre-sorted per-source workload arrivals
//!   merged in O(log M) per item, popped by the engine in one
//!   `(time, seq)` total order with the wheel (DESIGN.md §14).
//! * [`engine`] — a thin driver ([`Engine`]) combining the queue with a
//!   monotonic clock, used by higher-level system models.
//! * [`core`] — per-core activity accounting ([`Core`]): merged active
//!   spans, wakeup counting and an idle/active interval timeline that the
//!   `pc-power` crate integrates into energy figures.
//! * [`rng`] — a tiny, fully deterministic SplitMix64/xoshiro256** RNG with
//!   the distributions the workload models need (uniform, exponential,
//!   normal), so simulations are bit-reproducible across runs and platforms.
//! * [`timer`] — timer inaccuracy models. The paper's PBP vs SPBP gap is
//!   caused purely by `nanosleep()` jitter versus `SIGALRM` accuracy; the
//!   [`timer::TimerModel`] reproduces that mechanism.
//!
//! The engine is intentionally *not* generic over threads: simulations are
//! single-threaded and deterministic, which is what makes the paper's
//! metrics (wakeups, idle residency, alignment costs) exactly measurable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod core;
pub mod engine;
pub mod event;
pub mod model;
pub mod rng;
pub mod time;
pub mod timer;

pub use crate::arrival::ArrivalCalendar;
pub use crate::core::{Core, CoreId, CoreState, StateInterval};
pub use crate::engine::{Engine, Popped};
pub use crate::event::{EventId, EventQueue, QueueStats};
pub use crate::rng::SimRng;
pub use crate::time::{SimDuration, SimTime};
pub use crate::timer::TimerModel;

//! Timer inaccuracy models.
//!
//! §III-C of the paper observes that *signal-based* periodic batching
//! (SPBP) produces fewer wakeups than `nanosleep()`-based batching (PBP)
//! and attributes the whole difference to timer jitter: "The jitter
//! associated with sleep() causes more buffer overflows and thus, more
//! wakeups." A [`TimerModel`] reproduces that mechanism: given the time a
//! strategy *asked* to be woken, it returns the time the wakeup actually
//! fires.
//!
//! Jitter is always non-negative — real timers never fire early; `sleep`
//! returns *no sooner than* requested (POSIX), and signal delivery adds
//! dispatch latency.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a timer's actual firing time deviates from the requested time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimerModel {
    /// Fires exactly when requested. The idealised baseline.
    Perfect,
    /// Fixed latency added to every firing (e.g. IRQ dispatch cost).
    Fixed {
        /// Added latency.
        latency: SimDuration,
    },
    /// Truncated-Gaussian overshoot: `max(0, N(mean, std))` nanoseconds of
    /// lateness. Models `nanosleep()`'s scheduler-quantum jitter.
    Gaussian {
        /// Mean overshoot.
        mean: SimDuration,
        /// Standard deviation of the overshoot.
        std_dev: SimDuration,
    },
    /// Uniform overshoot in `[lo, hi)`. A coarse model for tick-rounded
    /// timers.
    Uniform {
        /// Minimum overshoot.
        lo: SimDuration,
        /// Maximum overshoot (exclusive).
        hi: SimDuration,
    },
}

impl TimerModel {
    /// The jitter model we calibrate for `nanosleep()`-driven PBP: plain
    /// sleeps on the paper-era embedded kernel are rounded up to timer
    /// ticks plus timer slack, giving millisecond-class overshoot —
    /// "the jitter associated with sleep() causes more buffer overflows
    /// and thus, more wakeups" (§III-C).
    pub fn nanosleep_like() -> Self {
        TimerModel::Gaussian {
            mean: SimDuration::from_micros(1_800),
            std_dev: SimDuration::from_micros(1_200),
        }
    }

    /// The jitter model for `SIGALRM`-driven SPBP: delivery within a few
    /// microseconds.
    pub fn sigalrm_like() -> Self {
        TimerModel::Gaussian {
            mean: SimDuration::from_micros(3),
            std_dev: SimDuration::from_micros(2),
        }
    }

    /// The firing time for a wakeup requested at `requested`.
    pub fn fire_time(&self, requested: SimTime, rng: &mut SimRng) -> SimTime {
        match *self {
            TimerModel::Perfect => requested,
            TimerModel::Fixed { latency } => requested.saturating_add(latency),
            TimerModel::Gaussian { mean, std_dev } => {
                let jitter = rng.normal(mean.as_secs_f64(), std_dev.as_secs_f64());
                requested.saturating_add(SimDuration::from_secs_f64(jitter.max(0.0)))
            }
            TimerModel::Uniform { lo, hi } => {
                let span = hi.saturating_sub(lo).as_nanos();
                let extra = if span == 0 { 0 } else { rng.next_below(span) };
                requested.saturating_add(lo.saturating_add(SimDuration::from_nanos(extra)))
            }
        }
    }

    /// Mean overshoot of this model (exact for `Perfect`/`Fixed`/`Uniform`;
    /// for the truncated Gaussian this is the untruncated mean, a close
    /// upper bound when `mean ≫ std_dev` is not violated badly).
    pub fn mean_overshoot(&self) -> SimDuration {
        match *self {
            TimerModel::Perfect => SimDuration::ZERO,
            TimerModel::Fixed { latency } => latency,
            TimerModel::Gaussian { mean, .. } => mean,
            TimerModel::Uniform { lo, hi } => (lo.saturating_add(hi)) / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fires_exactly() {
        let mut rng = SimRng::new(1);
        let t = SimTime::from_millis(5);
        assert_eq!(TimerModel::Perfect.fire_time(t, &mut rng), t);
    }

    #[test]
    fn fixed_adds_latency() {
        let mut rng = SimRng::new(1);
        let t = SimTime::from_millis(5);
        let m = TimerModel::Fixed {
            latency: SimDuration::from_micros(7),
        };
        assert_eq!(m.fire_time(t, &mut rng), t + SimDuration::from_micros(7));
    }

    #[test]
    fn jitter_never_fires_early() {
        let mut rng = SimRng::new(2);
        let t = SimTime::from_millis(1);
        for model in [
            TimerModel::nanosleep_like(),
            TimerModel::sigalrm_like(),
            TimerModel::Uniform {
                lo: SimDuration::from_micros(1),
                hi: SimDuration::from_micros(100),
            },
        ] {
            for _ in 0..1000 {
                assert!(model.fire_time(t, &mut rng) >= t);
            }
        }
    }

    #[test]
    fn gaussian_mean_overshoot_close() {
        let mut rng = SimRng::new(3);
        let t = SimTime::from_secs(1);
        let m = TimerModel::nanosleep_like();
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| m.fire_time(t, &mut rng).since(t).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        // Truncation at zero pulls the mean up slightly from 1.8ms.
        assert!((mean - 1.8e-3).abs() < 0.3e-3, "mean overshoot {mean}");
    }

    #[test]
    fn sigalrm_is_tighter_than_nanosleep() {
        let mut rng = SimRng::new(4);
        let t = SimTime::ZERO;
        let n = 20_000;
        let avg = |m: TimerModel, rng: &mut SimRng| {
            (0..n)
                .map(|_| m.fire_time(t, rng).since(t).as_secs_f64())
                .sum::<f64>()
                / n as f64
        };
        let sleep = avg(TimerModel::nanosleep_like(), &mut rng);
        let sig = avg(TimerModel::sigalrm_like(), &mut rng);
        assert!(
            sig * 5.0 < sleep,
            "sigalrm ({sig}) should be much tighter than nanosleep ({sleep})"
        );
    }

    #[test]
    fn uniform_overshoot_within_bounds() {
        let mut rng = SimRng::new(5);
        let lo = SimDuration::from_micros(10);
        let hi = SimDuration::from_micros(20);
        let m = TimerModel::Uniform { lo, hi };
        let t = SimTime::from_secs(2);
        for _ in 0..1000 {
            let over = m.fire_time(t, &mut rng).since(t);
            assert!(over >= lo && over < hi, "overshoot {over}");
        }
    }

    #[test]
    fn degenerate_uniform_is_fixed() {
        let mut rng = SimRng::new(6);
        let d = SimDuration::from_micros(4);
        let m = TimerModel::Uniform { lo: d, hi: d };
        assert_eq!(m.fire_time(SimTime::ZERO, &mut rng), SimTime::ZERO + d);
    }

    #[test]
    fn mean_overshoot_accessor() {
        assert_eq!(TimerModel::Perfect.mean_overshoot(), SimDuration::ZERO);
        assert_eq!(
            TimerModel::nanosleep_like().mean_overshoot(),
            SimDuration::from_micros(1_800)
        );
    }
}

//! Deterministic random numbers for simulations.
//!
//! Experiments in this repository must be bit-reproducible: the paper runs
//! three replicates of every experiment and reports confidence intervals,
//! and we reproduce that protocol with seeds `base`, `base+1`, `base+2`.
//! To guarantee identical streams across platforms and crate versions we
//! implement the generator ourselves rather than depending on `rand`'s
//! unspecified internals: SplitMix64 for seeding, xoshiro256\*\* for the
//! stream (public-domain algorithms by Blackman & Vigna).
//!
//! The distribution helpers cover exactly what the workload models need:
//! uniform ranges, exponential inter-arrival times, and Gaussian timer
//! jitter (Box–Muller).

/// A small, fast, fully deterministic RNG (xoshiro256\*\*).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Distinct seeds yield
    /// independent-looking streams; the all-zero internal state is
    /// unreachable by construction.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Derives a child generator; used to give each producer its own
    /// independent stream so adding a producer never perturbs the others'
    /// draws (the paper's producers are explicitly rate-independent).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Multiply-shift bounded generation (Lemire); slight modulo bias of
        // the plain approach is irrelevant here but this is just as cheap.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponentially distributed value with the given rate (mean `1/rate`).
    /// Used for Poisson inter-arrival times.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // Avoid ln(0).
        let u = 1.0 - self.next_f64();
        -u.ln() / rate
    }

    /// Standard normal via Box–Muller (cached pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_of_parent_progress() {
        // fork(k) after identical parent history must agree.
        let mut p1 = SimRng::new(5);
        let mut p2 = SimRng::new(5);
        let mut c1 = p1.fork(3);
        let mut c2 = p2.fork(3);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = SimRng::new(13);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(17);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "mean {mean} vs {}",
            1.0 / rate
        );
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(19);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn chance_frequency() {
        let mut r = SimRng::new(23);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.25).abs() < 0.01, "freq {f}");
    }
}

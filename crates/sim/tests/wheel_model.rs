//! Property-based equivalence of the hierarchical timer wheel
//! (`pc_sim::EventQueue`, DESIGN.md §13) against the binary-heap +
//! tombstone design it replaced.
//!
//! [`HeapModel`] below *is* the retired implementation, distilled: a
//! `BinaryHeap` min-ordered on `(time, seq)`, cancellation via a
//! tombstone set, and periodic compaction once tombstones pass
//! [`COMPACT_FLOOR`] and outnumber half the heap. The wheel must agree
//! with it on every observable — pop order (including FIFO order of
//! same-tick ties), cancel return values, and live counts — over
//! arbitrary interleavings of schedule / cancel / pop / pop_until,
//! with schedule times spanning same-tick collisions, late (past-time)
//! inserts, and far-future timers beyond the wheel horizon (the
//! overflow path, > 2⁴⁶ ns ahead).
//!
//! The model also keeps the compaction counter the old code carried:
//! the cancel-heavy deterministic script at the bottom asserts the heap
//! design *does* compact under that load while the wheel's
//! `QueueStats.compactions` stays 0 — the recorded proof that the
//! tombstone-compaction path is gone, not merely unexercised.

use pc_sim::{EventId, EventQueue, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Tombstone floor of the retired heap design: compaction never fires
/// below this many pending cancels, however small the heap. The old
/// `maybe_compact` wrote the literal twice; the model hoists it to a
/// single named constant.
const COMPACT_FLOOR: usize = 64;

/// The pre-wheel event queue, reduced to its observable semantics.
struct HeapModel {
    /// Min-heap of `(time_ns, seq)`; payload looked up by seq.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// seq -> payload for still-live events.
    live: std::collections::HashMap<u64, usize>,
    /// Cancelled seqs whose heap entries are still pending removal.
    tombstones: HashSet<u64>,
    next_seq: u64,
    /// Times compaction rebuilt the heap.
    compactions: u64,
}

impl HeapModel {
    fn new() -> Self {
        HeapModel {
            heap: BinaryHeap::new(),
            live: std::collections::HashMap::new(),
            tombstones: HashSet::new(),
            next_seq: 0,
            compactions: 0,
        }
    }

    fn schedule(&mut self, at: u64, payload: usize) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.live.insert(seq, payload);
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        if self.live.remove(&seq).is_none() {
            return false;
        }
        self.tombstones.insert(seq);
        self.maybe_compact();
        true
    }

    /// The retired heuristic: rebuild once tombstones clear the floor
    /// AND outnumber the live half of the heap.
    fn maybe_compact(&mut self) {
        if self.tombstones.len() >= COMPACT_FLOOR && self.tombstones.len() * 2 > self.heap.len() {
            let tombstones = std::mem::take(&mut self.tombstones);
            self.heap = self
                .heap
                .drain()
                .filter(|Reverse((_, seq))| !tombstones.contains(seq))
                .collect();
            self.compactions += 1;
        }
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if self.tombstones.remove(&seq) {
                continue;
            }
            let payload = self
                .live
                .remove(&seq)
                .expect("non-tombstoned entry is live");
            return Some((at, payload));
        }
        None
    }

    fn peek_time(&mut self) -> Option<u64> {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if self.tombstones.contains(&seq) {
                self.heap.pop();
                self.tombstones.remove(&seq);
                continue;
            }
            return Some(at);
        }
        None
    }

    fn pop_until(&mut self, deadline: u64) -> Option<(u64, usize)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Schedule on a coarse grid so same-tick (and same-nanosecond)
    /// collisions are common — FIFO tie order is the fragile invariant.
    ScheduleNear(u64),
    /// Schedule beyond the wheel horizon (> 2⁴⁶ ns ahead of elapsed):
    /// exercises the overflow list and its re-entry cascades.
    ScheduleFar(u64),
    /// Cancel the n-th handle ever issued (may already be popped or
    /// cancelled — both queues must agree on the returned bool).
    CancelNth(usize),
    Pop,
    PopUntil(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The in-tree proptest shim's `prop_oneof!` is unweighted, so the
    // mix is biased by repeating arms: 4× near-schedule (dense grid —
    // ~1k distinct instants in 512-ns steps, so events frequently share
    // a 1024-ns wheel tick without sharing a timestamp, plus exact-time
    // ties), 2× cancel, 3× pop, 1× each for far-future and pop_until.
    let near = || (0u64..1024).prop_map(|k| Op::ScheduleNear(k * 512));
    let cancel = || (0usize..96).prop_map(Op::CancelNth);
    prop_oneof![
        near(),
        near(),
        near(),
        near(),
        (1u64..16).prop_map(|k| Op::ScheduleFar(k << 47)),
        cancel(),
        cancel(),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
        (0u64..1 << 20).prop_map(Op::PopUntil),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn wheel_matches_heap_reference(
        script in prop::collection::vec(op_strategy(), 1..400)
    ) {
        let mut wheel = EventQueue::new();
        let mut model = HeapModel::new();
        let mut wheel_ids: Vec<EventId> = Vec::new();
        let mut model_ids: Vec<u64> = Vec::new();
        for (payload, op) in script.into_iter().enumerate() {
            match op {
                Op::ScheduleNear(t) | Op::ScheduleFar(t) => {
                    wheel_ids.push(wheel.schedule(SimTime::from_nanos(t), payload));
                    model_ids.push(model.schedule(t, payload));
                }
                Op::CancelNth(n) => {
                    if let (Some(&id), Some(&seq)) = (wheel_ids.get(n), model_ids.get(n)) {
                        prop_assert_eq!(
                            wheel.cancel(id),
                            model.cancel(seq),
                            "cancel #{} diverged", n
                        );
                    }
                }
                Op::Pop => {
                    let got = wheel.pop().map(|(t, p)| (t.as_nanos(), p));
                    prop_assert_eq!(got, model.pop(), "pop diverged");
                }
                Op::PopUntil(deadline) => {
                    let got = wheel
                        .pop_until(SimTime::from_nanos(deadline))
                        .map(|(t, p)| (t.as_nanos(), p));
                    prop_assert_eq!(got, model.pop_until(deadline), "pop_until diverged");
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
        }
        // Drain both to the end: the full residual order must agree too.
        loop {
            let got = wheel.pop().map(|(t, p)| (t.as_nanos(), p));
            let want = model.pop();
            prop_assert_eq!(got, want, "drain diverged");
            if got.is_none() {
                break;
            }
        }
    }
}

/// Deterministic cancel-heavy load: enough tombstones that the retired
/// heap design must compact (the counter proves the reference model's
/// compaction path is exercised, not dead weight), while the wheel —
/// agreeing on every observable — never compacts at all: cancels unlink
/// from their bucket in O(1) and `QueueStats.compactions` is
/// structurally zero.
#[test]
fn heap_model_compacts_where_the_wheel_does_not() {
    let mut wheel = EventQueue::new();
    let mut model = HeapModel::new();
    let mut handles = Vec::new();
    for i in 0u64..512 {
        let at = (i % 37) * 1000;
        handles.push((
            wheel.schedule(SimTime::from_nanos(at), i as usize),
            model.schedule(at, i as usize),
        ));
    }
    // Cancel three quarters of them.
    for (i, &(wid, mseq)) in handles.iter().enumerate() {
        if i % 4 != 0 {
            assert!(wheel.cancel(wid));
            assert!(model.cancel(mseq));
        }
    }
    assert!(
        model.compactions > 0,
        "reference heap never compacted — the script no longer exercises the retired path"
    );
    let stats = wheel.stats();
    assert_eq!(stats.compactions, 0, "the wheel has no compaction path");
    assert_eq!(stats.scheduled, 512);
    assert_eq!(stats.cancelled, 384);
    while let Some((t, p)) = wheel.pop() {
        let (mt, mp) = model.pop().expect("model drained early");
        assert_eq!((t.as_nanos(), p), (mt, mp));
    }
    assert!(model.pop().is_none());
    assert_eq!(wheel.stats().popped, 128);
}

//! Property-based model checks of the discrete-event substrate: the
//! cancellable event queue against a sorted reference, and the core
//! activity accumulator against a brute-force interval union.

use pc_sim::{Core, CoreId, EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum QOp {
    Schedule(u64),
    CancelNth(usize),
    Pop,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn event_queue_matches_sorted_reference(
        script in prop::collection::vec(
            prop_oneof![
                (0u64..1_000_000).prop_map(QOp::Schedule),
                (0usize..64).prop_map(QOp::CancelNth),
                Just(QOp::Pop),
            ],
            1..300,
        )
    ) {
        let mut q = EventQueue::new();
        // Reference: (time, seq, payload, alive) in insertion order.
        let mut reference: Vec<(u64, usize, bool)> = Vec::new();
        let mut ids = Vec::new();
        for (seq, op) in script.into_iter().enumerate() {
            match op {
                QOp::Schedule(t) => {
                    let id = q.schedule(SimTime::from_nanos(t), seq);
                    ids.push(id);
                    reference.push((t, seq, true));
                }
                QOp::CancelNth(n) => {
                    if let Some(&id) = ids.get(n) {
                        let did = q.cancel(id);
                        let model_did = reference
                            .get_mut(n)
                            .map(|e| std::mem::replace(&mut e.2, false))
                            .unwrap_or(false);
                        prop_assert_eq!(did, model_did, "cancel semantics diverged");
                    }
                }
                QOp::Pop => {
                    let got = q.pop();
                    // Reference pop: earliest (time, then insertion order)
                    // alive entry.
                    let best = reference
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.2)
                        .min_by_key(|(_, e)| (e.0, e.1))
                        .map(|(i, e)| (i, e.0, e.1));
                    match (got, best) {
                        (None, None) => {}
                        (Some((t, payload)), Some((i, bt, bseq))) => {
                            prop_assert_eq!(t, SimTime::from_nanos(bt));
                            prop_assert_eq!(payload, bseq);
                            reference[i].2 = false;
                        }
                        (got, best) => {
                            prop_assert!(false, "pop diverged: {got:?} vs {best:?}");
                        }
                    }
                }
            }
            let alive = reference.iter().filter(|e| e.2).count();
            prop_assert_eq!(q.len(), alive);
        }
    }

    #[test]
    fn core_accounting_matches_interval_union(
        spans in prop::collection::vec((0u64..10_000, 1u64..2_000), 1..60)
    ) {
        // Build sorted-by-start spans as the simulator would deliver them.
        let mut sorted: Vec<(u64, u64)> = spans
            .into_iter()
            .map(|(s, len)| (s, s + len))
            .collect();
        sorted.sort();
        let end_of_run = sorted.iter().map(|&(_, e)| e).max().unwrap() + 100;

        let mut core = Core::new(CoreId(0));
        for &(s, e) in &sorted {
            core.add_active_span(SimTime::from_nanos(s), SimTime::from_nanos(e));
        }
        let report = core.finish(SimTime::from_nanos(end_of_run));
        prop_assert!(report.validate().is_ok(), "{:?}", report.validate());

        // Brute-force union on a merged interval list.
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for &(s, e) in &sorted {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        let active: u64 = merged.iter().map(|&(s, e)| e - s).sum();
        prop_assert_eq!(report.active_time, SimDuration::from_nanos(active));
        prop_assert_eq!(report.wakeups, merged.len() as u64);
        prop_assert_eq!(
            report.idle_time(),
            SimDuration::from_nanos(end_of_run - active)
        );
    }
}

//! Model-checker gate for the reservation-book protocol (DESIGN.md
//! §12): the bounded BFS must (a) close the example instance's state
//! space with zero violations and both `sometimes` properties
//! discovered, (b) be bit-deterministic run-to-run, (c) catch the
//! deliberately broken floor-skipping rebalance with a minimal
//! counterexample, and (d) degrade honestly when its bounds cut the
//! frontier (`complete = false`, never a false "clean and closed").

use pc_sim::model::{BookAction, ModelConfig, ReservationModel, Squeeze};
use stateright::{Checker, Model};

#[test]
fn example_space_closes_clean_with_both_discoveries() {
    let model = ReservationModel::new(ModelConfig::example());
    let result = Checker::bounded(64, 1_000_000).check(&model);
    assert!(result.complete, "bounds must close the example space");
    assert!(
        result.is_clean(),
        "violations: {:?} ({} states)",
        result.violations,
        result.states_explored
    );
    assert!(result.states_explored > 1_000);
    assert!(result.depth_reached > 5);
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        let result =
            Checker::bounded(10, 50_000).check(&ReservationModel::new(ModelConfig::example()));
        (
            result.states_explored,
            result.depth_reached,
            result.complete,
            result.violations.len(),
        )
    };
    assert_eq!(run(), run(), "BFS must be bit-deterministic run-to-run");
}

#[test]
fn broken_floor_yields_a_shortest_counterexample() {
    let model = ReservationModel::new(ModelConfig::example().broken());
    let result = Checker::bounded(64, 1_000_000).check(&model);
    let v = result
        .violation("capacity respects floor")
        .expect("the floor-skipping rebalance must be caught");
    assert!(
        matches!(v.path.last(), Some(BookAction::DegradedRebalance { .. })),
        "counterexample must end in the buggy action: {:?}",
        v.path
    );
    // Shortest possible path: inject the squeeze (arming the watchdog),
    // then one buggy rebalance already shreds the floor. BFS guarantees
    // minimality.
    assert_eq!(
        v.path.len(),
        2,
        "BFS must find the 2-step path: {:?}",
        v.path
    );
    assert!(matches!(v.path[0], BookAction::InjectSqueeze { .. }));
    let state = v
        .state
        .as_ref()
        .expect("always-violation carries its state");
    assert!(state.capacity.iter().any(|&c| c < 2));

    // Every other invariant still holds on the buggy variant — the bug
    // breaks exactly one property, so the checker's blame is precise.
    assert_eq!(result.violations.len(), 1, "{:?}", result.violations);
}

#[test]
fn replayed_counterexample_is_a_valid_trajectory() {
    // The violation path must actually be executable: replaying it
    // action-by-action through next_state from the initial state ends
    // in the reported failing state.
    let model = ReservationModel::new(ModelConfig::example().broken());
    let result = Checker::bounded(64, 1_000_000).check(&model);
    let v = result.violation("capacity respects floor").unwrap();
    let mut state = model.init_states().remove(0);
    for action in &v.path {
        state = model
            .next_state(&state, action)
            .expect("counterexample action must be enabled");
    }
    assert_eq!(Some(&state), v.state.as_ref());
}

#[test]
fn tight_bounds_are_reported_as_incomplete() {
    let model = ReservationModel::new(ModelConfig::example());
    let result = Checker::bounded(2, 1_000_000).check(&model);
    assert!(!result.complete, "depth 2 cannot close the space");
    // With the space cut, `sometimes` non-discovery surfaces as a
    // violation — consuming an item takes produce → reserve → dispatch,
    // three steps (while the single squeeze can inject *and* recover
    // within two, so that discovery still succeeds).
    assert!(
        result.violation("an item is consumed").is_some(),
        "{:?}",
        result.violations
    );
    assert!(result.violation("every squeeze recovers").is_none());
}

#[test]
fn squeeze_schedule_injects_in_order_and_ledgers_partial_grabs() {
    // Two squeezes against a pool with slack 2: the second can only
    // fire after the first, and a squeeze landing on a drier pool
    // ledgers only what it actually grabbed (Active(units) ≤ asked).
    let cfg = ModelConfig {
        squeezes: vec![2, 2],
        ..ModelConfig::example()
    };
    let model = ReservationModel::new(cfg);
    let result = Checker::bounded(64, 2_000_000).check(&model);
    assert!(result.is_clean(), "{:?}", result.violations);

    let init = model.init_states().remove(0);
    let mut actions = Vec::new();
    model.actions(&init, &mut actions);
    assert!(
        actions
            .iter()
            .all(|a| !matches!(a, BookAction::InjectSqueeze { index: 1 })),
        "second squeeze must wait for the first"
    );
    let after_first = model
        .next_state(&init, &BookAction::InjectSqueeze { index: 0 })
        .unwrap();
    assert_eq!(after_first.squeezes[0], Squeeze::Active(2));
    assert_eq!(after_first.pool_available, 0);
    let after_second = model
        .next_state(&after_first, &BookAction::InjectSqueeze { index: 1 })
        .unwrap();
    assert_eq!(
        after_second.squeezes[1],
        Squeeze::Active(0),
        "dry pool: the squeeze window opens but holds nothing"
    );
}

//! Property-based equivalence of the arrival-calendar merge front-end
//! (`Engine::schedule_arrival` + `next_merged_before`, DESIGN.md §14)
//! against the retired all-through-the-wheel design.
//!
//! The reference engine below schedules every workload arrival as an
//! ordinary wheel event, exactly as `System::schedule_next_produce` did
//! before the calendar existed. The front-end engine routes the same
//! arrivals through `schedule_arrival` and pops the merged stream. The
//! two must agree on *every* observable, over arbitrary interleavings
//! of per-source sorted arrival streams, dynamic timers landing on the
//! same instants (exact `(time, seq)` ties are the fragile invariant),
//! timer cancellations, and early deadlines:
//!
//! * pop order — time, payload kind, and source/timer identity;
//! * trace digests — both engines stamp a recorder and the FNV digests
//!   of the recorded streams must match bit-for-bit;
//! * `QueueStats` — the merged ledger (`scheduled + arrivals_scheduled
//!   == popped + arrivals_popped + cancelled + pending_at_teardown`)
//!   must balance on the front end, and its totals must equal the
//!   reference's wheel-only ledger.

use pc_sim::{Engine, Popped, SimTime};
use pc_trace_events::{Recorder, TraceEvent};
use proptest::prelude::*;

/// What the reference engine carries through the wheel. The front-end
/// engine carries only `Timer` payloads — its arrivals ride the
/// calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefEv {
    Arrival(u32),
    Timer(u32),
}

/// One interleaving script: per-source arrival streams plus a timer
/// action decided at every pop.
#[derive(Debug, Clone)]
struct Script {
    /// `gaps[s]` are source `s`'s inter-arrival gaps (ns, may be 0 —
    /// repeated timestamps within one source are legal).
    gaps: Vec<Vec<u64>>,
    /// Per-pop timer action, consumed round-robin: `None` = no timer,
    /// `Some((offset, cancel))` schedules a timer `offset` ns after the
    /// current clock and immediately cancels it if `cancel` — cancelled
    /// timers leave dead husks the merged peek must drain past.
    timers: Vec<Option<(u64, bool)>>,
}

fn script_strategy() -> impl Strategy<Value = Script> {
    // Gaps on a coarse grid so sources collide on exact nanoseconds
    // (and timers below land on the same grid): FIFO-by-seq tie order
    // across the calendar/wheel boundary is the point of the test.
    let gaps = prop::collection::vec(
        prop::collection::vec((0u64..12).prop_map(|k| k * 256), 1..40),
        1..12,
    );
    let timers = prop::collection::vec(
        prop_oneof![
            Just(None),
            Just(None),
            ((0u64..12).prop_map(|k| k * 256), any::<bool>()).prop_map(Some),
        ],
        1..64,
    );
    (gaps, timers).prop_map(|(gaps, timers)| Script { gaps, timers })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn front_end_matches_all_through_wheel_reference(script in script_strategy()) {
        let end = SimTime::from_nanos(1 << 14);
        let sources = script.gaps.len();

        let front_rec = Recorder::bounded(1 << 16);
        let mut front: Engine<u32> = Engine::new(7);
        front.set_trace(front_rec.handle());

        let refr_rec = Recorder::bounded(1 << 16);
        let mut refr: Engine<RefEv> = Engine::new(7);
        refr.set_trace(refr_rec.handle());

        // Cursor state, shared by both drivers.
        let mut next_idx = vec![0usize; sources];
        let mut cursor_time = vec![0u64; sources];
        let arrival_at = |s: usize, idx: usize, base: u64| -> Option<u64> {
            script.gaps[s].get(idx).map(|g| base + g)
        };
        // Arm each source's first arrival on both engines, in the same
        // order so the shared-counter seq assignment matches.
        for s in 0..sources {
            if let Some(at) = arrival_at(s, 0, 0) {
                if at < end.as_nanos() {
                    front.schedule_arrival(SimTime::from_nanos(at), s as u32);
                    refr.schedule_at(SimTime::from_nanos(at), RefEv::Arrival(s as u32));
                }
            }
        }

        let mut timer_cursor = 0usize;
        let mut next_timer_id = 0u32;
        let mut pops = 0usize;
        loop {
            let got = front.next_merged_before(end);
            let want = refr.next_before(end);
            match (got, want) {
                (None, None) => break,
                (Some((ft, fp)), Some((rt, rp))) => {
                    prop_assert_eq!(ft, rt, "pop time diverged at pop {}", pops);
                    let fp = match fp {
                        Popped::Arrival(s) => RefEv::Arrival(s),
                        Popped::Timer(k) => RefEv::Timer(k),
                    };
                    prop_assert_eq!(fp, rp, "pop payload diverged at pop {}", pops);
                    prop_assert_eq!(front.now(), refr.now(), "clocks diverged");
                    match fp {
                        RefEv::Arrival(s) => {
                            let s = s as usize;
                            front_rec.handle().record(|| TraceEvent::Produce { pair: s as u32 });
                            refr_rec.handle().record(|| TraceEvent::Produce { pair: s as u32 });
                            // Advance the source cursor and arm the next
                            // arrival at the same program point on both
                            // engines, as `System::produce` does.
                            cursor_time[s] = ft.as_nanos();
                            next_idx[s] += 1;
                            if let Some(at) = arrival_at(s, next_idx[s], cursor_time[s]) {
                                if at < end.as_nanos() {
                                    front.schedule_arrival(SimTime::from_nanos(at), s as u32);
                                    refr.schedule_at(
                                        SimTime::from_nanos(at),
                                        RefEv::Arrival(s as u32),
                                    );
                                }
                            }
                        }
                        RefEv::Timer(k) => {
                            front_rec.handle().record(|| TraceEvent::Wakeup { pair: k });
                            refr_rec.handle().record(|| TraceEvent::Wakeup { pair: k });
                        }
                    }
                    // Dynamic timer action: same decision on both sides.
                    if let Some(&Some((offset, cancel))) = script.timers.get(timer_cursor) {
                        let at = ft.as_nanos() + offset;
                        if at < end.as_nanos() {
                            let k = next_timer_id;
                            next_timer_id += 1;
                            let fid = front.schedule_at(SimTime::from_nanos(at), k);
                            let rid = refr.schedule_at(SimTime::from_nanos(at), RefEv::Timer(k));
                            if cancel {
                                prop_assert!(front.cancel(fid));
                                prop_assert!(refr.cancel(rid));
                            }
                        }
                    }
                    timer_cursor = (timer_cursor + 1) % script.timers.len();
                }
                (got, want) => {
                    prop_assert!(false, "pop presence diverged: {:?} vs {:?}", got, want);
                }
            }
            pops += 1;
            prop_assert_eq!(front.pending(), refr.pending(), "pending diverged");
        }

        // Trace digests: identical clock stamps and payloads.
        let front_log = front_rec.take();
        let refr_log = refr_rec.take();
        prop_assert_eq!(front_log.dropped, 0);
        prop_assert_eq!(refr_log.dropped, 0);
        prop_assert_eq!(front_log.digest(), refr_log.digest(), "trace digests diverged");

        // QueueStats: the merged ledger balances, and wheel + calendar
        // totals equal the reference's wheel-only totals.
        let fs = front.queue_stats();
        let rs = refr.queue_stats();
        prop_assert!(fs.ledger_balanced(), "front-end ledger out of balance: {:?}", fs);
        prop_assert!(rs.ledger_balanced(), "reference ledger out of balance: {:?}", rs);
        prop_assert_eq!(
            fs.scheduled + fs.arrivals_scheduled,
            rs.scheduled,
            "total scheduled diverged"
        );
        prop_assert_eq!(
            fs.popped + fs.arrivals_popped,
            rs.popped,
            "total popped diverged"
        );
        prop_assert_eq!(fs.cancelled, rs.cancelled);
        prop_assert_eq!(fs.pending_at_teardown, rs.pending_at_teardown);
        // Arrivals that popped before `end` did so from the calendar,
        // never the wheel: the front-end wheel saw only timers.
        prop_assert_eq!(fs.scheduled, u64::from(next_timer_id));
    }
}

/// Deterministic spot check of the one asymmetry the proptest cannot
/// pin: a deadline landing *between* the calendar head and the wheel
/// head must leave both engines' clocks untouched and pop nothing.
#[test]
fn deadline_between_heads_pops_nothing() {
    let mut front: Engine<u32> = Engine::new(1);
    front.schedule_arrival(SimTime::from_nanos(5_000), 0);
    front.schedule_at(SimTime::from_nanos(2_000), 9);
    // Wheel head (2 µs) pops; calendar head (5 µs) is past the deadline.
    let (t, ev) = front
        .next_merged_before(SimTime::from_nanos(3_000))
        .unwrap();
    assert_eq!((t.as_nanos(), ev), (2_000, Popped::Timer(9)));
    assert_eq!(front.next_merged_before(SimTime::from_nanos(3_000)), None);
    assert_eq!(
        front.now(),
        SimTime::from_nanos(2_000),
        "clock must not move on a miss"
    );
    assert_eq!(front.pending(), 1);
    let stats = front.queue_stats();
    assert_eq!(stats.arrivals_scheduled, 1);
    assert_eq!(stats.arrivals_popped, 0);
    assert_eq!(stats.pending_at_teardown, 1);
    assert!(stats.ledger_balanced());
}

//! Slot selection microbenches: the ρ cost function and the backtracking
//! search against reservation books of varying occupancy (§V-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_core::{select_slot, CoreManager, CostModel, PairId, SlotTrack};
use pc_sim::{SimDuration, SimTime};
use std::hint::black_box;

fn bench_selection(c: &mut Criterion) {
    let track = SlotTrack::new(SimDuration::from_millis(25));
    let cost = CostModel {
        wakeup_energy_j: 120e-6,
        item_energy_j: 3.2e-6,
    };
    let mut group = c.benchmark_group("slot_selection");

    for reservations in [0usize, 4, 16, 64] {
        let mut manager = CoreManager::new(track);
        for k in 0..reservations {
            manager.reserve((k as u64 % 8) + 1, PairId(k));
        }
        group.bench_with_input(
            BenchmarkId::new("select_slot", reservations),
            &reservations,
            |b, _| {
                let now = SimTime::from_millis(3);
                b.iter(|| {
                    black_box(select_slot(
                        &track,
                        &manager,
                        &cost,
                        now,
                        black_box(1860.0),
                        25,
                        SimDuration::from_millis(100),
                        true,
                        None,
                    ))
                });
            },
        );
    }

    group.bench_function("rho", |b| {
        b.iter(|| black_box(cost.rho(black_box(true), black_box(23.0))));
    });

    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);

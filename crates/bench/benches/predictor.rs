//! Rate-predictor microbenches: the per-invocation cost of each
//! estimator. The paper picks the moving average for its "very low
//! overhead" — this bench quantifies that choice against EWMA and the
//! §VIII Kalman filter.

use criterion::{criterion_group, criterion_main, Criterion};
use pc_core::{Ewma, Kalman, MovingAverage, RatePredictor};
use pc_sim::SimDuration;
use std::hint::black_box;

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor_observe_rate");
    let dt = SimDuration::from_millis(25);

    group.bench_function("moving_average_h8", |b| {
        let mut p = MovingAverage::new(8, 0.0);
        b.iter(|| {
            p.observe(black_box(46), dt);
            black_box(p.rate())
        });
    });
    group.bench_function("ewma", |b| {
        let mut p = Ewma::new(0.35, 0.0);
        b.iter(|| {
            p.observe(black_box(46), dt);
            black_box(p.rate())
        });
    });
    group.bench_function("kalman", |b| {
        let mut p = Kalman::new(4.0e5, 4.0e6, 0.0);
        b.iter(|| {
            p.observe(black_box(46), dt);
            black_box(p.rate())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);

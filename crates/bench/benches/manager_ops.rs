//! Core-manager microbenches: reserve/deregister/take churn at realistic
//! and adversarial consumer counts (§V-B argues these are lightweight).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_core::{CoreManager, PairId, SlotTrack};
use pc_sim::SimDuration;
use std::hint::black_box;

fn bench_manager(c: &mut Criterion) {
    let track = SlotTrack::new(SimDuration::from_millis(25));
    let mut group = c.benchmark_group("manager_ops");

    for consumers in [5usize, 50, 500] {
        group.bench_with_input(
            BenchmarkId::new("reserve_rotate", consumers),
            &consumers,
            |b, &n| {
                let mut mgr = CoreManager::new(track);
                let mut slot = 1u64;
                b.iter(|| {
                    for k in 0..n {
                        mgr.reserve(slot + (k as u64 % 7), PairId(k));
                    }
                    slot += 1;
                    black_box(mgr.first_reserved())
                });
            },
        );
    }

    group.bench_function("take_due_5", |b| {
        let mut mgr = CoreManager::new(track);
        let mut slot = 1u64;
        b.iter(|| {
            for k in 0..5 {
                mgr.reserve(slot, PairId(k));
            }
            let due = mgr.take_due(slot);
            slot += 1;
            black_box(due)
        });
    });

    group.bench_function("latest_reserved_in", |b| {
        let mut mgr = CoreManager::new(track);
        for k in 0..64 {
            mgr.reserve(k as u64 * 3 + 1, PairId(k));
        }
        b.iter(|| black_box(mgr.latest_reserved_in(black_box(10), black_box(150))));
    });

    group.finish();
}

criterion_group!(benches, bench_manager);
criterion_main!(benches);

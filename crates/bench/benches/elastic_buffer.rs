//! Elastic buffer microbenches: push/pop, drain, and the grow/shrink
//! resizing path against the shared pool (§V-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pc_queues::{ElasticBuffer, GlobalPool};
use std::hint::black_box;
use std::sync::Arc;

fn bench_elastic(c: &mut Criterion) {
    let mut group = c.benchmark_group("elastic_buffer");
    group.sample_size(20);

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("push_pop_10k", |b| {
        let pool = GlobalPool::new(64);
        let mut buf = ElasticBuffer::<u64>::new(Arc::clone(&pool), 50).unwrap();
        b.iter(|| {
            for i in 0..10_000u64 {
                if buf.push(i).is_err() {
                    while buf.pop().is_some() {}
                    buf.push(i).unwrap();
                }
            }
            while buf.pop().is_some() {}
        });
    });

    group.bench_function("drain_50", |b| {
        let pool = GlobalPool::new(64);
        let mut buf = ElasticBuffer::<u64>::new(Arc::clone(&pool), 50).unwrap();
        let mut out = Vec::with_capacity(64);
        b.iter(|| {
            for i in 0..50u64 {
                buf.push(i).unwrap();
            }
            out.clear();
            black_box(buf.drain_into(&mut out));
        });
    });

    for span in [10usize, 40] {
        group.bench_with_input(
            BenchmarkId::new("grow_shrink_cycle", span),
            &span,
            |b, &span| {
                let pool = GlobalPool::new(500);
                let mut buf = ElasticBuffer::<u64>::new(Arc::clone(&pool), 50).unwrap();
                b.iter(|| {
                    black_box(buf.grow_to(50 + span));
                    black_box(buf.shrink_to(50 - span));
                });
            },
        );
    }

    group.bench_function("pool_contention_4_threads", |b| {
        b.iter(|| {
            let pool = GlobalPool::new(1000);
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    std::thread::spawn(move || {
                        for _ in 0..5_000 {
                            let got = pool.try_reserve(7);
                            pool.release(got);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_elastic);
criterion_main!(benches);

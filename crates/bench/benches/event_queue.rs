//! Event-scheduler microbench: the hierarchical timer wheel
//! (`pc_sim::EventQueue`, DESIGN.md §13) against the binary-heap +
//! tombstone design it replaced, at 10⁴–10⁶ pending timers.
//!
//! Two workloads per backlog size, both modelled on what `Sim::run`
//! actually does:
//!
//! * `churn` — steady state: with N timers pending, repeatedly pop the
//!   earliest and schedule a replacement a pseudo-random offset ahead
//!   (a Produce pops, schedules the next arrival). O(log N) per op on
//!   the heap, O(1) amortised on the wheel — this is where a planet
//!   fleet's backlog lives.
//! * `cancel_heavy` — schedule N, cancel half in FIFO order, drain the
//!   rest: the slot-reservation pattern (PBPL latch cancels) that drove
//!   the heap's tombstone compaction.
//!
//! The heap model mirrors `crates/sim/tests/wheel_model.rs` — the
//! retired implementation reduced to its semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pc_sim::{EventQueue, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Tombstone floor of the retired heap design (see wheel_model.rs).
const COMPACT_FLOOR: usize = 64;

/// The pre-wheel queue: BinaryHeap + tombstones + periodic compaction.
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    tombstones: HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            tombstones: HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    fn schedule(&mut self, at: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.live += 1;
        seq
    }

    fn cancel(&mut self, seq: u64) {
        self.tombstones.insert(seq);
        self.live -= 1;
        if self.tombstones.len() >= COMPACT_FLOOR && self.tombstones.len() * 2 > self.heap.len() {
            let tombstones = std::mem::take(&mut self.tombstones);
            self.heap = self
                .heap
                .drain()
                .filter(|Reverse((_, s))| !tombstones.contains(s))
                .collect();
        }
    }

    fn pop(&mut self) -> Option<u64> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if self.tombstones.remove(&seq) {
                continue;
            }
            self.live -= 1;
            return Some(at);
        }
        None
    }
}

/// Deterministic splitmix64 step for arrival offsets — no external RNG,
/// same stream for both backends.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Churned pops+schedules per iteration.
const CHURN_OPS: u64 = 10_000;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    for &pending in &[10_000usize, 100_000, 1_000_000] {
        group.throughput(Throughput::Elements(CHURN_OPS));
        group.bench_with_input(
            BenchmarkId::new("wheel_churn", pending),
            &pending,
            |b, &n| {
                // Build the backlog once; each iteration churns on top of it.
                let mut q = EventQueue::new();
                let mut rng = 42u64;
                for i in 0..n {
                    q.schedule(SimTime::from_nanos(mix(&mut rng) % 1_000_000_000), i);
                }
                b.iter(|| {
                    for i in 0..CHURN_OPS {
                        let (t, _) = q.pop().expect("backlog never empties");
                        let dt = mix(&mut rng) % 1_000_000;
                        q.schedule(SimTime::from_nanos(t.as_nanos() + dt), i as usize);
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("heap_churn", pending),
            &pending,
            |b, &n| {
                let mut q = HeapQueue::new();
                let mut rng = 42u64;
                for _ in 0..n {
                    q.schedule(mix(&mut rng) % 1_000_000_000);
                }
                b.iter(|| {
                    for _ in 0..CHURN_OPS {
                        let t = q.pop().expect("backlog never empties");
                        let dt = mix(&mut rng) % 1_000_000;
                        q.schedule(t + dt);
                    }
                });
            },
        );

        group.throughput(Throughput::Elements(pending as u64));
        group.bench_with_input(
            BenchmarkId::new("wheel_cancel_heavy", pending),
            &pending,
            |b, &n| {
                b.iter(|| {
                    let mut q = EventQueue::new();
                    let mut rng = 7u64;
                    let mut ids = Vec::with_capacity(n);
                    for i in 0..n {
                        ids.push(q.schedule(SimTime::from_nanos(mix(&mut rng) % 1_000_000_000), i));
                    }
                    for id in ids.into_iter().step_by(2) {
                        q.cancel(id);
                    }
                    while q.pop().is_some() {}
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("heap_cancel_heavy", pending),
            &pending,
            |b, &n| {
                b.iter(|| {
                    let mut q = HeapQueue::new();
                    let mut rng = 7u64;
                    let mut ids = Vec::with_capacity(n);
                    for _ in 0..n {
                        ids.push(q.schedule(mix(&mut rng) % 1_000_000_000));
                    }
                    for id in ids.into_iter().step_by(2) {
                        q.cancel(id);
                    }
                    while q.pop().is_some() {}
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);

//! Event-scheduler microbench: the hierarchical timer wheel
//! (`pc_sim::EventQueue`, DESIGN.md §13) against the binary-heap +
//! tombstone design it replaced, at 10⁴–10⁶ pending timers.
//!
//! Two workloads per backlog size, both modelled on what `Sim::run`
//! actually does:
//!
//! * `churn` — steady state: with N timers pending, repeatedly pop the
//!   earliest and schedule a replacement a pseudo-random offset ahead
//!   (a Produce pops, schedules the next arrival). O(log N) per op on
//!   the heap, O(1) amortised on the wheel — this is where a planet
//!   fleet's backlog lives.
//! * `cancel_heavy` — schedule N, cancel half in FIFO order, drain the
//!   rest: the slot-reservation pattern (PBPL latch cancels) that drove
//!   the heap's tombstone compaction.
//!
//! A third scenario races the *arrival* path specifically (DESIGN.md
//! §14): M pre-sorted per-source streams merged to exhaustion, with
//! each popped arrival immediately replaced by its source's next — the
//! exact access pattern of `System::schedule_next_produce`. `wheel_` is
//! the retired route (every arrival a wheel event); `calendar_` is the
//! `ArrivalCalendar` tournament-tree merge the engine now uses, at
//! M ∈ {10, 100, 1000} matching the scale sweep's fleet sizes.
//!
//! The heap model mirrors `crates/sim/tests/wheel_model.rs` — the
//! retired implementation reduced to its semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pc_sim::{ArrivalCalendar, EventQueue, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Tombstone floor of the retired heap design (see wheel_model.rs).
const COMPACT_FLOOR: usize = 64;

/// The pre-wheel queue: BinaryHeap + tombstones + periodic compaction.
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    tombstones: HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            tombstones: HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    fn schedule(&mut self, at: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.live += 1;
        seq
    }

    fn cancel(&mut self, seq: u64) {
        self.tombstones.insert(seq);
        self.live -= 1;
        if self.tombstones.len() >= COMPACT_FLOOR && self.tombstones.len() * 2 > self.heap.len() {
            let tombstones = std::mem::take(&mut self.tombstones);
            self.heap = self
                .heap
                .drain()
                .filter(|Reverse((_, s))| !tombstones.contains(s))
                .collect();
        }
    }

    fn pop(&mut self) -> Option<u64> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if self.tombstones.remove(&seq) {
                continue;
            }
            self.live -= 1;
            return Some(at);
        }
        None
    }
}

/// Deterministic splitmix64 step for arrival offsets — no external RNG,
/// same stream for both backends.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Churned pops+schedules per iteration.
const CHURN_OPS: u64 = 10_000;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    for &pending in &[10_000usize, 100_000, 1_000_000] {
        group.throughput(Throughput::Elements(CHURN_OPS));
        group.bench_with_input(
            BenchmarkId::new("wheel_churn", pending),
            &pending,
            |b, &n| {
                // Build the backlog once; each iteration churns on top of it.
                let mut q = EventQueue::new();
                let mut rng = 42u64;
                for i in 0..n {
                    q.schedule(SimTime::from_nanos(mix(&mut rng) % 1_000_000_000), i);
                }
                b.iter(|| {
                    for i in 0..CHURN_OPS {
                        let (t, _) = q.pop().expect("backlog never empties");
                        let dt = mix(&mut rng) % 1_000_000;
                        q.schedule(SimTime::from_nanos(t.as_nanos() + dt), i as usize);
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("heap_churn", pending),
            &pending,
            |b, &n| {
                let mut q = HeapQueue::new();
                let mut rng = 42u64;
                for _ in 0..n {
                    q.schedule(mix(&mut rng) % 1_000_000_000);
                }
                b.iter(|| {
                    for _ in 0..CHURN_OPS {
                        let t = q.pop().expect("backlog never empties");
                        let dt = mix(&mut rng) % 1_000_000;
                        q.schedule(t + dt);
                    }
                });
            },
        );

        group.throughput(Throughput::Elements(pending as u64));
        group.bench_with_input(
            BenchmarkId::new("wheel_cancel_heavy", pending),
            &pending,
            |b, &n| {
                b.iter(|| {
                    let mut q = EventQueue::new();
                    let mut rng = 7u64;
                    let mut ids = Vec::with_capacity(n);
                    for i in 0..n {
                        ids.push(q.schedule(SimTime::from_nanos(mix(&mut rng) % 1_000_000_000), i));
                    }
                    for id in ids.into_iter().step_by(2) {
                        q.cancel(id);
                    }
                    while q.pop().is_some() {}
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("heap_cancel_heavy", pending),
            &pending,
            |b, &n| {
                b.iter(|| {
                    let mut q = HeapQueue::new();
                    let mut rng = 7u64;
                    let mut ids = Vec::with_capacity(n);
                    for _ in 0..n {
                        ids.push(q.schedule(mix(&mut rng) % 1_000_000_000));
                    }
                    for id in ids.into_iter().step_by(2) {
                        q.cancel(id);
                    }
                    while q.pop().is_some() {}
                });
            },
        );
    }
    group.finish();
}

/// Arrivals consumed per source in the merge scenario; total items per
/// iteration are `M × ARRIVALS_PER_SOURCE`.
const ARRIVALS_PER_SOURCE: u64 = 100;

fn bench_arrival_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival_merge");
    group.sample_size(10);
    for &sources in &[10usize, 100, 1000] {
        let total = sources as u64 * ARRIVALS_PER_SOURCE;
        group.throughput(Throughput::Elements(total));
        // Per-source cursors over deterministic sorted streams: popping
        // an arrival arms that source's next, like the sim's produce
        // path does.
        group.bench_with_input(
            BenchmarkId::new("wheel_merge", sources),
            &sources,
            |b, &m| {
                b.iter(|| {
                    let mut q = EventQueue::new();
                    let mut rng = 42u64;
                    let mut cursor = vec![0u64; m];
                    let mut remaining = vec![ARRIVALS_PER_SOURCE; m];
                    for (s, c) in cursor.iter_mut().enumerate() {
                        *c = mix(&mut rng) % 4096;
                        q.schedule(SimTime::from_nanos(*c), s);
                    }
                    let mut popped = 0u64;
                    while let Some((_, s)) = q.pop() {
                        popped += 1;
                        remaining[s] -= 1;
                        if remaining[s] > 0 {
                            cursor[s] += 1 + mix(&mut rng) % 4096;
                            q.schedule(SimTime::from_nanos(cursor[s]), s);
                        }
                    }
                    assert_eq!(popped, total);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("calendar_merge", sources),
            &sources,
            |b, &m| {
                b.iter(|| {
                    let mut cal = ArrivalCalendar::new();
                    let mut rng = 42u64;
                    let mut cursor = vec![0u64; m];
                    let mut remaining = vec![ARRIVALS_PER_SOURCE; m];
                    let mut seq = 0u64;
                    for (s, c) in cursor.iter_mut().enumerate() {
                        *c = mix(&mut rng) % 4096;
                        cal.set(s, *c, seq);
                        seq += 1;
                    }
                    let mut popped = 0u64;
                    while let Some((_, _, s)) = cal.pop() {
                        popped += 1;
                        let s = s as usize;
                        remaining[s] -= 1;
                        if remaining[s] > 0 {
                            cursor[s] += 1 + mix(&mut rng) % 4096;
                            cal.set(s, cursor[s], seq);
                            seq += 1;
                        }
                    }
                    assert_eq!(popped, total);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_arrival_merge);
criterion_main!(benches);

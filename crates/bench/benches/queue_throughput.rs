//! Queue substrate microbenches: the lock-free SPSC ring versus the
//! Mutex and Sem queues that §III builds its strategies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pc_queues::{spsc_ring, MutexQueue, SemQueue};
use std::sync::Arc;
use std::thread;

const ITEMS: u64 = 20_000;

fn bench_spsc(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_throughput");
    group.throughput(Throughput::Elements(ITEMS));
    // Each iteration spawns real threads and moves 20k items; keep the
    // sample count low or the suite takes tens of minutes.
    group.sample_size(10);
    for capacity in [25usize, 100, 1024] {
        group.bench_with_input(
            BenchmarkId::new("spsc_ring", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let (p, con) = spsc_ring::<u64>(cap);
                    let producer = thread::spawn(move || {
                        for i in 0..ITEMS {
                            let mut v = i;
                            while let Err(back) = p.push(v) {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    });
                    let mut seen = 0u64;
                    while seen < ITEMS {
                        if con.pop().is_some() {
                            seen += 1;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    producer.join().unwrap();
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex_queue", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let q = Arc::new(MutexQueue::<u64>::new(cap));
                    let qp = Arc::clone(&q);
                    let producer = thread::spawn(move || {
                        for i in 0..ITEMS {
                            qp.push(i);
                        }
                    });
                    for _ in 0..ITEMS {
                        q.pop();
                    }
                    producer.join().unwrap();
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sem_queue", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let (qp, qc) = SemQueue::<u64>::new(cap);
                    let producer = thread::spawn(move || {
                        for i in 0..ITEMS {
                            qp.push(i);
                        }
                    });
                    for _ in 0..ITEMS {
                        qc.pop();
                    }
                    producer.join().unwrap();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spsc);
criterion_main!(benches);

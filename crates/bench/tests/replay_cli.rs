//! Exit-path contract of the `trace_report` and `replay` binaries:
//! CI shell-scripts them, so the codes must be exact — 0 clean,
//! 1 failures (divergence, digest mismatch, empty export), 2 usage or
//! I/O/parse errors *with a line number* so a corrupted artifact can be
//! found by eye.

use pc_bench::oracle::{self, TraceLine};
use pc_bench::replay::{fixture_dir, parse_export_file};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("binary spawns")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pc_replay_cli_{}_{name}", std::process::id()))
}

fn write(path: &Path, content: &str) {
    std::fs::write(path, content).unwrap();
}

fn suite_fixture() -> String {
    fixture_dir().join("suite_cell.jsonl").display().to_string()
}

const TRACE_REPORT: &str = env!("CARGO_BIN_EXE_trace_report");
const REPLAY: &str = env!("CARGO_BIN_EXE_replay");

#[test]
fn clean_fixture_exits_zero_in_both_binaries() {
    for bin in [TRACE_REPORT, REPLAY] {
        let out = run(bin, &[&suite_fixture()]);
        assert!(
            out.status.success(),
            "{bin}: {}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout)
        );
    }
    // replay --digest-only and --list are clean exits too.
    assert!(run(REPLAY, &[&suite_fixture(), "--digest-only"])
        .status
        .success());
    assert!(run(REPLAY, &[&suite_fixture(), "--list"]).status.success());
}

#[test]
fn garbage_line_exits_two_with_its_line_number() {
    let path = tmp("garbage.jsonl");
    // Line 1 is a valid header-less event, line 2 is plain garbage —
    // the orphan event is the first error hit.
    write(
        &path,
        "{\"Ev\":{\"seq\":0,\"t_ns\":1,\"kind\":{\"Produce\":{\"pair\":0}}}}\nnot json\n",
    );
    let arg = path.display().to_string();
    for bin in [TRACE_REPORT, REPLAY] {
        let out = run(bin, &[&arg]);
        assert_eq!(out.status.code(), Some(2), "{bin}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(":1:"), "{bin} must name line 1: {stderr}");
        assert!(stderr.contains("before any cell header"), "{stderr}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_recording_fails_trace_report_and_replay() {
    // Take the real fixture and drop its last 10 event lines: the
    // header's event count and digest no longer match.
    let full = std::fs::read_to_string(suite_fixture()).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    let truncated: String = lines[..lines.len() - 10]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    let path = tmp("truncated.jsonl");
    write(&path, &truncated);
    let arg = path.display().to_string();

    let out = run(TRACE_REPORT, &[&arg]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("event count"), "{stdout}");
    assert!(stdout.contains("digest"), "{stdout}");

    let out = run(REPLAY, &[&arg]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("diverged at seq"), "{stdout}");
    assert!(stdout.contains("end of recording"), "{stdout}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn single_retimed_event_diverges_replay_but_not_trace_report_parsing() {
    // Retime one mid-stream event and fix up the header digest so only
    // the *replay* (re-execution) can notice — the recording is
    // internally consistent, it just doesn't match the simulator.
    let mut cells = parse_export_file(&suite_fixture()).unwrap();
    let cell = &mut cells[0];
    let idx = cell.events.len() / 2;
    cell.events[idx].t_ns += 1;
    let expected_seq = cell.events[idx].seq;
    cell.meta.digest = pc_trace_events::digest(&cell.events);

    let mut content = String::new();
    content.push_str(&oracle::line_to_json(&TraceLine::Cell(cell.meta.clone())));
    content.push('\n');
    for ev in &cell.events {
        content.push_str(&oracle::line_to_json(&TraceLine::Ev(ev.clone())));
        content.push('\n');
    }
    let path = tmp("retimed.jsonl");
    write(&path, &content);
    let arg = path.display().to_string();

    for extra in [None, Some("--digest-only")] {
        let mut args = vec![arg.as_str()];
        if let Some(flag) = extra {
            args.push(flag);
        }
        let out = run(REPLAY, &args);
        assert_eq!(out.status.code(), Some(1), "flag={extra:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("diverged at seq {expected_seq}")),
            "flag={extra:?}: {stdout}"
        );
        if extra.is_none() {
            assert!(stdout.contains("first divergence"), "{stdout}");
            assert!(stdout.contains("recorded"), "{stdout}");
            assert!(stdout.contains("replayed"), "{stdout}");
        }
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_and_unknown_flag_exit_two() {
    let out = run(REPLAY, &["/nonexistent/nowhere.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));

    let out = run(REPLAY, &["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));

    let out = run(TRACE_REPORT, &["/nonexistent/nowhere.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn empty_export_exits_one() {
    let path = tmp("empty.jsonl");
    write(&path, "\n");
    let arg = path.display().to_string();
    for bin in [TRACE_REPORT, REPLAY] {
        let out = run(bin, &[&arg]);
        assert_eq!(out.status.code(), Some(1), "{bin}");
    }
    std::fs::remove_file(&path).ok();
}

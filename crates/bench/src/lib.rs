//! # pc-bench — experiment runners and microbenches
//!
//! One binary per paper figure/table (see `src/bin/`), all built on the
//! [`exp`] replicate-running helpers; criterion microbenches for the
//! data-structure substrates live in `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod exp;
pub mod oracle;
pub mod overload;
pub mod replay;
pub mod scale;
pub mod sweep;

//! Overload sweep (DESIGN.md §15): the strategy panel under correlated
//! overload scenarios, with and without the deadline-aware overload
//! control layer.
//!
//! The grid crosses every fault scenario — the chaos sweep's eight plus
//! the two *correlated* scenarios ([`FaultScenario::correlated`]:
//! flash crowd, cascading squeeze) that deliberately stay out of the
//! chaos grid — with a four-row panel {BP, PBPL, PBPL(degraded),
//! PBPL(overload)} at the chaos point (M = 5 on 2 cores, B₀ = 25).
//! One extra point re-runs the flash crowd at fleet scale: the scaling
//! sweep's m100 geometry (100 pairs on 10 cores) on the planet
//! workload, where the supervisor's fleet-wide escalation actually has
//! a fleet to escalate over.
//!
//! `PBPL(overload)` is vanilla PBPL plus [`OverloadConfig::standard`] —
//! overload control is an experiment knob orthogonal to the strategy,
//! and the label alone is the complete recipe (`replay` rebuilds such
//! cells from it; see `replay::label_overloaded`). Every cell is traced
//! internally and replayed through the extended oracle; the shed ledger
//! (`produced == consumed + shed`, every `ItemShed` inside a paired
//! overload window whose `OverloadCleared.shed` matches) must hold for
//! every cell, and shed must be exactly zero on the three rows that run
//! without overload control.

use crate::chaos::chaos_strategy_label;
use crate::exp::Protocol;
use crate::oracle::{self, OracleReport};
use crate::sweep::{parallel_map_costed, trace_capacity_from_env, DispatchStats, GridPoint};
use pc_core::{Experiment, OverloadConfig, RunMetrics, StrategyKind};
use pc_faults::{ExpandEnv, FaultPlan, FaultScenario};
use pc_trace::PlanetConfig;
use pc_trace_events::{Recorder, TraceLog};
use serde::Serialize;

/// Geometry of an overload cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPoint {
    /// The chaos point — the paper's five consumers on two cores,
    /// B₀ = 25, World-Cup workload.
    Chaos,
    /// The scaling sweep's m100 point — 100 pairs on 10 cores, B₀ = 25,
    /// planet fleet workload.
    PlanetM100,
}

impl OverloadPoint {
    /// The (pairs, cores, buffer) configuration.
    pub fn grid(self) -> GridPoint {
        match self {
            OverloadPoint::Chaos => crate::chaos::chaos_point(),
            OverloadPoint::PlanetM100 => GridPoint {
                pairs: 100,
                cores: 10,
                buffer: 25,
            },
        }
    }
}

/// One overload cell: a panel row under a scenario at a geometry.
#[derive(Debug, Clone)]
pub struct OverloadCellSpec {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Whether the cell runs under [`OverloadConfig::standard`].
    pub overload: bool,
    /// Fault scenario the plan expands from.
    pub scenario: FaultScenario,
    /// Geometry the cell runs at.
    pub point: OverloadPoint,
    /// Replicate index; the seed is `base_seed + replicate`.
    pub replicate: usize,
}

/// The four-row panel: plain batching, vanilla PBPL, PBPL with the
/// degradation watchdog, and PBPL under overload control.
pub fn overload_panel() -> Vec<(StrategyKind, bool)> {
    vec![
        (StrategyKind::Bp, false),
        (StrategyKind::pbpl_default(), false),
        (StrategyKind::pbpl_degraded(), false),
        (StrategyKind::pbpl_default(), true),
    ]
}

/// The scenario list: the two correlated scenarios first, then the
/// chaos sweep's full eight (baseline included — the control rows).
pub fn overload_scenarios() -> Vec<FaultScenario> {
    FaultScenario::correlated()
        .into_iter()
        .chain(FaultScenario::all())
        .collect()
}

/// Display label of a panel row; the `(overload)` suffix marks the
/// overload-control knob and is the complete replay recipe (the cell
/// ran under exactly [`OverloadConfig::standard`]).
pub fn overload_strategy_label(strategy: &StrategyKind, overload: bool) -> String {
    let base = chaos_strategy_label(strategy);
    if overload {
        format!("{base}(overload)")
    } else {
        base
    }
}

/// Stable cell name used for exact-match filtering:
/// `{scenario}/{strategy}`, with the planet-scale point tagged
/// `{scenario}@m100` so the two flash-crowd geometries stay distinct.
pub fn overload_cell_name(cell: &OverloadCellSpec) -> String {
    let scenario = match cell.point {
        OverloadPoint::Chaos => cell.scenario.name().to_string(),
        OverloadPoint::PlanetM100 => format!("{}@m100", cell.scenario.name()),
    };
    format!(
        "{}/{}",
        scenario,
        overload_strategy_label(&cell.strategy, cell.overload)
    )
}

/// Expands the grid in canonical order: the chaos point first
/// (scenario-major, then panel row, then replicate), then the planet
/// m100 flash-crowd block.
pub fn overload_cells(replicates: usize) -> Vec<OverloadCellSpec> {
    let mut cells = Vec::new();
    for scenario in overload_scenarios() {
        for (strategy, overload) in overload_panel() {
            for replicate in 0..replicates {
                cells.push(OverloadCellSpec {
                    strategy: strategy.clone(),
                    overload,
                    scenario,
                    point: OverloadPoint::Chaos,
                    replicate,
                });
            }
        }
    }
    for (strategy, overload) in overload_panel() {
        for replicate in 0..replicates {
            cells.push(OverloadCellSpec {
                strategy: strategy.clone(),
                overload,
                scenario: FaultScenario::FlashCrowd,
                point: OverloadPoint::PlanetM100,
                replicate,
            });
        }
    }
    cells
}

/// Expands the cell's fault plan from `(scenario, seed)` and the cell's
/// own geometry — the same contract as `chaos::chaos_plan`, just
/// point-parametric.
pub fn overload_plan(protocol: &Protocol, cell: &OverloadCellSpec) -> FaultPlan {
    let point = cell.point.grid();
    let env = ExpandEnv {
        horizon_ns: protocol.duration.as_nanos(),
        pairs: point.pairs as u32,
        cores: point.cores as u32,
        pool_total: if cell.strategy.is_batching() {
            (point.buffer * point.pairs) as u64
        } else {
            0
        },
    };
    FaultPlan::expand(
        cell.scenario,
        protocol.base_seed + cell.replicate as u64,
        &env,
    )
}

/// The planet workload the m100 cells run: `scale_default` with the
/// horizon stretched to the protocol duration — exactly the
/// reconstruction `replay::rerun_cell` performs for the
/// `"planet_scale"` workload name, which keeps the export replayable.
pub fn planet_workload(protocol: &Protocol) -> PlanetConfig {
    let mut cfg = PlanetConfig::scale_default();
    cfg.base.horizon = pc_sim::SimTime::ZERO + protocol.duration;
    cfg
}

/// Runs one overload cell, always traced — the oracle replay and the
/// shed accounting both come from the event stream.
pub fn run_overload_cell(protocol: &Protocol, cell: &OverloadCellSpec) -> (RunMetrics, TraceLog) {
    let point = cell.point.grid();
    let seed = protocol.base_seed + cell.replicate as u64;
    let recorder = Recorder::bounded(trace_capacity_from_env());
    let mut builder = Experiment::builder()
        .pairs(point.pairs)
        .cores(point.cores)
        .duration(protocol.duration)
        .strategy(cell.strategy.clone())
        .seed(seed)
        .buffer_capacity(point.buffer)
        .faults(overload_plan(protocol, cell))
        .record_events(recorder.handle());
    if cell.overload {
        builder = builder.overload(OverloadConfig::standard());
    }
    builder = match cell.point {
        OverloadPoint::Chaos => builder.trace(protocol.trace.clone()),
        OverloadPoint::PlanetM100 => {
            builder.traces(planet_workload(protocol).traces(seed, point.pairs))
        }
    };
    let metrics = builder.run();
    (metrics, recorder.take())
}

/// Runs `cells` on the engine with cost-aware (LPT) dispatch — the m100
/// cells are 20× an M = 5 cell, so they are claimed first. Results are
/// in cell order for any thread count; the stats are sidecar-only.
pub fn execute_overload_costed(
    protocol: &Protocol,
    cells: &[OverloadCellSpec],
    threads: usize,
) -> (Vec<(RunMetrics, TraceLog)>, DispatchStats) {
    let costs: Vec<u64> = cells
        .iter()
        .map(|cell| {
            protocol
                .duration
                .as_nanos()
                .saturating_mul(cell.point.grid().pairs as u64)
        })
        .collect();
    parallel_map_costed(cells, threads, &costs, |cell| {
        run_overload_cell(protocol, cell)
    })
}

/// One row of `results/overload.json`: cell identity, the determinism
/// currency (energy bits, digest), and the shed/deadline accounting.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadCellReport {
    /// Exact-match filter name (`{scenario}/{strategy}`).
    pub cell: String,
    /// Panel row label (`PBPL(overload)` tags the overload knob).
    pub strategy: String,
    /// Scenario name (the pure name — `@m100` lives in `cell` only).
    pub scenario: String,
    /// Pairs (the paper's M).
    pub pairs: usize,
    /// Cores.
    pub cores: usize,
    /// Per-consumer base buffer capacity.
    pub buffer: usize,
    /// Seed the cell ran under.
    pub seed: u64,
    /// Faults in the expanded plan.
    pub plan_faults: usize,
    /// Raw bits of the energy reading (exact-equality currency).
    pub energy_j_bits: u64,
    /// Energy reading for human eyes.
    pub energy_j: f64,
    /// Items produced over the run (shed items included).
    pub items_produced: u64,
    /// Items consumed.
    pub items_consumed: u64,
    /// Arrivals rejected by the admission controller; always 0 on the
    /// non-overload rows, and `produced == consumed + shed` everywhere.
    pub items_shed: u64,
    /// Shed share of production, percent.
    pub shed_pct: f64,
    /// Overload windows entered across the fleet (admission trips plus
    /// supervisor escalations).
    pub overload_windows: u64,
    /// Consumed items that missed the overload deadline (counted only
    /// on overload rows — the deadline is undefined otherwise).
    pub deadline_misses: u64,
    /// Consumer wakeups charged by the power model.
    pub wakeups: u64,
    /// Scheduled (timer) wakeups.
    pub scheduled_wakeups: u64,
    /// Overflow-forced wakeups.
    pub overflow_wakeups: u64,
    /// Events the cell's recorder captured.
    pub trace_events: u64,
    /// FNV-1a digest of the cell's event stream.
    pub trace_digest: u64,
}

/// Builds the report row for one executed cell (oracle result handled
/// separately — violations fail the run rather than ride in the JSON).
pub fn overload_cell_report(
    protocol: &Protocol,
    cell: &OverloadCellSpec,
    metrics: &RunMetrics,
    log: &TraceLog,
) -> OverloadCellReport {
    let point = cell.point.grid();
    let shed_pct = if metrics.items_produced == 0 {
        0.0
    } else {
        metrics.items_shed as f64 / metrics.items_produced as f64 * 100.0
    };
    OverloadCellReport {
        cell: overload_cell_name(cell),
        strategy: overload_strategy_label(&cell.strategy, cell.overload),
        scenario: cell.scenario.name().to_string(),
        pairs: point.pairs,
        cores: point.cores,
        buffer: point.buffer,
        seed: protocol.base_seed + cell.replicate as u64,
        plan_faults: overload_plan(protocol, cell).len(),
        energy_j_bits: metrics.energy.energy_j.to_bits(),
        energy_j: metrics.energy.energy_j,
        items_produced: metrics.items_produced,
        items_consumed: metrics.items_consumed,
        items_shed: metrics.items_shed,
        shed_pct,
        overload_windows: metrics.pairs.iter().map(|p| p.overload_windows).sum(),
        deadline_misses: metrics.deadline_misses(),
        wakeups: metrics.energy.wakeups,
        scheduled_wakeups: metrics.scheduled_wakeups(),
        overflow_wakeups: metrics.overflow_wakeups(),
        trace_events: log.events.len() as u64,
        trace_digest: log.digest(),
    }
}

/// Replays the extended oracle (shed-ledger invariants included) over
/// one cell's trace.
pub fn overload_oracle(log: &TraceLog) -> OracleReport {
    oracle::check(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_sim::SimDuration;
    use pc_trace::WorldCupConfig;
    use pc_trace_events::TraceEvent;

    fn tiny_protocol() -> Protocol {
        Protocol {
            // Long enough for a flash-crowd window (~30–55% of the
            // horizon) to build service lag past the 50 ms standard
            // deadline on a saturated core.
            duration: SimDuration::from_millis(400),
            replicates: 1,
            base_seed: 11,
            trace: WorldCupConfig::quick_test(),
            threads: 2,
        }
    }

    #[test]
    fn grid_is_ten_scenarios_by_four_rows_plus_the_m100_block() {
        let cells = overload_cells(1);
        assert_eq!(cells.len(), 10 * 4 + 4);
        assert_eq!(cells[0].scenario, FaultScenario::FlashCrowd);
        assert_eq!(cells[0].point, OverloadPoint::Chaos);
        assert!(cells[40..].iter().all(
            |c| c.point == OverloadPoint::PlanetM100 && c.scenario == FaultScenario::FlashCrowd
        ));
        // Cell names are unique per replicate — the exact-match filter
        // contract depends on it.
        let names: std::collections::BTreeSet<String> =
            cells.iter().map(overload_cell_name).collect();
        assert_eq!(names.len(), cells.len());
        assert!(names.contains("flash_crowd/PBPL(overload)"));
        assert!(names.contains("flash_crowd@m100/PBPL(overload)"));
        assert!(names.contains("baseline/BP"));
    }

    #[test]
    fn flash_crowd_sheds_under_overload_control_only() {
        let p = tiny_protocol();
        let overloaded = OverloadCellSpec {
            strategy: StrategyKind::pbpl_default(),
            overload: true,
            scenario: FaultScenario::FlashCrowd,
            point: OverloadPoint::Chaos,
            replicate: 0,
        };
        let (metrics, log) = run_overload_cell(&p, &overloaded);
        assert!(metrics.items_shed > 0, "flash crowd must trip admission");
        assert_eq!(
            metrics.items_produced,
            metrics.items_consumed + metrics.items_shed
        );
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEvent::ItemShed { .. })));
        let report = overload_oracle(&log);
        assert!(report.is_clean(), "{:?}", report.violations);
        // Seed-deterministic: the same cell re-run sheds the same count.
        let (again, log2) = run_overload_cell(&p, &overloaded);
        assert_eq!(metrics.items_shed, again.items_shed);
        assert_eq!(log.digest(), log2.digest());

        // The same cell without the knob sheds nothing.
        let vanilla = OverloadCellSpec {
            overload: false,
            ..overloaded
        };
        let (base, base_log) = run_overload_cell(&p, &vanilla);
        assert_eq!(base.items_shed, 0);
        assert_eq!(base.items_produced, base.items_consumed);
        assert!(overload_oracle(&base_log).is_clean());
    }

    #[test]
    fn every_panel_row_runs_clean_under_the_correlated_scenarios() {
        let p = tiny_protocol();
        for scenario in FaultScenario::correlated() {
            for (strategy, overload) in overload_panel() {
                let cell = OverloadCellSpec {
                    strategy,
                    overload,
                    scenario,
                    point: OverloadPoint::Chaos,
                    replicate: 0,
                };
                let (metrics, log) = run_overload_cell(&p, &cell);
                assert_eq!(
                    metrics.items_produced,
                    metrics.items_consumed + metrics.items_shed,
                    "{}",
                    overload_cell_name(&cell)
                );
                assert!(metrics.scheduler.ledger_balanced());
                let report = overload_oracle(&log);
                assert!(
                    report.is_clean(),
                    "{}: {:?}",
                    overload_cell_name(&cell),
                    report.violations
                );
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_overload_bits() {
        let p = tiny_protocol();
        let cells: Vec<OverloadCellSpec> = overload_cells(1)
            .into_iter()
            .filter(|c| c.point == OverloadPoint::Chaos && c.scenario == FaultScenario::FlashCrowd)
            .collect();
        assert_eq!(cells.len(), 4);
        let (serial, _) = execute_overload_costed(&p, &cells, 1);
        let (parallel, _) = execute_overload_costed(&p, &cells, 4);
        for ((ms, ls), (mp, lp)) in serial.iter().zip(&parallel) {
            assert_eq!(ms.energy.energy_j.to_bits(), mp.energy.energy_j.to_bits());
            assert_eq!(ms.items_shed, mp.items_shed);
            assert_eq!(ls.digest(), lp.digest());
        }
    }
}

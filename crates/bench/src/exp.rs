//! Shared experiment machinery: the paper's measurement protocol
//! (§III-B) as reusable code.
//!
//! Every experiment executes for a fixed horizon (50 s in the paper),
//! runs three replicates with distinct seeds, and reports mean ± 95% CI
//! for each metric. `PC_DURATION_MS`, `PC_REPLICATES` and `PC_SEED`
//! override the defaults so the full suite can be smoke-tested quickly.

use pc_core::{RunMetrics, StrategyKind};
use pc_sim::SimDuration;
use pc_stats::Summary;
use pc_trace::WorldCupConfig;
use serde::Serialize;

/// Protocol parameters shared by all experiment runners.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Run length (paper: 50 s).
    pub duration: SimDuration,
    /// Replicates per configuration (paper: 3).
    pub replicates: usize,
    /// Base seed; replicate k runs with `base_seed + k`.
    pub base_seed: u64,
    /// Workload configuration.
    pub trace: WorldCupConfig,
    /// Worker threads for the sweep engine. Thread count never affects
    /// results (see `sweep`) — only wall-clock time.
    pub threads: usize,
}

impl Protocol {
    /// The paper's protocol, with environment overrides:
    /// `PC_DURATION_MS`, `PC_REPLICATES`, `PC_SEED`, `PC_THREADS`.
    pub fn from_env() -> Self {
        let duration_ms = std::env::var("PC_DURATION_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&ms: &u64| ms > 0)
            .unwrap_or(50_000u64);
        let replicates = std::env::var("PC_REPLICATES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3usize);
        let base_seed = std::env::var("PC_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1u64);
        Protocol {
            duration: SimDuration::from_millis(duration_ms),
            replicates: replicates.max(1),
            base_seed,
            trace: WorldCupConfig::paper_default(),
            threads: crate::sweep::threads_from_env(),
        }
    }

    /// Runs one strategy configuration across the replicates — a
    /// one-point, one-strategy sweep on the parallel engine; replicates
    /// run concurrently up to `self.threads`, results in replicate order.
    pub fn run(
        &self,
        strategy: StrategyKind,
        pairs: usize,
        cores: usize,
        buffer: usize,
    ) -> Vec<RunMetrics> {
        let spec = crate::sweep::SweepSpec {
            strategies: vec![strategy],
            points: vec![crate::sweep::GridPoint {
                pairs,
                cores,
                buffer,
            }],
        };
        let cells = spec.cells(self.replicates);
        crate::sweep::execute(self, &cells, self.threads)
    }
}

/// Per-strategy result row: each §VI-B metric as a replicate summary.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Strategy display name.
    pub name: String,
    /// Extra power over baseline, milliwatts.
    pub power_mw: Summary,
    /// Core wakeups per second.
    pub wakeups_per_sec: Summary,
    /// CPU usage, ms/s.
    pub usage_ms_per_sec: Summary,
    /// Internally counted scheduled wakeups (batchers).
    pub scheduled: Summary,
    /// Buffer overflows (batchers).
    pub overflows: Summary,
    /// Mean allocated buffer capacity.
    pub mean_capacity: Summary,
    /// Mean item latency, microseconds.
    pub latency_us: Summary,
    /// 99th-percentile item latency, microseconds (batching's tail cost).
    pub latency_p99_us: Summary,
    /// Items consumed per replicate (sanity).
    pub items: Summary,
}

impl Row {
    /// Summarises replicate metrics into a row.
    pub fn from_runs(runs: &[RunMetrics]) -> Row {
        let get = |f: &dyn Fn(&RunMetrics) -> f64| runs.iter().map(f).collect::<Vec<_>>();
        Row {
            name: runs[0].strategy.clone(),
            power_mw: Summary::of("power_mw", &get(&|m| m.extra_power_mw())),
            wakeups_per_sec: Summary::of("wakeups_per_sec", &get(&|m| m.wakeups_per_sec())),
            usage_ms_per_sec: Summary::of("usage_ms_per_sec", &get(&|m| m.usage_ms_per_sec())),
            scheduled: Summary::of("scheduled", &get(&|m| m.scheduled_wakeups() as f64)),
            overflows: Summary::of("overflows", &get(&|m| m.overflow_wakeups() as f64)),
            mean_capacity: Summary::of("mean_capacity", &get(&|m| m.mean_capacity())),
            latency_us: Summary::of(
                "latency_us",
                &get(&|m| m.mean_latency().as_secs_f64() * 1e6),
            ),
            latency_p99_us: Summary::of(
                "latency_p99_us",
                &get(&|m| {
                    m.latency_percentile(99.0)
                        .map(|d| d.as_secs_f64() * 1e6)
                        .unwrap_or(f64::NAN)
                }),
            ),
            items: Summary::of("items", &get(&|m| m.items_consumed as f64)),
        }
    }
}

/// Finds the row for a strategy by its display name, panicking with the
/// name when absent (all runners construct their own rows, so absence is
/// a programming error).
pub fn row<'a>(rows: &'a [Row], name: &str) -> &'a Row {
    rows.iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no row named {name}"))
}

/// Signed percentage change of `ours` versus `baseline` (−20.0 = 20%
/// lower).
pub fn pct_change(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        f64::NAN
    } else {
        (ours - baseline) / baseline * 100.0
    }
}

/// Prints the standard metric table header.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:>6} | {:>16} | {:>16} | {:>14} | {:>12} | {:>12} | {:>9} | {:>10}",
        "impl",
        "power (mW)",
        "wakeups/s",
        "usage (ms/s)",
        "scheduled",
        "overflows",
        "avg buf",
        "lat (us)"
    );
}

/// Prints one strategy row.
pub fn print_row(r: &Row) {
    println!(
        "{:>6} | {:>8.1} ±{:>6.1} | {:>8.1} ±{:>6.1} | {:>7.2} ±{:>5.2} | {:>12.0} | {:>12.0} | {:>9.1} | {:>10.0}",
        r.name,
        r.power_mw.mean,
        r.power_mw.ci95.half_width,
        r.wakeups_per_sec.mean,
        r.wakeups_per_sec.ci95.half_width,
        r.usage_ms_per_sec.mean,
        r.usage_ms_per_sec.ci95.half_width,
        r.scheduled.mean,
        r.overflows.mean,
        r.mean_capacity.mean,
        r.latency_us.mean,
    );
}

/// Prints the latency tail line for a row (mean and p99).
pub fn print_latency_tail(r: &Row) {
    println!(
        "{:>6} latency: mean {:>8.0} us, p99 {:>8.0} us",
        r.name, r.latency_us.mean, r.latency_p99_us.mean
    );
}

/// Serialises experiment output under `results/<name>.json` (best
/// effort — failures only warn, measurements still print).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialisation failed: {e}"),
    }
}

/// The four implementations §VI evaluates.
pub fn evaluated_strategies() -> Vec<StrategyKind> {
    vec![
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::pbpl_default(),
    ]
}

/// The seven §III implementations. The periodic strategies' period is
/// matched to the buffer-fill time at the workload's mean rate (the
/// paper's 100 µs played the same role against its much faster replay).
pub fn single_pc_strategies(buffer: usize, mean_rate: f64) -> Vec<StrategyKind> {
    let period = SimDuration::from_secs_f64(buffer as f64 / mean_rate);
    vec![
        StrategyKind::BusyWait,
        StrategyKind::Yield,
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::Pbp { period },
        StrategyKind::Spbp { period },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_protocol() -> Protocol {
        Protocol {
            duration: SimDuration::from_millis(50),
            replicates: 2,
            base_seed: 5,
            trace: WorldCupConfig::quick_test(),
            threads: 1,
        }
    }

    /// `from_env` must fall back to the paper defaults on unparsable or
    /// out-of-range values rather than panic or silently zero out.
    /// Env mutation is process-global, so every case lives in this one
    /// test; the other tests here construct `Protocol` directly.
    #[test]
    fn from_env_falls_back_on_bad_values() {
        let vars = ["PC_DURATION_MS", "PC_REPLICATES", "PC_SEED", "PC_THREADS"];
        let saved: Vec<Option<String>> = vars.iter().map(|v| std::env::var(v).ok()).collect();

        std::env::set_var("PC_DURATION_MS", "not-a-number");
        std::env::set_var("PC_REPLICATES", "0");
        std::env::set_var("PC_SEED", "-3");
        std::env::set_var("PC_THREADS", "0");
        let p = Protocol::from_env();
        assert_eq!(p.duration, SimDuration::from_millis(50_000));
        assert_eq!(p.replicates, 1, "replicates clamp to at least 1");
        assert_eq!(p.base_seed, 1, "negative seed falls back to default");
        assert!(p.threads >= 1, "threads fall back to machine parallelism");

        std::env::set_var("PC_DURATION_MS", "0");
        assert_eq!(
            Protocol::from_env().duration,
            SimDuration::from_millis(50_000),
            "zero duration rejected"
        );

        std::env::set_var("PC_DURATION_MS", "1234");
        std::env::set_var("PC_REPLICATES", "5");
        std::env::set_var("PC_SEED", "99");
        std::env::set_var("PC_THREADS", "3");
        let p = Protocol::from_env();
        assert_eq!(p.duration, SimDuration::from_millis(1234));
        assert_eq!(p.replicates, 5);
        assert_eq!(p.base_seed, 99);
        assert_eq!(p.threads, 3);

        for (var, value) in vars.iter().zip(saved) {
            match value {
                Some(v) => std::env::set_var(var, v),
                None => std::env::remove_var(var),
            }
        }
    }

    #[test]
    fn protocol_runs_replicates_with_distinct_seeds() {
        let p = tiny_protocol();
        let runs = p.run(StrategyKind::Mutex, 2, 2, 25);
        assert_eq!(runs.len(), 2);
        // Different seeds → different traces → (almost surely) different
        // item counts.
        assert_ne!(runs[0].items_consumed, runs[1].items_consumed);
    }

    #[test]
    fn row_summarises_replicates() {
        let p = tiny_protocol();
        let runs = p.run(StrategyKind::Bp, 2, 2, 25);
        let row = Row::from_runs(&runs);
        assert_eq!(row.name, "BP");
        assert_eq!(row.items.samples.len(), 2);
        assert!(row.power_mw.mean > 0.0);
    }

    #[test]
    fn pct_change_signs() {
        assert!((pct_change(80.0, 100.0) + 20.0).abs() < 1e-12);
        assert!((pct_change(120.0, 100.0) - 20.0).abs() < 1e-12);
        assert!(pct_change(1.0, 0.0).is_nan());
    }

    #[test]
    fn strategy_sets() {
        assert_eq!(evaluated_strategies().len(), 4);
        let seven = single_pc_strategies(50, 2000.0);
        assert_eq!(seven.len(), 7);
        // Period = B / rate = 25ms.
        match &seven[5] {
            StrategyKind::Pbp { period } => {
                assert_eq!(*period, SimDuration::from_millis(25));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! Parallel deterministic sweep engine.
//!
//! Every experiment in this crate is a *sweep*: a grid of
//! (pairs, cores, buffer) points crossed with a strategy list, each
//! configuration replicated over consecutive seeds. The cells of that
//! grid are mutually independent simulations, so they can run on any
//! number of worker threads — but the *output must not depend on the
//! thread count*. The engine guarantees that by construction:
//!
//! * [`SweepSpec::cells`] expands the grid in a fixed, documented order
//!   (point-major, then strategy, then replicate);
//! * [`parallel_map`] hands cells to workers through an atomic cursor
//!   but stores every result in the slot of its *input* index, so the
//!   collected vector is identical whatever the completion order;
//! * each cell is a pure function of `(protocol, cell)` — the
//!   simulation itself is bit-deterministic per seed (see CLAUDE.md).
//!
//! The CI determinism gate runs the full suite with `--threads 4` and
//! `--threads 1` and byte-compares the JSON output; any wall-clock or
//! thread-count leakage into results is a build failure, not a footnote.

use crate::exp::Protocol;
use pc_core::{Experiment, RunMetrics, StrategyKind};
use pc_trace_events::{Recorder, TraceLog, DEFAULT_RECORDER_CAPACITY};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One (pairs, cores, buffer) grid point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct GridPoint {
    /// Producer-consumer pairs (the paper's M).
    pub pairs: usize,
    /// Cores available to the consumers.
    pub cores: usize,
    /// Per-consumer buffer capacity (the paper's B).
    pub buffer: usize,
}

/// A sweep: every strategy at every grid point, replicated.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Strategies to evaluate (inner loop of the expansion).
    pub strategies: Vec<StrategyKind>,
    /// Grid points to evaluate them at (outer loop).
    pub points: Vec<GridPoint>,
}

/// One independent unit of simulation work: a single replicate of a
/// single strategy at a single grid point.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Grid point it runs at.
    pub point: GridPoint,
    /// Replicate index; the seed is `base_seed + replicate`.
    pub replicate: usize,
}

impl SweepSpec {
    /// Expands the grid into cells in the engine's canonical order:
    /// point-major, then strategy, then replicate. Consumers regroup by
    /// walking the same loops (see [`run_grouped`]), so this order is a
    /// contract, not an implementation detail.
    pub fn cells(&self, replicates: usize) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.points.len() * self.strategies.len() * replicates);
        for &point in &self.points {
            for strategy in &self.strategies {
                for replicate in 0..replicates {
                    cells.push(CellSpec {
                        strategy: strategy.clone(),
                        point,
                        replicate,
                    });
                }
            }
        }
        cells
    }
}

/// Worker-thread count: `PC_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn threads_from_env() -> usize {
    std::env::var("PC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results in *input* order regardless of completion order.
///
/// Workers claim items through an atomic cursor (dynamic load balance —
/// sim cells vary widely in cost) and write each result into the slot
/// of the item that produced it. With `threads <= 1` the loop runs on
/// the calling thread; either way the output is identical as long as
/// `f` is pure.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let costs = vec![0u64; items.len()];
    parallel_map_costed(items, threads, &costs, f).0
}

/// Host-dependent telemetry from one [`parallel_map_costed`] dispatch.
/// Strictly `BENCH_*.json` sidecar material — wall-clock lives here and
/// must never reach a deterministic results file.
#[derive(Debug, Clone, Serialize)]
pub struct DispatchStats {
    /// Worker threads actually used (after clamping to the item count).
    pub threads: usize,
    /// Per-worker busy time (summed cell runtimes), milliseconds.
    pub worker_busy_ms: Vec<u64>,
    /// Per-item wall time in *input* order, milliseconds.
    pub cell_wall_ms: Vec<u64>,
}

impl DispatchStats {
    /// Share of the dispatch interval the workers spent busy:
    /// Σ busy / (threads × wall). 1.0 means no worker ever idled; a low
    /// value on a multi-thread run means stragglers serialised the tail.
    pub fn utilization(&self, wall_ms: u64) -> f64 {
        if wall_ms == 0 || self.threads == 0 {
            return 0.0;
        }
        let busy: u64 = self.worker_busy_ms.iter().sum();
        busy as f64 / (wall_ms as f64 * self.threads as f64)
    }
}

/// [`parallel_map`] with cost-aware dispatch: items are claimed in
/// descending `costs[i]` order (LPT — longest processing time first), so
/// an expensive cell starts immediately instead of being picked up last
/// and straggling the whole dispatch. Ties keep input order; results are
/// still written to input-index slots, so the output vector — and every
/// deterministic artifact downstream of it — is byte-identical to the
/// unweighted dispatch for any thread count. Cost estimates only shape
/// the *claim order* (and therefore wall-clock), never results.
pub fn parallel_map_costed<T, R, F>(
    items: &[T],
    threads: usize,
    costs: &[u64],
    f: F,
) -> (Vec<R>, DispatchStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert_eq!(items.len(), costs.len(), "one cost estimate per item");
    let threads = threads.clamp(1, items.len().max(1));
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));

    if threads == 1 {
        let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
        let mut cell_wall_ms = vec![0u64; items.len()];
        let mut busy_ns = 0u64;
        for &i in &order {
            let t0 = Instant::now();
            results[i] = Some(f(&items[i]));
            let elapsed = t0.elapsed();
            busy_ns += elapsed.as_nanos() as u64;
            cell_wall_ms[i] = elapsed.as_millis() as u64;
        }
        let stats = DispatchStats {
            threads: 1,
            worker_busy_ms: vec![busy_ns / 1_000_000],
            cell_wall_ms,
        };
        return (
            results
                .into_iter()
                .map(|r| r.expect("serial loop filled every slot"))
                .collect(),
            stats,
        );
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(R, u64)>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let mut worker_busy_ms = vec![0u64; threads];
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut busy_ns = 0u64;
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= order.len() {
                            break busy_ns;
                        }
                        let i = order[k];
                        let t0 = Instant::now();
                        let result = f(&items[i]);
                        let elapsed = t0.elapsed();
                        busy_ns += elapsed.as_nanos() as u64;
                        *slots[i].lock().expect("result slot poisoned") =
                            Some((result, elapsed.as_millis() as u64));
                    }
                })
            })
            .collect();
        for (w, handle) in workers.into_iter().enumerate() {
            worker_busy_ms[w] = handle.join().expect("worker panicked") / 1_000_000;
        }
    });
    let mut cell_wall_ms = vec![0u64; items.len()];
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let (result, wall) = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot");
            cell_wall_ms[i] = wall;
            result
        })
        .collect();
    (
        results,
        DispatchStats {
            threads,
            worker_busy_ms,
            cell_wall_ms,
        },
    )
}

/// One cell's `BENCH_*` sidecar row: host wall time plus the
/// *deterministic* scheduler operation counters from the run (the
/// counters are a pure function of `(seed, config)`; only `wall_ms` is
/// host-dependent). `compactions` staying 0 across every cell is the
/// recorded proof that the timer wheel retired the old heap's
/// tombstone-compaction path.
#[derive(Debug, Clone, Serialize)]
pub struct CellTiming {
    /// Cell label (strategy, geometry, seed).
    pub cell: String,
    /// Host wall time of this cell, milliseconds.
    pub wall_ms: u64,
    /// Event-scheduler operation counters (DESIGN.md §13).
    pub scheduler: pc_sim::QueueStats,
}

/// Relative cost estimate of one sweep cell: simulated duration × M.
/// Event volume scales with both, so this ranks an m1000 cell far above
/// an m10 cell and equal-M cells equally — exactly the granularity the
/// LPT dispatch needs.
pub fn cell_cost(cell: &CellSpec, duration: pc_sim::SimDuration) -> u64 {
    duration.as_nanos().saturating_mul(cell.point.pairs as u64)
}

/// Runs one cell: a pure function of the protocol and the cell spec.
pub fn run_cell(protocol: &Protocol, cell: &CellSpec) -> RunMetrics {
    Experiment::builder()
        .pairs(cell.point.pairs)
        .cores(cell.point.cores)
        .duration(protocol.duration)
        .strategy(cell.strategy.clone())
        .trace(protocol.trace.clone())
        .seed(protocol.base_seed + cell.replicate as u64)
        .buffer_capacity(cell.point.buffer)
        .run()
}

/// Runs `cells` on `threads` workers; results in cell order.
pub fn execute(protocol: &Protocol, cells: &[CellSpec], threads: usize) -> Vec<RunMetrics> {
    execute_costed(protocol, cells, threads).0
}

/// [`execute`] with cost-aware (LPT) dispatch and timing telemetry.
/// Results are byte-identical to [`execute`]'s; the [`DispatchStats`]
/// are sidecar-only.
pub fn execute_costed(
    protocol: &Protocol,
    cells: &[CellSpec],
    threads: usize,
) -> (Vec<RunMetrics>, DispatchStats) {
    let costs: Vec<u64> = cells
        .iter()
        .map(|cell| cell_cost(cell, protocol.duration))
        .collect();
    parallel_map_costed(cells, threads, &costs, |cell| run_cell(protocol, cell))
}

/// Per-cell recorder bound for traced runs: `PC_TRACE_CAP` if set to a
/// positive integer, else [`DEFAULT_RECORDER_CAPACITY`].
pub fn trace_capacity_from_env() -> usize {
    std::env::var("PC_TRACE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(DEFAULT_RECORDER_CAPACITY)
}

/// Runs one cell with an event recorder attached and returns the metrics
/// together with the recording. Recording is purely observational: the
/// metrics are bit-identical to [`run_cell`]'s, which is what lets the
/// suite keep `results/suite.json` byte-stable under `--trace`.
pub fn run_cell_traced(protocol: &Protocol, cell: &CellSpec) -> (RunMetrics, TraceLog) {
    let recorder = Recorder::bounded(trace_capacity_from_env());
    let metrics = Experiment::builder()
        .pairs(cell.point.pairs)
        .cores(cell.point.cores)
        .duration(protocol.duration)
        .strategy(cell.strategy.clone())
        .trace(protocol.trace.clone())
        .seed(protocol.base_seed + cell.replicate as u64)
        .buffer_capacity(cell.point.buffer)
        .record_events(recorder.handle())
        .run();
    (metrics, recorder.take())
}

/// Traced variant of [`execute`]: each cell records into its own bounded
/// recorder, so traces are per-cell deterministic whatever the thread
/// count.
pub fn execute_traced(
    protocol: &Protocol,
    cells: &[CellSpec],
    threads: usize,
) -> Vec<(RunMetrics, TraceLog)> {
    execute_traced_costed(protocol, cells, threads).0
}

/// [`execute_traced`] with cost-aware (LPT) dispatch and timing
/// telemetry.
pub fn execute_traced_costed(
    protocol: &Protocol,
    cells: &[CellSpec],
    threads: usize,
) -> (Vec<(RunMetrics, TraceLog)>, DispatchStats) {
    let costs: Vec<u64> = cells
        .iter()
        .map(|cell| cell_cost(cell, protocol.duration))
        .collect();
    parallel_map_costed(cells, threads, &costs, |cell| {
        run_cell_traced(protocol, cell)
    })
}

/// Runs a whole spec and regroups the flat cell results back into
/// `[point][strategy] -> replicate runs`, mirroring [`SweepSpec::cells`].
pub fn run_grouped(protocol: &Protocol, spec: &SweepSpec) -> Vec<Vec<Vec<RunMetrics>>> {
    let cells = spec.cells(protocol.replicates);
    let mut flat = execute(protocol, &cells, protocol.threads).into_iter();
    spec.points
        .iter()
        .map(|_| {
            spec.strategies
                .iter()
                .map(|_| {
                    (0..protocol.replicates)
                        .map(|_| flat.next().expect("cell count matches expansion"))
                        .collect()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_sim::SimDuration;
    use pc_trace::WorldCupConfig;

    fn tiny_protocol(threads: usize) -> Protocol {
        Protocol {
            duration: SimDuration::from_millis(40),
            replicates: 2,
            base_seed: 7,
            trace: WorldCupConfig::quick_test(),
            threads,
        }
    }

    #[test]
    fn expansion_order_is_point_major_then_strategy_then_replicate() {
        let spec = SweepSpec {
            strategies: vec![StrategyKind::Mutex, StrategyKind::Bp],
            points: vec![
                GridPoint {
                    pairs: 1,
                    cores: 1,
                    buffer: 25,
                },
                GridPoint {
                    pairs: 5,
                    cores: 2,
                    buffer: 50,
                },
            ],
        };
        let cells = spec.cells(3);
        assert_eq!(cells.len(), 2 * 2 * 3);
        let key: Vec<(usize, &str, usize)> = cells
            .iter()
            .map(|c| (c.point.pairs, c.strategy.name(), c.replicate))
            .collect();
        assert_eq!(
            key,
            vec![
                (1, "Mutex", 0),
                (1, "Mutex", 1),
                (1, "Mutex", 2),
                (1, "BP", 0),
                (1, "BP", 1),
                (1, "BP", 2),
                (5, "Mutex", 0),
                (5, "Mutex", 1),
                (5, "Mutex", 2),
                (5, "BP", 0),
                (5, "BP", 1),
                (5, "BP", 2),
            ]
        );
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        // Degenerate shapes.
        assert!(parallel_map(&Vec::<usize>::new(), 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41usize], 16, |&x| x + 1), vec![42]);
    }

    #[test]
    fn thread_count_does_not_change_energy_bits() {
        let spec = SweepSpec {
            strategies: vec![StrategyKind::Mutex, StrategyKind::pbpl_default()],
            points: vec![GridPoint {
                pairs: 2,
                cores: 2,
                buffer: 25,
            }],
        };
        let serial = run_grouped(&tiny_protocol(1), &spec);
        let parallel = run_grouped(&tiny_protocol(4), &spec);
        for (point_s, point_p) in serial.iter().zip(&parallel) {
            for (runs_s, runs_p) in point_s.iter().zip(point_p) {
                for (a, b) in runs_s.iter().zip(runs_p) {
                    assert_eq!(a.energy.energy_j.to_bits(), b.energy.energy_j.to_bits());
                    assert_eq!(a.items_consumed, b.items_consumed);
                    assert_eq!(a.slot_fires, b.slot_fires);
                }
            }
        }
    }

    #[test]
    fn protocol_run_goes_through_the_engine_unchanged() {
        // Protocol::run is now a one-point, one-strategy sweep; its
        // results must match running the cell directly.
        let p = tiny_protocol(2);
        let runs = p.run(StrategyKind::Bp, 2, 2, 25);
        assert_eq!(runs.len(), 2);
        let direct = run_cell(
            &p,
            &CellSpec {
                strategy: StrategyKind::Bp,
                point: GridPoint {
                    pairs: 2,
                    cores: 2,
                    buffer: 25,
                },
                replicate: 1,
            },
        );
        assert_eq!(
            runs[1].energy.energy_j.to_bits(),
            direct.energy.energy_j.to_bits()
        );
    }
}

//! Reproduction self-check: every paper claim this repository reproduces,
//! asserted programmatically. Exits non-zero if any claim fails — the
//! one-command answer to "does the reproduction still hold?".
//!
//! Uses shorter runs than the figure runners (override with
//! `PC_DURATION_MS`); claims are *shape* assertions (orderings, trends,
//! signs), which are stable well below the full 50 s protocol.

use pc_bench::exp::{evaluated_strategies, Protocol, Row};
use pc_core::{PbplConfig, StrategyKind};
use pc_sim::SimDuration;
use pc_stats::{correlation_significance, pearson, ConfidenceLevel};

struct Checker {
    passed: u32,
    failed: u32,
}

impl Checker {
    fn check(&mut self, claim: &str, ok: bool, detail: String) {
        if ok {
            self.passed += 1;
            println!("PASS  {claim}  [{detail}]");
        } else {
            self.failed += 1;
            println!("FAIL  {claim}  [{detail}]");
        }
    }
}

fn main() {
    let mut protocol = Protocol::from_env();
    // Default to a faster horizon than the figure runners; the claims
    // below are orderings, stable at 10 s.
    if std::env::var("PC_DURATION_MS").is_err() {
        protocol.duration = SimDuration::from_secs(10);
    }
    let mut c = Checker {
        passed: 0,
        failed: 0,
    };

    // ---- §III: single-pair power profile --------------------------------
    let mean_rate = protocol.trace.mean_rate;
    let period = SimDuration::from_secs_f64(50.0 / mean_rate);
    let single = |s: StrategyKind| Row::from_runs(&protocol.run(s, 1, 1, 50));
    let bw = single(StrategyKind::BusyWait);
    let yld = single(StrategyKind::Yield);
    let mutex1 = single(StrategyKind::Mutex);
    let sem1 = single(StrategyKind::Sem);
    let bp1 = single(StrategyKind::Bp);
    let pbp1 = single(StrategyKind::Pbp { period });
    let spbp1 = single(StrategyKind::Spbp { period });

    c.check(
        "§III: busy-waiting is the power disaster",
        bw.power_mw.mean > 5.0 * mutex1.power_mw.mean,
        format!(
            "BW {:.0} mW vs Mutex {:.0} mW",
            bw.power_mw.mean, mutex1.power_mw.mean
        ),
    );
    c.check(
        "§III: Yield draws slightly less than BW (DVFS)",
        yld.power_mw.mean < bw.power_mw.mean,
        format!("{:.0} < {:.0} mW", yld.power_mw.mean, bw.power_mw.mean),
    );
    c.check(
        "§III: batchers beat the item-driven implementations",
        bp1.power_mw.mean < mutex1.power_mw.mean
            && pbp1.power_mw.mean < mutex1.power_mw.mean
            && spbp1.power_mw.mean < mutex1.power_mw.mean,
        format!(
            "BP {:.0} / PBP {:.0} / SPBP {:.0} vs Mutex {:.0} mW",
            bp1.power_mw.mean, pbp1.power_mw.mean, spbp1.power_mw.mean, mutex1.power_mw.mean
        ),
    );
    c.check(
        "§III: batch processing cuts ≥33% vs Mutex (paper's headline)",
        bp1.power_mw.mean < 0.67 * mutex1.power_mw.mean,
        format!(
            "{:+.1}%",
            (bp1.power_mw.mean / mutex1.power_mw.mean - 1.0) * 100.0
        ),
    );
    c.check(
        "§III: Sem is marginally cheaper than Mutex",
        sem1.power_mw.mean <= mutex1.power_mw.mean,
        format!("{:.1} ≤ {:.1} mW", sem1.power_mw.mean, mutex1.power_mw.mean),
    );

    // ---- §III-C: correlations -------------------------------------------
    let idle5 = [&mutex1, &sem1, &bp1, &pbp1, &spbp1];
    let wk: Vec<f64> = idle5
        .iter()
        .flat_map(|r| r.wakeups_per_sec.samples.iter().copied())
        .collect();
    let pw: Vec<f64> = idle5
        .iter()
        .flat_map(|r| r.power_mw.samples.iter().copied())
        .collect();
    let r5 = pearson(&wk, &pw);
    c.check(
        "§III-C: wakeups↔power strongly positive among the idle-based five",
        r5 > 0.5,
        format!("r = {r5:+.3} (paper +0.74)"),
    );
    let sig = correlation_significance(&wk, &pw, ConfidenceLevel::P99)
        .map(|t| t.significant)
        .unwrap_or(false);
    c.check(
        "§III-C: wakeup effect significant at 99%",
        sig,
        format!("n = {}", wk.len()),
    );

    // ---- §VI: Figure 9 configuration -------------------------------------
    let rows: Vec<Row> = evaluated_strategies()
        .into_iter()
        .map(|s| Row::from_runs(&protocol.run(s, 5, 2, 25)))
        .collect();
    let by = |n: &str| rows.iter().find(|r| r.name == n).expect("row");
    let (mutex, sem, bp, pbpl) = (by("Mutex"), by("Sem"), by("BP"), by("PBPL"));

    c.check(
        "Fig 9: PBPL has the lowest power of the four",
        pbpl.power_mw.mean < bp.power_mw.mean
            && pbpl.power_mw.mean < sem.power_mw.mean
            && pbpl.power_mw.mean < mutex.power_mw.mean,
        format!(
            "PBPL {:.0} / BP {:.0} / Sem {:.0} / Mutex {:.0} mW",
            pbpl.power_mw.mean, bp.power_mw.mean, sem.power_mw.mean, mutex.power_mw.mean
        ),
    );
    c.check(
        "Fig 9: PBPL has the fewest wakeups of the four",
        pbpl.wakeups_per_sec.mean < bp.wakeups_per_sec.mean
            && pbpl.wakeups_per_sec.mean < mutex.wakeups_per_sec.mean,
        format!(
            "PBPL {:.0} / BP {:.0} / Mutex {:.0} wk/s",
            pbpl.wakeups_per_sec.mean, bp.wakeups_per_sec.mean, mutex.wakeups_per_sec.mean
        ),
    );
    c.check(
        "Fig 9: PBPL cuts ≥20% power vs Mutex (paper: −20%)",
        pbpl.power_mw.mean < 0.8 * mutex.power_mw.mean,
        format!(
            "{:+.1}%",
            (pbpl.power_mw.mean / mutex.power_mw.mean - 1.0) * 100.0
        ),
    );
    c.check(
        "§VI-C: PBPL converts a large share of BP's overflows into scheduled wakeups",
        pbpl.overflows.mean < 0.75 * bp.overflows.mean,
        format!("{:.0} vs {:.0}", pbpl.overflows.mean, bp.overflows.mean),
    );

    // ---- Fig 10: scalability trend ---------------------------------------
    let gap = |pairs: usize| {
        let m = Row::from_runs(&protocol.run(StrategyKind::Mutex, pairs, 2, 25));
        let p = Row::from_runs(&protocol.run(StrategyKind::pbpl_default(), pairs, 2, 25));
        p.power_mw.mean / m.power_mw.mean
    };
    let (g2, g10) = (gap(2), gap(10));
    c.check(
        "Fig 10: PBPL's advantage over Mutex widens with the consumer count",
        g10 < g2,
        format!("PBPL/Mutex power ratio {:.2} @ M=2 → {:.2} @ M=10", g2, g10),
    );

    // ---- Fig 11: buffer-size trend ----------------------------------------
    let pair_at = |b: usize| {
        let bp = Row::from_runs(&protocol.run(StrategyKind::Bp, 5, 2, b));
        let pb = Row::from_runs(&protocol.run(StrategyKind::pbpl_default(), 5, 2, b));
        (bp.power_mw.mean, pb.power_mw.mean)
    };
    let (bp25, pb25) = pair_at(25);
    let (bp100, pb100) = pair_at(100);
    c.check(
        "Fig 11: power drops with buffer size for both BP and PBPL",
        bp100 < bp25 && pb100 < pb25,
        format!("BP {bp25:.0}→{bp100:.0} mW, PBPL {pb25:.0}→{pb100:.0} mW"),
    );
    c.check(
        "Fig 11: the BP↔PBPL gap narrows with buffer size",
        (bp100 - pb100).abs() < (bp25 - pb25).abs(),
        format!(
            "gap {:.1} mW @ B=25 → {:.1} mW @ B=100",
            bp25 - pb25,
            bp100 - pb100
        ),
    );

    // ---- §V mechanisms (ablation) ------------------------------------------
    let no_latch = Row::from_runs(&protocol.run(
        StrategyKind::Pbpl(PbplConfig {
            latching: false,
            ..PbplConfig::default()
        }),
        5,
        2,
        25,
    ));
    c.check(
        "§V-A: disabling group latching costs power",
        no_latch.power_mw.mean > pbpl.power_mw.mean,
        format!(
            "{:.0} > {:.0} mW",
            no_latch.power_mw.mean, pbpl.power_mw.mean
        ),
    );

    println!("\n{} claims passed, {} failed", c.passed, c.failed);
    if c.failed > 0 {
        std::process::exit(1);
    }
}

//! Wakeup time series — how each implementation rides the workload's
//! rate swings (our extension; the paper reports only run-wide means).
//!
//! PowerTop-style 1-second sampling windows over one run: the item-driven
//! implementations' wakeups track the arrival rate almost linearly, BP
//! tracks it at 1/B, and PBPL flattens it further by latching — the
//! flatter the series, the fewer the idle-state transitions.

use pc_bench::exp::{save_json, Protocol};
use pc_core::{Experiment, StrategyKind};
use pc_power::{Meter, MeterSample};
use pc_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    strategy: String,
    wakeups_per_sec: Vec<f64>,
    usage_ms_per_sec: Vec<f64>,
}

fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

fn main() {
    let protocol = Protocol::from_env();
    let meter = Meter::new(SimDuration::from_secs(1));
    let mut all = Vec::new();

    println!("=== per-second wakeups across the run (1 window = 1 s) ===\n");
    for strategy in [
        StrategyKind::Mutex,
        StrategyKind::Bp,
        StrategyKind::pbpl_default(),
    ] {
        let m = Experiment::builder()
            .pairs(5)
            .cores(2)
            .duration(protocol.duration)
            .strategy(strategy)
            .trace(protocol.trace.clone())
            .seed(protocol.base_seed)
            .buffer_capacity(25)
            .run();
        // Sum the per-window series across cores.
        let per_core: Vec<Vec<MeterSample>> =
            m.core_reports.iter().map(|r| meter.sample(r)).collect();
        let windows = per_core.iter().map(|s| s.len()).min().unwrap_or(0);
        let mut wakeups = vec![0.0; windows];
        let mut usage = vec![0.0; windows];
        for series in &per_core {
            for (i, s) in series.iter().take(windows).enumerate() {
                wakeups[i] += s.wakeups_per_sec;
                usage[i] += s.usage_ms_per_sec;
            }
        }
        let mean = wakeups.iter().sum::<f64>() / windows.max(1) as f64;
        let peak = wakeups.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:>6}  mean {:>6.0} wk/s  peak {:>6.0} wk/s",
            m.strategy, mean, peak
        );
        println!("        {}", sparkline(&wakeups));
        all.push(Series {
            strategy: m.strategy.clone(),
            wakeups_per_sec: wakeups,
            usage_ms_per_sec: usage,
        });
    }

    // Flatness comparison: coefficient of variation of the series.
    println!("\n--- series flatness (std/mean of per-second wakeups; lower = steadier idle) ---");
    for s in &all {
        let n = s.wakeups_per_sec.len() as f64;
        let mean = s.wakeups_per_sec.iter().sum::<f64>() / n;
        let var = s
            .wakeups_per_sec
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        println!("{:>6}: cv = {:.2}", s.strategy, var.sqrt() / mean);
    }

    save_json("timeseries", &all);
}

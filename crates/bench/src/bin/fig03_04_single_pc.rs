//! Figures 3 & 4 — the single producer-consumer power profile (§III).
//!
//! Seven implementations, one pair, web-log-like workload: wakeups/s and
//! usage (ms/s) side by side (Fig. 3) and power on a log scale (Fig. 4).
//! The §III headline claims this reproduces:
//!
//! * BW burns the CPU: usage ≈ 1000 ms/s, power far above everything.
//! * Yield draws slightly less than BW (DVFS).
//! * Among the five idle-based implementations, the batchers (BP, PBP,
//!   SPBP) use the least power; batch processing cuts up to ~80% vs BW
//!   and ~33% vs Mutex.
//! * PBP wakes more than SPBP (nanosleep jitter → overflows).

use pc_bench::exp::{
    pct_change, print_header, print_row, row, save_json, single_pc_strategies, Protocol, Row,
};
use pc_bench::sweep::{run_grouped, GridPoint, SweepSpec};
use pc_core::StrategyKind;
use pc_sim::SimDuration;

fn main() {
    let protocol = Protocol::from_env();
    let buffer = 50;
    let mean_rate = protocol.trace.mean_rate;
    let point = GridPoint {
        pairs: 1,
        cores: 1,
        buffer,
    };

    let spec = SweepSpec {
        strategies: single_pc_strategies(buffer, mean_rate),
        points: vec![point],
    };
    let rows: Vec<Row> = run_grouped(&protocol, &spec)
        .remove(0)
        .iter()
        .map(|runs| Row::from_runs(runs))
        .collect();

    print_header("Figure 3 — wakeups/s and usage (ms/s), single pair, 7 implementations");
    for r in &rows {
        print_row(r);
    }

    println!("\n=== Figure 4 — power (mW over idle baseline, log-scale in the paper) ===");
    for r in &rows {
        println!("{:>6}: {:>10.1} mW", r.name, r.power_mw.mean);
    }

    let by_name = |n: &str| row(&rows, n);
    let bw = by_name("BW").power_mw.mean;
    let yld = by_name("Yield").power_mw.mean;
    let mutex = by_name("Mutex").power_mw.mean;
    let sem = by_name("Sem").power_mw.mean;
    let batch_best = ["BP", "PBP", "SPBP"]
        .iter()
        .map(|n| by_name(n).power_mw.mean)
        .fold(f64::INFINITY, f64::min);

    println!("\n--- §III headline comparisons (paper: batch ≈ −80% vs BW, ≈ −33% vs Mutex) ---");
    println!("Yield vs BW power:        {:+.1}%", pct_change(yld, bw));
    println!(
        "best batcher vs BW:       {:+.1}%",
        pct_change(batch_best, bw)
    );
    println!(
        "best batcher vs Mutex:    {:+.1}%",
        pct_change(batch_best, mutex)
    );
    println!("Sem vs Mutex power:       {:+.1}%", pct_change(sem, mutex));
    println!(
        "PBP vs SPBP overflows:    {:.0} vs {:.0}",
        by_name("PBP").overflows.mean,
        by_name("SPBP").overflows.mean
    );

    // §III-C's jitter mechanism ("the jitter associated with sleep()
    // causes more buffer overflows and thus, more wakeups") needs the
    // period to be comparable to the jitter to bite. The paper ran a
    // 100 µs period against its fast log replay; the equivalent sweep
    // here tightens the period toward the ~2 ms nanosleep jitter scale.
    println!("\n--- PBP vs SPBP as the period tightens toward the jitter scale ---");
    println!(
        "{:>9} | {:>22} | {:>22}",
        "period", "PBP ovfl / wk/s", "SPBP ovfl / wk/s"
    );
    let periods = [27u64, 9, 3];
    let jitter_spec = SweepSpec {
        strategies: periods
            .iter()
            .flat_map(|&ms| {
                let period = SimDuration::from_millis(ms);
                [StrategyKind::Pbp { period }, StrategyKind::Spbp { period }]
            })
            .collect(),
        points: vec![point],
    };
    let jitter_runs = run_grouped(&protocol, &jitter_spec).remove(0);

    let mut jitter_sweep = Vec::new();
    for (i, &period_ms) in periods.iter().enumerate() {
        let pbp = Row::from_runs(&jitter_runs[2 * i]);
        let spbp = Row::from_runs(&jitter_runs[2 * i + 1]);
        println!(
            "{:>6} ms | {:>10.0} / {:>9.1} | {:>10.0} / {:>9.1}",
            period_ms,
            pbp.overflows.mean,
            pbp.wakeups_per_sec.mean,
            spbp.overflows.mean,
            spbp.wakeups_per_sec.mean
        );
        jitter_sweep.push((period_ms, pbp, spbp));
    }

    save_json("fig03_04_single_pc", &rows);
    save_json("fig03_jitter_sweep", &jitter_sweep);
}

//! §VI-C wakeup accounting — the scheduled/overflow split.
//!
//! Paper (M = 5, B = 50, 50 s): "On average, PBPL scores 5160 scheduled
//! wakeups, and 1626 buffer overflows. In comparison, BP scores 9290
//! buffer overflows. This amounts to a 25% decrease in total wakeups, and
//! an overflow conversion percentage of 82.5%." (Conversion = the share
//! of BP's overflows that PBPL avoided: 1 − 1626/9290.)

use pc_bench::exp::{save_json, Protocol, Row};
use pc_bench::sweep::{run_grouped, GridPoint, SweepSpec};
use pc_core::StrategyKind;
use serde::Serialize;

#[derive(Serialize)]
struct OverflowReport {
    bp_overflows: f64,
    pbpl_scheduled: f64,
    pbpl_overflows: f64,
    total_wakeup_change_pct: f64,
    overflow_conversion_pct: f64,
    rows: Vec<Row>,
}

fn main() {
    let protocol = Protocol::from_env();
    let (pairs, cores, buffer) = (5, 2, 50);

    let spec = SweepSpec {
        strategies: vec![StrategyKind::Bp, StrategyKind::pbpl_default()],
        points: vec![GridPoint {
            pairs,
            cores,
            buffer,
        }],
    };
    let mut by_strategy = run_grouped(&protocol, &spec).remove(0);
    let pbpl_runs = by_strategy.remove(1);
    let bp_runs = by_strategy.remove(0);
    let bp = Row::from_runs(&bp_runs);
    let pbpl = Row::from_runs(&pbpl_runs);

    let bp_over = bp.overflows.mean;
    // The paper's "scheduled wakeups" count CPU wakeups the core manager
    // dispatches — one slot fire can serve a whole latch group, so this
    // is below the per-consumer invocation count.
    let sched = pbpl_runs.iter().map(|m| m.slot_fires as f64).sum::<f64>() / pbpl_runs.len() as f64;
    let over = pbpl.overflows.mean;
    let total_change = (sched + over - bp_over) / bp_over * 100.0;
    let conversion = (1.0 - over / bp_over) * 100.0;

    println!("=== §VI-C wakeup accounting (M = 5, B = 50) ===");
    println!("BP   buffer overflows:        {bp_over:>10.0}   (paper: 9290)");
    println!("PBPL scheduled wakeups:       {sched:>10.0}   (paper: 5160)");
    println!("PBPL buffer overflows:        {over:>10.0}   (paper: 1626)");
    println!("total wakeup change vs BP:    {total_change:>+9.1}%   (paper: −25%)");
    println!("overflow conversion:          {conversion:>9.1}%   (paper: 82.5%)");
    println!(
        "PBPL scheduled invocations:   {:>10.0}   (consumer drains served by those fires)",
        pbpl.scheduled.mean
    );
    println!(
        "\ncore-level wakeups/s:  BP {:.1}  vs  PBPL {:.1} (grouping makes invocations cheaper than wakeups)",
        bp.wakeups_per_sec.mean, pbpl.wakeups_per_sec.mean
    );

    save_json(
        "table_overflows",
        &OverflowReport {
            bp_overflows: bp_over,
            pbpl_scheduled: sched,
            pbpl_overflows: over,
            total_wakeup_change_pct: total_change,
            overflow_conversion_pct: conversion,
            rows: vec![bp, pbpl],
        },
    );
}

//! Ad-hoc diagnostic probe used while calibrating the simulator.
//! Prints the full metric set for each strategy on a shared workload.

use pc_core::{Experiment, PbplConfig, StrategyKind};
use pc_sim::SimDuration;
use pc_trace::WorldCupConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let duration_ms: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let pairs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let cap: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(25);
    let slot_ms: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(10);
    let lat_ms: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(20);
    let margin: f64 = args.get(6).and_then(|s| s.parse().ok()).unwrap_or(1.15);
    let hist: usize = args.get(7).and_then(|s| s.parse().ok()).unwrap_or(8);
    let pbpl = StrategyKind::Pbpl(PbplConfig {
        slot: SimDuration::from_millis(slot_ms),
        max_latency: SimDuration::from_millis(lat_ms),
        resize_margin: margin,
        predictor: pc_core::PredictorKind::MovingAverage { history: hist },
        ..PbplConfig::default()
    });

    let strategies = vec![
        StrategyKind::BusyWait,
        StrategyKind::Yield,
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::Pbp {
            period: SimDuration::from_micros(100),
        },
        StrategyKind::Spbp {
            period: SimDuration::from_micros(100),
        },
        pbpl,
    ];

    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "strat",
        "power_mW",
        "wk/s",
        "usage",
        "items",
        "invoc",
        "sched",
        "ovfl",
        "item_wk",
        "mean_cap",
        "lat_us"
    );
    for s in strategies {
        let m = Experiment::builder()
            .pairs(pairs)
            .cores(2)
            .duration(SimDuration::from_millis(duration_ms))
            .strategy(s.clone())
            .trace(WorldCupConfig::paper_default())
            .seed(3)
            .buffer_capacity(cap)
            .run();
        let invoc: u64 = m.pairs.iter().map(|p| p.invocations).sum();
        let item_wk: u64 = m.pairs.iter().map(|p| p.item_wakeups).sum();
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.2} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9.1} {:>9.0}",
            m.strategy,
            m.extra_power_mw(),
            m.wakeups_per_sec(),
            m.usage_ms_per_sec(),
            m.items_consumed,
            invoc,
            m.scheduled_wakeups(),
            m.overflow_wakeups(),
            item_wk,
            m.mean_capacity(),
            m.mean_latency().as_secs_f64() * 1e6,
        );
    }
}

//! Offline replay of an exported trace: re-derives every invariant and
//! re-computes every digest from the JSONL file alone.
//!
//! ```text
//! cargo run --release -p pc-bench --bin trace_report -- [FILE]
//! ```
//!
//! `FILE` defaults to `results/suite_trace.jsonl` (what `suite --trace`
//! writes). For each cell the report parses the `CellMeta` header and
//! the event lines that follow (via the shared `pc_bench::replay`
//! parser), then checks that
//!
//! * the recorded event count and FNV digest match the header (drift or
//!   tampering between export and replay is caught, not assumed away),
//! * the replay oracle (`pc_bench::oracle`) finds no invariant
//!   violations.
//!
//! Exits non-zero on any parse error, mismatch or violation, which is
//! what lets CI treat an exported artifact as self-verifying. To
//! re-*execute* the cells instead of verifying the recording, see the
//! `replay` binary (DESIGN.md §12).

use pc_bench::oracle;
use pc_bench::replay::parse_export_file;
use pc_trace_events::digest;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/suite_trace.jsonl".to_string());
    if path == "--help" || path == "-h" {
        println!(
            "usage: trace_report [FILE]\n\
             \n\
             Replays the JSONL trace export FILE (default\n\
             results/suite_trace.jsonl): per cell, recomputes the event\n\
             count and FNV digest against the CellMeta header and runs\n\
             the replay oracle. Non-zero exit on any mismatch."
        );
        return;
    }

    let cells = parse_export_file(&path).unwrap_or_else(|e| {
        eprintln!("trace_report: {e}");
        std::process::exit(2);
    });

    let mut failures = 0u64;
    let mut total_events = 0u64;
    for cell in &cells {
        let label = cell.meta.label();
        total_events += cell.events.len() as u64;
        let mut problems: Vec<String> = Vec::new();

        if cell.events.len() as u64 != cell.meta.events {
            problems.push(format!(
                "event count {} != header {}",
                cell.events.len(),
                cell.meta.events
            ));
        }
        let recomputed = digest(&cell.events);
        if recomputed != cell.meta.digest {
            problems.push(format!(
                "digest {recomputed:016x} != header {:016x}",
                cell.meta.digest
            ));
        }
        let report = oracle::check(&cell.log());
        problems.extend(report.violations);

        if problems.is_empty() {
            println!("ok   {label}: {} events", cell.events.len());
        } else {
            failures += problems.len() as u64;
            for p in &problems {
                println!("FAIL {label}: {p}");
            }
        }
    }

    println!(
        "trace_report: {} cell(s), {} event(s), {} failure(s)",
        cells.len(),
        total_events,
        failures
    );
    if failures > 0 || cells.is_empty() {
        if cells.is_empty() {
            eprintln!("trace_report: no cells in {path}");
        }
        std::process::exit(1);
    }
}

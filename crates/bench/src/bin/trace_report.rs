//! Offline replay of an exported trace: re-derives every invariant and
//! re-computes every digest from the JSONL file alone.
//!
//! ```text
//! cargo run --release -p pc-bench --bin trace_report -- [FILE]
//! ```
//!
//! `FILE` defaults to `results/suite_trace.jsonl` (what `suite --trace`
//! writes). For each cell the report parses the `CellMeta` header and
//! the event lines that follow, then checks that
//!
//! * the recorded event count and FNV digest match the header (drift or
//!   tampering between export and replay is caught, not assumed away),
//! * the replay oracle (`pc_bench::oracle`) finds no invariant
//!   violations.
//!
//! Exits non-zero on any parse error, mismatch or violation, which is
//! what lets CI treat an exported artifact as self-verifying.

use pc_bench::oracle::{self, CellMeta, TraceLine};
use pc_trace_events::{digest, Event, TraceLog, TRACE_SCHEMA_VERSION};
use std::io::{BufRead, BufReader};

/// One cell reassembled from the JSONL stream.
struct CellTrace {
    meta: CellMeta,
    events: Vec<Event>,
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/suite_trace.jsonl".to_string());
    if path == "--help" || path == "-h" {
        println!(
            "usage: trace_report [FILE]\n\
             \n\
             Replays the JSONL trace export FILE (default\n\
             results/suite_trace.jsonl): per cell, recomputes the event\n\
             count and FNV digest against the CellMeta header and runs\n\
             the replay oracle. Non-zero exit on any mismatch."
        );
        return;
    }

    let file = std::fs::File::open(&path).unwrap_or_else(|e| {
        eprintln!("trace_report: cannot open {path}: {e}");
        std::process::exit(2);
    });

    let mut cells: Vec<CellTrace> = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("trace_report: {path}:{}: read error: {e}", lineno + 1);
            std::process::exit(2);
        });
        if line.trim().is_empty() {
            continue;
        }
        match oracle::line_from_json(&line) {
            Ok(TraceLine::Cell(meta)) => cells.push(CellTrace {
                meta,
                events: Vec::new(),
            }),
            Ok(TraceLine::Ev(ev)) => match cells.last_mut() {
                Some(cell) => cell.events.push(ev),
                None => {
                    eprintln!(
                        "trace_report: {path}:{}: event before any cell header",
                        lineno + 1
                    );
                    std::process::exit(2);
                }
            },
            Err(e) => {
                eprintln!("trace_report: {path}:{}: bad line: {e}", lineno + 1);
                std::process::exit(2);
            }
        }
    }

    let mut failures = 0u64;
    let mut total_events = 0u64;
    for cell in &cells {
        let label = format!(
            "{} {} M={} B={} seed={}",
            cell.meta.experiment,
            cell.meta.strategy,
            cell.meta.pairs,
            cell.meta.buffer,
            cell.meta.seed
        );
        total_events += cell.events.len() as u64;
        let mut problems: Vec<String> = Vec::new();

        if cell.events.len() as u64 != cell.meta.events {
            problems.push(format!(
                "event count {} != header {}",
                cell.events.len(),
                cell.meta.events
            ));
        }
        let recomputed = digest(&cell.events);
        if recomputed != cell.meta.digest {
            problems.push(format!(
                "digest {recomputed:016x} != header {:016x}",
                cell.meta.digest
            ));
        }
        let report = oracle::check(&TraceLog {
            schema_version: TRACE_SCHEMA_VERSION,
            events: cell.events.clone(),
            dropped: cell.meta.dropped,
        });
        problems.extend(report.violations);

        if problems.is_empty() {
            println!("ok   {label}: {} events", cell.events.len());
        } else {
            failures += problems.len() as u64;
            for p in &problems {
                println!("FAIL {label}: {p}");
            }
        }
    }

    println!(
        "trace_report: {} cell(s), {} event(s), {} failure(s)",
        cells.len(),
        total_events,
        failures
    );
    if failures > 0 || cells.is_empty() {
        if cells.is_empty() {
            eprintln!("trace_report: no cells in {path}");
        }
        std::process::exit(1);
    }
}

//! Figure 10 — power and wakeups/s as the number of consumers grows
//! (M ∈ {2, 5, 10}, B = 25), for Mutex, Sem, BP and PBPL (§VI-C).
//!
//! Paper claims: power rises consistently with M for every
//! implementation; the gap between PBPL and the rest *widens* with M
//! (improvement over Mutex: 7.5%, 20%, 30% at M = 2, 5, 10) because more
//! consumers mean more latching opportunities.

use pc_bench::exp::{
    evaluated_strategies, pct_change, print_header, print_row, row, save_json, Protocol, Row,
};
use pc_bench::sweep::{run_grouped, GridPoint, SweepSpec};
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    consumers: usize,
    rows: Vec<Row>,
}

fn main() {
    let protocol = Protocol::from_env();
    let (cores, buffer) = (2, 25);
    let consumer_counts = [2usize, 5, 10];

    let spec = SweepSpec {
        strategies: evaluated_strategies(),
        points: consumer_counts
            .iter()
            .map(|&pairs| GridPoint {
                pairs,
                cores,
                buffer,
            })
            .collect(),
    };
    let grouped = run_grouped(&protocol, &spec);

    let mut sweep = Vec::new();
    for (&pairs, by_strategy) in consumer_counts.iter().zip(&grouped) {
        let rows: Vec<Row> = by_strategy
            .iter()
            .map(|runs| Row::from_runs(runs))
            .collect();
        print_header(&format!("Figure 10 — M = {pairs} consumers, B = 25"));
        for r in &rows {
            print_row(r);
        }
        sweep.push(SweepPoint {
            consumers: pairs,
            rows,
        });
    }

    println!(
        "\n--- PBPL power improvement over Mutex by consumer count (paper: 7.5%, 20%, 30%) ---"
    );
    for point in &sweep {
        let by = |n: &str| row(&point.rows, n);
        println!(
            "M = {:>2}: vs Mutex {:+.1}%   vs Sem {:+.1}%   vs BP {:+.1}%",
            point.consumers,
            pct_change(by("PBPL").power_mw.mean, by("Mutex").power_mw.mean),
            pct_change(by("PBPL").power_mw.mean, by("Sem").power_mw.mean),
            pct_change(by("PBPL").power_mw.mean, by("BP").power_mw.mean),
        );
    }

    println!("\n--- power trend with M (paper: increases consistently for all) ---");
    for name in ["Mutex", "Sem", "BP", "PBPL"] {
        let series: Vec<String> = sweep
            .iter()
            .map(|p| format!("{:.0}", row(&p.rows, name).power_mw.mean))
            .collect();
        println!("{name:>6}: {} mW at M = 2/5/10", series.join(" → "));
    }

    save_json("fig10_consumer_sweep", &sweep);
}

//! Chaos sweep runner — every fault scenario crossed with the strategy
//! panel, on the parallel sweep engine.
//!
//! ```text
//! cargo run --release -p pc-bench --bin chaos -- [--filter SUBSTR]...
//!     [--threads N] [--trace] [--list]
//! ```
//!
//! Writes two files under `results/`:
//!
//! * `chaos.json` — per-cell metrics plus trace-derived recovery
//!   metrics (overflow bursts, scheduled/overflow wake counts, recovery
//!   lag). **Byte-identical for any `--threads` value at the same
//!   seed** — the CI determinism gate byte-compares `--threads 4`
//!   against `--threads 1`, exactly like `suite.json`.
//! * `BENCH_chaos.json` — wall-clock and thread count (timings only).
//!
//! Every cell is *always* traced internally: the recovery metrics come
//! from the event stream, and each stream is replayed through the
//! extended oracle (`pc_bench::oracle`) — item and pool conservation
//! must hold through every injected fault, and any violation fails the
//! run. `--trace` additionally exports the streams to
//! `results/chaos_trace.jsonl` in the suite's `CellMeta`/event JSONL
//! format, so `trace_report` can re-verify the export offline.
//!
//! `PC_DURATION_MS`, `PC_REPLICATES`, `PC_SEED`, `PC_THREADS` and
//! `PC_TRACE_CAP` apply as everywhere else; `--threads` overrides
//! `PC_THREADS`.

use pc_bench::chaos::{
    chaos_cell_report, chaos_cells, chaos_oracle, chaos_point, chaos_strategies,
    chaos_strategy_label, execute_chaos_costed, ChaosCellReport, ChaosCellSpec,
};
use pc_bench::exp::{save_json, Protocol};
use pc_bench::oracle::{self, CellMeta, TraceLine};
use pc_bench::replay;
use pc_bench::sweep::CellTiming;
use serde::Serialize;
use std::io::Write;
use std::time::Instant;

#[derive(Serialize)]
struct ChaosReport {
    /// Bump on any change to this file's structure.
    schema_version: u32,
    duration_ms: u64,
    replicates: usize,
    base_seed: u64,
    trace_mean_rate: f64,
    pairs: usize,
    cores: usize,
    buffer: usize,
    cells: Vec<ChaosCellReport>,
}

#[derive(Serialize)]
struct ChaosTiming {
    /// v2: added `filters`, `utilization` / `worker_busy_ms` /
    /// `cell_timings` (scheduler counters).
    /// v3: `QueueStats` gained the arrival-calendar counters
    /// (`arrivals_scheduled` / `arrivals_popped`) and
    /// `pending_at_teardown` (DESIGN.md §14).
    schema_version: u32,
    threads: usize,
    cells: usize,
    /// Active `--filter` values (empty = full sweep), so a checked-in
    /// sidecar can never masquerade as a full run.
    filters: Vec<String>,
    total_wall_ms: u64,
    /// Worker busy share over the sweep's dispatch interval.
    utilization: f64,
    /// Per-worker busy milliseconds.
    worker_busy_ms: Vec<u64>,
    /// Per-cell wall time + deterministic scheduler counters.
    cell_timings: Vec<CellTiming>,
}

struct Options {
    filters: Vec<String>,
    threads: Option<usize>,
    trace: bool,
    list: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        filters: Vec::new(),
        threads: None,
        trace: false,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--filter" => {
                let value = args.next().unwrap_or_else(|| die("--filter needs a value"));
                options.filters.push(value);
            }
            "--threads" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| die("--threads needs a value"));
                let n: usize = value
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
                options.threads = Some(n);
            }
            "--trace" => options.trace = true,
            "--list" => options.list = true,
            "--help" | "-h" => {
                println!(
                    "usage: chaos [--filter SUBSTR]... [--threads N] [--trace] [--list]\n\
                     \n\
                     Runs the fault-injection sweep (every scenario x strategy\n\
                     panel) and writes results/chaos.json (deterministic) and\n\
                     results/BENCH_chaos.json (timings). --filter keeps cells\n\
                     whose 'scenario/strategy' label contains SUBSTR\n\
                     (repeatable, OR). Every cell is traced and replayed\n\
                     through the extended oracle; violations fail the run.\n\
                     --trace exports results/chaos_trace.jsonl.\n\
                     Env: PC_DURATION_MS, PC_REPLICATES, PC_SEED, PC_THREADS,\n\
                     PC_TRACE_CAP."
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    options
}

fn die(msg: &str) -> ! {
    eprintln!("chaos: {msg} (try --help)");
    std::process::exit(2);
}

/// Stable per-cell label used for filtering and oracle diagnostics.
fn cell_label(cell: &ChaosCellSpec, seed: u64) -> String {
    format!(
        "{}/{} seed={}",
        cell.scenario.name(),
        chaos_strategy_label(&cell.strategy),
        seed
    )
}

fn main() {
    let options = parse_args();
    let mut protocol = Protocol::from_env();
    if let Some(threads) = options.threads {
        protocol.threads = threads;
    }

    let cells: Vec<ChaosCellSpec> = chaos_cells(&chaos_strategies(), protocol.replicates)
        .into_iter()
        .filter(|cell| {
            let label = cell_label(cell, protocol.base_seed + cell.replicate as u64);
            options.filters.is_empty() || options.filters.iter().any(|f| label.contains(f.as_str()))
        })
        .collect();

    if options.list {
        for cell in &cells {
            println!(
                "{}",
                cell_label(cell, protocol.base_seed + cell.replicate as u64)
            );
        }
        return;
    }
    if cells.is_empty() {
        die("no cell matches the given --filter");
    }

    let point = chaos_point();
    let duration_ms = protocol.duration.as_nanos() / 1_000_000;
    println!(
        "chaos: {} cell(s), {} ms horizon, {} replicate(s), seed {}, {} thread(s)",
        cells.len(),
        duration_ms,
        protocol.replicates,
        protocol.base_seed,
        protocol.threads
    );

    // JSONL export opened up front so an unwritable results dir fails
    // before the sweep runs.
    let mut trace_out = if options.trace {
        std::fs::create_dir_all("results")
            .unwrap_or_else(|e| die(&format!("cannot create results dir: {e}")));
        let path = std::path::Path::new("results").join("chaos_trace.jsonl");
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        Some((path, std::io::BufWriter::new(file)))
    } else {
        None
    };

    let started = Instant::now();
    let (results, dispatch) = execute_chaos_costed(&protocol, &cells, protocol.threads);
    let total_wall_ms = started.elapsed().as_millis() as u64;

    let mut oracle_failures: Vec<String> = Vec::new();
    let mut reports = Vec::with_capacity(cells.len());
    println!(
        "{:<16} {:<16} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>12}",
        "scenario", "strategy", "items", "wakeups", "ovf", "consec", "sched", "burst", "rec_lag_us"
    );
    for (cell, (metrics, log)) in cells.iter().zip(&results) {
        let seed = protocol.base_seed + cell.replicate as u64;
        let label = cell_label(cell, seed);
        let report = chaos_oracle(log);
        for violation in report.violations {
            oracle_failures.push(format!("{label}: {violation}"));
        }
        let row = chaos_cell_report(&protocol, cell, metrics, log);
        println!(
            "{:<16} {:<16} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>12.1}",
            row.scenario,
            row.strategy,
            row.items_consumed,
            row.wakeups,
            row.recovery.overflow_wakes,
            row.recovery.consec_overflow_wakes,
            row.recovery.scheduled_wakes,
            row.recovery.max_overflow_burst,
            row.recovery.max_recovery_lag_ns as f64 / 1_000.0
        );
        if let Some((path, out)) = trace_out.as_mut() {
            let meta = CellMeta {
                experiment: format!("chaos_{}", cell.scenario.name()),
                strategy: row.strategy.clone(),
                pairs: point.pairs as u64,
                cores: point.cores as u64,
                buffer: point.buffer as u64,
                seed,
                duration_ns: protocol.duration.as_nanos(),
                workload: replay::worldcup_workload_label(&protocol.trace)
                    .unwrap_or_else(|| die("trace config matches no named workload — unreplayable"))
                    .to_string(),
                scenario: cell.scenario.name().to_string(),
                period_ns: oracle::strategy_period_ns(&cell.strategy),
                events: log.events.len() as u64,
                dropped: log.dropped,
                digest: log.digest(),
            };
            writeln!(out, "{}", oracle::line_to_json(&TraceLine::Cell(meta)))
                .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
            for ev in &log.events {
                writeln!(out, "{}", oracle::line_to_json(&TraceLine::Ev(ev.clone())))
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
            }
        }
        reports.push(row);
    }

    save_json(
        "chaos",
        &ChaosReport {
            schema_version: 1,
            duration_ms,
            replicates: protocol.replicates,
            base_seed: protocol.base_seed,
            trace_mean_rate: protocol.trace.mean_rate,
            pairs: point.pairs,
            cores: point.cores,
            buffer: point.buffer,
            cells: reports,
        },
    );
    save_json(
        "BENCH_chaos",
        &ChaosTiming {
            schema_version: 3,
            threads: protocol.threads,
            cells: cells.len(),
            filters: options.filters.clone(),
            total_wall_ms,
            utilization: dispatch.utilization(total_wall_ms),
            worker_busy_ms: dispatch.worker_busy_ms.clone(),
            cell_timings: cells
                .iter()
                .zip(&results)
                .zip(&dispatch.cell_wall_ms)
                .map(|((cell, (metrics, _)), &cell_wall)| CellTiming {
                    cell: cell_label(cell, protocol.base_seed + cell.replicate as u64),
                    wall_ms: cell_wall,
                    scheduler: {
                        // Closed scheduler ledger — holds under every
                        // fault scenario too (DESIGN.md §14).
                        assert!(
                            metrics.scheduler.ledger_balanced(),
                            "scheduler ledger out of balance: {:?}",
                            metrics.scheduler
                        );
                        metrics.scheduler
                    },
                })
                .collect(),
        },
    );
    if let Some((path, mut out)) = trace_out {
        out.flush()
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        println!("[saved {}]", path.display());
    }

    if oracle_failures.is_empty() {
        let events: u64 = results.iter().map(|(_, log)| log.events.len() as u64).sum();
        println!("chaos: replay oracle clean over {events} events");
    } else {
        for failure in &oracle_failures {
            eprintln!("chaos: ORACLE VIOLATION: {failure}");
        }
        eprintln!(
            "chaos: replay oracle found {} violation(s)",
            oracle_failures.len()
        );
        std::process::exit(1);
    }
    println!("chaos: done in {total_wall_ms} ms");
}

//! Figure 9 — wakeups/s versus power for the four evaluated
//! implementations with 5 consumers and buffer size 25 (§VI-C).
//!
//! Paper claims at this configuration: wakeups/s is directly correlated
//! with power; PBPL is lowest on both axes; PBPL cuts wakeups by 39.5%
//! and power by 20% versus Mutex, and wakeups by 37.8% / power by 7.4%
//! versus plain batch processing.

use pc_bench::exp::{
    evaluated_strategies, pct_change, print_header, print_row, row, save_json, Protocol, Row,
};
use pc_bench::sweep::{run_grouped, GridPoint, SweepSpec};
use pc_stats::{paired_t_test, ConfidenceLevel};

fn main() {
    let protocol = Protocol::from_env();
    let (pairs, cores, buffer) = (5, 2, 25);

    let spec = SweepSpec {
        strategies: evaluated_strategies(),
        points: vec![GridPoint {
            pairs,
            cores,
            buffer,
        }],
    };
    let rows: Vec<Row> = run_grouped(&protocol, &spec)
        .remove(0)
        .iter()
        .map(|runs| Row::from_runs(runs))
        .collect();

    print_header("Figure 9 — 5 consumers, B = 25, web-log workload with 1/M phase shifts");
    for r in &rows {
        print_row(r);
    }

    let by = |n: &str| row(&rows, n);
    let (mutex, sem, bp, pbpl) = (by("Mutex"), by("Sem"), by("BP"), by("PBPL"));

    println!("\n--- PBPL improvements (paper: −39.5% wakeups / −20% power vs Mutex; −37.8% / −7.4% vs BP) ---");
    println!(
        "vs Mutex: wakeups {:+.1}%, power {:+.1}%",
        pct_change(pbpl.wakeups_per_sec.mean, mutex.wakeups_per_sec.mean),
        pct_change(pbpl.power_mw.mean, mutex.power_mw.mean)
    );
    println!(
        "vs Sem:   wakeups {:+.1}%, power {:+.1}%",
        pct_change(pbpl.wakeups_per_sec.mean, sem.wakeups_per_sec.mean),
        pct_change(pbpl.power_mw.mean, sem.power_mw.mean)
    );
    println!(
        "vs BP:    wakeups {:+.1}%, power {:+.1}%",
        pct_change(pbpl.wakeups_per_sec.mean, bp.wakeups_per_sec.mean),
        pct_change(pbpl.power_mw.mean, bp.power_mw.mean)
    );

    // Same-seed paired significance: replicate k of every strategy saw
    // the identical trace, so the per-seed power differences carry the
    // signal the overlapping CIs hide at n = 3.
    println!("\n--- paired t-tests on per-seed power (95%) ---");
    for (a, b) in [
        ("PBPL", "BP"),
        ("PBPL", "Mutex"),
        ("BP", "Mutex"),
        ("Sem", "Mutex"),
    ] {
        let t = paired_t_test(
            &by(a).power_mw.samples,
            &by(b).power_mw.samples,
            ConfidenceLevel::P95,
        );
        match t {
            Some(t) => println!(
                "{a} − {b}: mean Δ {:+.1} mW, t = {:+.2} → {}",
                t.mean_difference,
                t.t_statistic,
                if t.significant {
                    "significant"
                } else {
                    "not significant"
                }
            ),
            None => println!("{a} − {b}: test undefined"),
        }
    }

    // The figure's visual claim: power ordering follows wakeup ordering.
    let mut by_wakeups: Vec<&Row> = rows.iter().collect();
    by_wakeups.sort_by(|a, b| a.wakeups_per_sec.mean.total_cmp(&b.wakeups_per_sec.mean));
    println!(
        "\nwakeup ordering:  {}",
        by_wakeups
            .iter()
            .map(|r| r.name.as_str())
            .collect::<Vec<_>>()
            .join(" < ")
    );
    let mut by_power: Vec<&Row> = rows.iter().collect();
    by_power.sort_by(|a, b| a.power_mw.mean.total_cmp(&b.power_mw.mean));
    println!(
        "power ordering:   {}",
        by_power
            .iter()
            .map(|r| r.name.as_str())
            .collect::<Vec<_>>()
            .join(" < ")
    );

    save_json("fig09_five_consumers", &rows);
}

//! §III-C statistics — the correlation and hypothesis-test analysis
//! behind Figures 3 & 4.
//!
//! Paper values: CPU usage vs power correlates weakly (+12%) once
//! BW/Yield are excluded; wakeups vs power correlates strongly
//! positively (+74%) among the five idle-based implementations and
//! strongly negatively (−79.6%) across all seven (the sign flip is the
//! BW/Yield bias: they have huge power but few wakeups); the hypothesis
//! "wakeups have a significant effect on power" is accepted at 99%
//! confidence.

use pc_bench::exp::{save_json, single_pc_strategies, Protocol, Row};
use pc_sim::SimRng;
use pc_stats::{correlation_significance, linear_fit, pearson, ConfidenceLevel};
use serde::Serialize;

#[derive(Serialize)]
struct CorrelationReport {
    corr_wakeups_power_all7: f64,
    corr_wakeups_power_idle5: f64,
    corr_usage_power_idle5: f64,
    noisy_corr_wakeups_power_idle5: f64,
    noisy_corr_usage_power_idle5: f64,
    wakeup_effect_significant_99: bool,
    t_statistic: f64,
    regression_slope_mw_per_wakeup: Option<f64>,
    rows: Vec<Row>,
}

fn main() {
    let protocol = Protocol::from_env();
    let buffer = 50;
    let mean_rate = protocol.trace.mean_rate;

    // Collect (wakeups, usage, power) per replicate per implementation.
    let mut rows = Vec::new();
    let mut all7: Vec<(String, f64, f64, f64)> = Vec::new();
    for strategy in single_pc_strategies(buffer, mean_rate) {
        let runs = protocol.run(strategy, 1, 1, buffer);
        for m in &runs {
            all7.push((
                m.strategy.clone(),
                m.wakeups_per_sec(),
                m.usage_ms_per_sec(),
                m.extra_power_mw(),
            ));
        }
        rows.push(Row::from_runs(&runs));
    }

    let idle5: Vec<&(String, f64, f64, f64)> = all7
        .iter()
        .filter(|(n, _, _, _)| n != "BW" && n != "Yield")
        .collect();

    let wk_all: Vec<f64> = all7.iter().map(|r| r.1).collect();
    let pw_all: Vec<f64> = all7.iter().map(|r| r.3).collect();
    let wk5: Vec<f64> = idle5.iter().map(|r| r.1).collect();
    let us5: Vec<f64> = idle5.iter().map(|r| r.2).collect();
    let pw5: Vec<f64> = idle5.iter().map(|r| r.3).collect();

    let c_all = pearson(&wk_all, &pw_all);
    let c_wk5 = pearson(&wk5, &pw5);
    let c_us5 = pearson(&us5, &pw5);

    println!("=== §III-C correlation analysis ===");
    println!(
        "corr(wakeups, power), all 7 impls:        {:+.1}%  (paper: −79.6%)",
        c_all * 100.0
    );
    println!(
        "corr(wakeups, power), idle-based 5:       {:+.1}%  (paper: +74%)",
        c_wk5 * 100.0
    );
    println!(
        "corr(usage,   power), idle-based 5:       {:+.1}%  (paper: +12%)",
        c_us5 * 100.0
    );

    let test = correlation_significance(&wk5, &pw5, ConfidenceLevel::P99);
    let (significant, t_stat) = test
        .map(|t| (t.significant, t.t_statistic))
        .unwrap_or((false, f64::NAN));
    println!(
        "\nH0: wakeups significantly affect power — {} at 99% (t = {:.2}; paper accepts at 99%)",
        if significant {
            "ACCEPTED"
        } else {
            "NOT ACCEPTED"
        },
        t_stat
    );

    // Deviation D3 quantified: the simulator is noiseless, so shared
    // dependence on the workload shows up as near-perfect correlations.
    // Injecting scope/PowerTop-class measurement noise (the paper's error
    // bars: "a significant amount of noise … larger error bars" on usage)
    // reproduces the paper's regime — wakeups stay the strong predictor,
    // usage decorrelates.
    let mut rng = SimRng::new(0xD3);
    let mut noisy = |xs: &[f64], rel: f64| -> Vec<f64> {
        xs.iter()
            .map(|&x| x + rng.normal(0.0, rel * x.abs().max(1.0)))
            .collect()
    };
    let pw5_noisy = noisy(&pw5, 0.08); // ±8% power readout noise
    let wk5_noisy = noisy(&wk5, 0.05); // PowerTop wakeup sampling noise
    let us5_noisy = noisy(&us5, 0.50); // PowerTop ms/s is the noisiest readout
    let nc_wk = pearson(&wk5_noisy, &pw5_noisy);
    let nc_us = pearson(&us5_noisy, &pw5_noisy);
    println!("\nwith injected measurement noise (D3 sensitivity):");
    println!(
        "corr(wakeups, power), idle-based 5:       {:+.1}%  (paper: +74%)",
        nc_wk * 100.0
    );
    println!(
        "corr(usage,   power), idle-based 5:       {:+.1}%  (paper: +12%)",
        nc_us * 100.0
    );

    let fit = linear_fit(&wk5, &pw5);
    if let Some(f) = &fit {
        println!(
            "power ≈ {:.4} mW per wakeup/s + {:.1} mW   (R² = {:.3})",
            f.slope, f.intercept, f.r_squared
        );
    }

    save_json(
        "correlations",
        &CorrelationReport {
            corr_wakeups_power_all7: c_all,
            corr_wakeups_power_idle5: c_wk5,
            corr_usage_power_idle5: c_us5,
            noisy_corr_wakeups_power_idle5: nc_wk,
            noisy_corr_usage_power_idle5: nc_us,
            wakeup_effect_significant_99: significant,
            t_statistic: t_stat,
            regression_slope_mw_per_wakeup: fit.map(|f| f.slope),
            rows,
        },
    );
}

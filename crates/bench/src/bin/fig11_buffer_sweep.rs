//! Figure 11 — power and wakeups/s as the buffer size grows
//! (B ∈ {25, 50, 100}, M = 5), BP versus PBPL (§VI-C).
//!
//! Paper claims: larger buffers cut both power and wakeups for both
//! implementations (they can buffer more and wake less), and the gap
//! between PBPL and BP *narrows* with B as both saturate.

use pc_bench::exp::{
    pct_change, print_header, print_latency_tail, print_row, row, save_json, Protocol, Row,
};
use pc_bench::sweep::{run_grouped, GridPoint, SweepSpec};
use pc_core::StrategyKind;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    buffer: usize,
    rows: Vec<Row>,
}

fn main() {
    let protocol = Protocol::from_env();
    let (pairs, cores) = (5, 2);
    let buffers = [25usize, 50, 100];

    let spec = SweepSpec {
        strategies: vec![StrategyKind::Bp, StrategyKind::pbpl_default()],
        points: buffers
            .iter()
            .map(|&buffer| GridPoint {
                pairs,
                cores,
                buffer,
            })
            .collect(),
    };
    let grouped = run_grouped(&protocol, &spec);

    let mut sweep = Vec::new();
    for (&buffer, by_strategy) in buffers.iter().zip(&grouped) {
        let rows: Vec<Row> = by_strategy
            .iter()
            .map(|runs| Row::from_runs(runs))
            .collect();
        print_header(&format!("Figure 11 — B = {buffer}, M = 5"));
        for r in &rows {
            print_row(r);
        }
        // §III-C: "Batch processing has its drawbacks, mainly of which is
        // the latency in responding to items" — the tail quantified.
        for r in &rows {
            print_latency_tail(r);
        }
        sweep.push(SweepPoint { buffer, rows });
    }

    println!("\n--- trends (paper: both drop with B; BP↔PBPL gap narrows) ---");
    for name in ["BP", "PBPL"] {
        let series: Vec<String> = sweep
            .iter()
            .map(|p| {
                let r = row(&p.rows, name);
                format!(
                    "{:.0} mW / {:.0} wk/s",
                    r.power_mw.mean, r.wakeups_per_sec.mean
                )
            })
            .collect();
        println!("{name:>5}: {}", series.join("  →  "));
    }
    println!("\nPBPL−BP power gap by buffer size:");
    for p in &sweep {
        let by = |n: &str| row(&p.rows, n);
        println!(
            "B = {:>3}: {:+.1}% ({:+.1} mW)",
            p.buffer,
            pct_change(by("PBPL").power_mw.mean, by("BP").power_mw.mean),
            by("PBPL").power_mw.mean - by("BP").power_mw.mean
        );
    }

    save_json("fig11_buffer_sweep", &sweep);
}

//! §VI-C buffer-occupancy accounting — dynamic resizing in numbers.
//!
//! Paper (B = 50): "Although a buffer of size 50 is allocated for each
//! consumer, PBPL uses on average only 43 buffer locations … The unused
//! space in the buffer is granted to consumers suffering from a high
//! production rate, so that they can maintain their latching duties."

use pc_bench::exp::{save_json, Protocol, Row};
use pc_bench::sweep::{run_grouped, GridPoint, SweepSpec};
use pc_core::{PbplConfig, StrategyKind};
use serde::Serialize;

#[derive(Serialize)]
struct BufferReport {
    allocated_b0: usize,
    mean_capacity_resizing: f64,
    mean_capacity_fixed: f64,
    mean_batch_resizing: f64,
    overflows_resizing: f64,
    overflows_fixed: f64,
    rows: Vec<Row>,
}

fn main() {
    let protocol = Protocol::from_env();
    let (pairs, cores, buffer) = (5, 2, 50);

    let fixed_cfg = PbplConfig {
        resizing: false,
        ..PbplConfig::default()
    };
    let spec = SweepSpec {
        strategies: vec![StrategyKind::pbpl_default(), StrategyKind::Pbpl(fixed_cfg)],
        points: vec![GridPoint {
            pairs,
            cores,
            buffer,
        }],
    };
    let mut by_strategy = run_grouped(&protocol, &spec).remove(0);
    let fixed = by_strategy.remove(1);
    let resizing = by_strategy.remove(0);

    let r_res = Row::from_runs(&resizing);
    let r_fix = Row::from_runs(&fixed);
    let mean_batch: f64 = resizing
        .iter()
        .map(|m| {
            let (items, invocs) = m.pairs.iter().fold((0u64, 0u64), |(a, b), p| {
                (a + p.occupancy_sum, b + p.samples)
            });
            items as f64 / invocs.max(1) as f64
        })
        .sum::<f64>()
        / resizing.len() as f64;

    println!("=== §VI-C buffer usage (M = 5, B₀ = 50) ===");
    println!("allocated per consumer (B₀):            {buffer:>8}");
    println!(
        "mean capacity with dynamic resizing:    {:>8.1}   (paper: 43 of 50)",
        r_res.mean_capacity.mean
    );
    println!(
        "mean capacity with resizing disabled:   {:>8.1}   (must equal B₀)",
        r_fix.mean_capacity.mean
    );
    println!("mean batch size at drain:               {mean_batch:>8.1}");
    println!(
        "overflows, resizing vs fixed:           {:>8.0} vs {:.0}",
        r_res.overflows.mean, r_fix.overflows.mean
    );

    save_json(
        "table_buffer_usage",
        &BufferReport {
            allocated_b0: buffer,
            mean_capacity_resizing: r_res.mean_capacity.mean,
            mean_capacity_fixed: r_fix.mean_capacity.mean,
            mean_batch_resizing: mean_batch,
            overflows_resizing: r_res.overflows.mean,
            overflows_fixed: r_fix.overflows.mean,
            rows: vec![r_res, r_fix],
        },
    );
}

//! `replay` — executable trace replay (DESIGN.md §12).
//!
//! Reads one or more JSONL trace exports (`suite_trace.jsonl`,
//! `chaos_trace.jsonl`, `scale_trace.jsonl`, or a checked-in golden
//! fixture), reconstructs each cell's configuration from its
//! [`CellMeta`] header, re-runs the simulation, and compares the
//! regenerated event stream against the recording event-by-event.
//! The first divergence fails the run loudly with a ±8-event context
//! window from both streams; `--digest-only` compares the FNV
//! canonical-JSON digests instead (fast path). `--regen-fixtures`
//! rewrites the golden fixtures under `tests/fixtures/`.
//!
//! Exit codes: `0` every cell replayed clean, `1` divergence /
//! unreplayable cell / empty export, `2` usage or I/O / parse error
//! (reported as `path:line: message`).

use pc_bench::oracle::CellMeta;
use pc_bench::replay::{
    fixture_defs, fixture_dir, parse_export_file, render_fixture, replay_cell, CellReplay,
};

struct Args {
    files: Vec<String>,
    digest_only: bool,
    regen_fixtures: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        files: Vec::new(),
        digest_only: false,
        regen_fixtures: false,
        list: false,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--digest-only" => args.digest_only = true,
            "--regen-fixtures" => args.regen_fixtures = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err(
                    "usage: replay [FILE]... [--digest-only] [--regen-fixtures] [--list]"
                        .to_string(),
                )
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            file => args.files.push(file.to_string()),
        }
    }
    if args.files.is_empty() {
        args.files.push("results/suite_trace.jsonl".to_string());
    }
    Ok(args)
}

fn regen_fixtures() -> Result<(), String> {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    for (name, proto) in fixture_defs() {
        let bytes = render_fixture(&proto)?;
        let path = dir.join(name);
        std::fs::write(&path, &bytes)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {} ({} lines)", path.display(), bytes.lines().count());
    }
    Ok(())
}

fn replay_file(path: &str, digest_only: bool) -> Result<(u64, u64), String> {
    let cells = parse_export_file(path)?;
    if cells.is_empty() {
        println!("{path}: no cells");
        return Ok((0, 1));
    }
    let mut ok = 0u64;
    let mut failed = 0u64;
    for cell in &cells {
        let label = cell.meta.label();
        match replay_cell(cell, digest_only) {
            CellReplay::Match { events } => {
                println!("  OK   {label} ({events} events)");
                ok += 1;
            }
            CellReplay::Diverged { seq, report } => {
                println!("  FAIL {label}: diverged at seq {seq}");
                for line in report.lines() {
                    println!("       {line}");
                }
                failed += 1;
            }
            CellReplay::Unreplayable(e) => {
                println!("  FAIL {label}: unreplayable: {e}");
                failed += 1;
            }
        }
    }
    println!("{path}: {ok}/{} cells replayed clean", cells.len());
    Ok((ok, failed))
}

fn list_cells(path: &str) -> Result<(), String> {
    let cells = parse_export_file(path)?;
    for cell in &cells {
        let m: &CellMeta = &cell.meta;
        println!(
            "{} workload={} scenario={} dur={}ms events={}",
            m.label(),
            m.workload,
            if m.scenario.is_empty() {
                "-"
            } else {
                &m.scenario
            },
            m.duration_ns / 1_000_000,
            m.events
        );
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if args.regen_fixtures {
        if let Err(e) = regen_fixtures() {
            eprintln!("replay: {e}");
            std::process::exit(2);
        }
        return;
    }
    if args.list {
        for file in &args.files {
            if let Err(e) = list_cells(file) {
                eprintln!("replay: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let mut total_ok = 0u64;
    let mut total_failed = 0u64;
    for file in &args.files {
        match replay_file(file, args.digest_only) {
            Ok((ok, failed)) => {
                total_ok += ok;
                total_failed += failed;
            }
            Err(e) => {
                eprintln!("replay: {e}");
                std::process::exit(2);
            }
        }
    }
    if total_failed > 0 {
        eprintln!("replay: {total_failed} cell(s) failed, {total_ok} clean");
        std::process::exit(1);
    }
    println!("replay: all {total_ok} cell(s) replayed clean");
}

//! Large-M scaling sweep on the sharded coordination layer
//! (DESIGN.md §11).
//!
//! ```text
//! cargo run --release -p pc-bench --bin scale -- [--filter NAME]...
//!     [--threads N] [--shards N] [--trace] [--list]
//! ```
//!
//! Drives the planet-scale fleet workload (`pc_trace::planet`) through
//! the four §VI strategies at M ∈ {10, 100, 1000} and writes:
//!
//! * `results/scale.json` — deterministic per-cell metrics. **Byte-
//!   identical for any `--threads` value AND any `--shards` value at
//!   the same seed** — the CI scale job runs this binary three times
//!   (threads 4, threads 1, then a different shard count) and fails the
//!   build on any byte difference. Thread and shard counts must never
//!   reach this file.
//! * `results/BENCH_scale.json` — wall-clock, thread count and shard
//!   count. Host-dependent by design.
//!
//! `--trace` additionally records every cell's event stream, replays
//! the oracle over it (violations fail the run) and exports
//! `results/scale_trace.jsonl` in the suite's `CellMeta`/event JSONL
//! format — consumable by `trace_report` and re-executable by `replay`
//! (DESIGN.md §12). Recording is purely observational:
//! `results/scale.json` stays byte-identical with and without it.
//!
//! `PC_DURATION_MS` (default 10 000), `PC_REPLICATES` (default 1),
//! `PC_SEED`, `PC_THREADS` and `PC_SHARDS` apply; `--threads` and
//! `--shards` override the env.

use pc_bench::exp::{print_header, print_row, save_json, Row};
use pc_bench::oracle::{self, CellMeta, TraceLine};
use pc_bench::replay;
use pc_bench::scale::{
    cell_report, cells_for, execute_costed_with, execute_traced_costed_with, fleets, scale_points,
    ScaleProtocol,
};
use pc_bench::sweep::CellTiming;
use serde::Serialize;
use std::io::Write;
use std::time::Instant;

#[derive(Serialize)]
struct ScaleReport {
    /// Bump on any change to this file's structure.
    schema_version: u32,
    duration_ms: u64,
    replicates: usize,
    base_seed: u64,
    workload_mean_rate: f64,
    workload_rate_spread: f64,
    cells: Vec<pc_bench::scale::ScaleCellReport>,
}

#[derive(Serialize)]
struct PointTiming {
    name: String,
    cells: usize,
    /// Simulation wall time only — fleet generation is hoisted out of
    /// the timed region and stamped separately below, so per-strategy
    /// cell timings are comparable (the first-run cell no longer
    /// absorbs the shared workload-synthesis cost).
    wall_ms: u64,
    /// Wall time spent pre-generating this point's shared fleets.
    fleet_gen_ms: u64,
    /// Worker busy share over this point's dispatch interval.
    utilization: f64,
    /// Per-worker busy milliseconds for this point's dispatch.
    worker_busy_ms: Vec<u64>,
    /// Per-cell wall time + deterministic scheduler counters.
    cell_timings: Vec<CellTiming>,
}

#[derive(Serialize)]
struct ScaleTiming {
    /// v2: added `filters`, per-point `utilization` / `worker_busy_ms`
    /// / `cell_timings` (scheduler counters).
    /// v3: per-point `fleet_gen_ms` (fleet generation hoisted out of
    /// `wall_ms`); `QueueStats` gained the arrival-calendar counters
    /// and `pending_at_teardown` (DESIGN.md §14).
    /// v4: `QueueStats` gained `items_shed` (overload control,
    /// DESIGN.md §15; zero whenever the layer is disabled — always,
    /// for the scale sweep's cells).
    schema_version: u32,
    threads: usize,
    shards: usize,
    /// Active `--filter` values (empty = all three points), so a
    /// checked-in sidecar can never masquerade as a full run.
    filters: Vec<String>,
    total_wall_ms: u64,
    points: Vec<PointTiming>,
}

struct Options {
    filters: Vec<String>,
    threads: Option<usize>,
    shards: Option<usize>,
    trace: bool,
    list: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        filters: Vec::new(),
        threads: None,
        shards: None,
        trace: false,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--filter" => {
                let value = args.next().unwrap_or_else(|| die("--filter needs a value"));
                options.filters.push(value);
            }
            "--threads" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| die("--threads needs a value"));
                options.threads = Some(parse_positive(&value, "--threads"));
            }
            "--shards" => {
                let value = args.next().unwrap_or_else(|| die("--shards needs a value"));
                options.shards = Some(parse_positive(&value, "--shards"));
            }
            "--trace" => options.trace = true,
            "--list" => options.list = true,
            "--help" | "-h" => {
                println!(
                    "usage: scale [--filter NAME]... [--threads N] [--shards N]\n\
                     \x20            [--trace] [--list]\n\
                     \n\
                     Runs the large-M scaling sweep (planet fleet workload,\n\
                     M in {{10, 100, 1000}}) on the sharded coordination layer\n\
                     and writes results/scale.json (deterministic — identical\n\
                     for any thread or shard count) and results/BENCH_scale.json\n\
                     (timings). --filter keeps only the named points\n\
                     (m10 | m100 | m1000; exact match, repeatable, OR).\n\
                     --trace records event streams, replays the oracle and\n\
                     exports results/scale_trace.jsonl.\n\
                     Env: PC_DURATION_MS, PC_REPLICATES, PC_SEED, PC_THREADS,\n\
                     PC_SHARDS."
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    options
}

fn parse_positive(value: &str, flag: &str) -> usize {
    value
        .parse()
        .ok()
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")))
}

fn die(msg: &str) -> ! {
    eprintln!("scale: {msg} (try --help)");
    std::process::exit(2);
}

fn main() {
    let options = parse_args();
    let mut protocol = ScaleProtocol::from_env();
    if let Some(threads) = options.threads {
        protocol.threads = threads;
    }
    if let Some(shards) = options.shards {
        protocol.shards = shards;
    }

    let points = scale_points();
    let selected: Vec<&pc_bench::scale::ScalePoint> = points
        .iter()
        .filter(|p| {
            // Point names are prefixes of each other (m10, m100, m1000),
            // so filters match exactly rather than by substring.
            options.filters.is_empty() || options.filters.iter().any(|f| p.name == f.as_str())
        })
        .collect();

    if options.list {
        for p in &selected {
            println!(
                "{:<6} M={:<5} cores={:<4} {:>3} cells",
                p.name,
                p.point.pairs,
                p.point.cores,
                cells_for(&[p], protocol.replicates).len()
            );
        }
        return;
    }
    if selected.is_empty() {
        die("no scale point matches the given --filter");
    }

    let duration_ms = protocol.duration.as_nanos() / 1_000_000;
    println!(
        "scale: {} point(s), {} ms horizon, {} replicate(s), seed {}, {} thread(s), {} shard(s)",
        selected.len(),
        duration_ms,
        protocol.replicates,
        protocol.base_seed,
        protocol.threads,
        protocol.shards
    );

    let mut trace_out = if options.trace {
        let path = std::path::Path::new("results").join("scale_trace.jsonl");
        std::fs::create_dir_all("results")
            .unwrap_or_else(|e| die(&format!("cannot create results/: {e}")));
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", path.display())));
        Some((path, std::io::BufWriter::new(file)))
    } else {
        None
    };
    let workload_label = replay::planet_workload_label(&protocol.workload)
        .unwrap_or_else(|| die("workload matches no named configuration — unreplayable"));
    let mut oracle_failures: Vec<String> = Vec::new();
    let mut traced_events = 0u64;

    let start = Instant::now();
    let mut reports = Vec::new();
    let mut timings = Vec::new();
    for p in &selected {
        let cells = cells_for(&[p], protocol.replicates);
        // Workload synthesis happens outside the timed region: the
        // fleets are shared across every strategy at this point, and
        // charging them to whichever cell dispatches first would skew
        // the per-strategy comparison (the cost is stamped separately).
        let gen_started = Instant::now();
        let point_fleets = fleets(&protocol, &cells);
        let fleet_gen_ms = gen_started.elapsed().as_millis() as u64;
        let started = Instant::now();
        let (runs, logs, dispatch) = if options.trace {
            let (traced, dispatch) = execute_traced_costed_with(&protocol, &cells, &point_fleets);
            let mut runs = Vec::with_capacity(traced.len());
            let mut logs = Vec::with_capacity(traced.len());
            for (m, log) in traced {
                runs.push(m);
                logs.push(log);
            }
            (runs, logs, dispatch)
        } else {
            let (runs, dispatch) = execute_costed_with(&protocol, &cells, &point_fleets);
            (runs, Vec::new(), dispatch)
        };
        let wall_ms = started.elapsed().as_millis() as u64;

        if let Some((path, out)) = trace_out.as_mut() {
            for (cell, log) in cells.iter().zip(&logs) {
                let meta = CellMeta {
                    experiment: format!("scale_{}", p.name),
                    strategy: cell.strategy.name().to_string(),
                    pairs: cell.point.pairs as u64,
                    cores: cell.point.cores as u64,
                    buffer: cell.point.buffer as u64,
                    seed: protocol.base_seed + cell.replicate as u64,
                    duration_ns: protocol.duration.as_nanos(),
                    workload: workload_label.to_string(),
                    scenario: String::new(),
                    period_ns: oracle::strategy_period_ns(&cell.strategy),
                    events: log.events.len() as u64,
                    dropped: log.dropped,
                    digest: log.digest(),
                };
                let label = meta.label();
                writeln!(out, "{}", oracle::line_to_json(&TraceLine::Cell(meta)))
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
                for ev in &log.events {
                    writeln!(out, "{}", oracle::line_to_json(&TraceLine::Ev(ev.clone())))
                        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
                }
                traced_events += log.events.len() as u64;
                let report = oracle::check(log);
                for violation in report.violations {
                    oracle_failures.push(format!("{label}: {violation}"));
                }
            }
        }

        print_header(&format!("scale {} (M={})", p.name, p.point.pairs));
        for (chunk_index, group) in runs.chunks(protocol.replicates).enumerate() {
            let cell = &cells[chunk_index * protocol.replicates];
            let mut row = Row::from_runs(group);
            row.name = cell.strategy.name().to_string();
            print_row(&row);
        }

        reports.extend(
            cells
                .iter()
                .zip(&runs)
                .map(|(cell, m)| cell_report(&protocol, cell, m)),
        );
        for (cell, m) in cells.iter().zip(&runs) {
            // Closed scheduler ledger: every event the cell scheduled is
            // popped, cancelled, or reported pending at teardown — a
            // drift here means the wheel or calendar dropped work.
            assert!(
                m.scheduler.ledger_balanced(),
                "scale {} {} seed={}: scheduler ledger out of balance: {:?}",
                p.name,
                cell.strategy.name(),
                protocol.base_seed + cell.replicate as u64,
                m.scheduler
            );
        }
        timings.push(PointTiming {
            name: p.name.to_string(),
            cells: cells.len(),
            wall_ms,
            fleet_gen_ms,
            utilization: dispatch.utilization(wall_ms),
            worker_busy_ms: dispatch.worker_busy_ms.clone(),
            cell_timings: cells
                .iter()
                .zip(&runs)
                .zip(&dispatch.cell_wall_ms)
                .map(|((cell, m), &cell_wall)| CellTiming {
                    cell: format!(
                        "{} {} seed={}",
                        p.name,
                        cell.strategy.name(),
                        protocol.base_seed + cell.replicate as u64
                    ),
                    wall_ms: cell_wall,
                    scheduler: m.scheduler,
                })
                .collect(),
        });
    }

    save_json(
        "scale",
        &ScaleReport {
            schema_version: 1,
            duration_ms,
            replicates: protocol.replicates,
            base_seed: protocol.base_seed,
            workload_mean_rate: protocol.workload.mean_rate,
            workload_rate_spread: protocol.workload.rate_spread,
            cells: reports,
        },
    );

    let total_wall_ms = start.elapsed().as_millis() as u64;
    save_json(
        "BENCH_scale",
        &ScaleTiming {
            schema_version: 4,
            threads: protocol.threads,
            shards: protocol.shards,
            filters: options.filters.clone(),
            total_wall_ms,
            points: timings,
        },
    );
    if let Some((path, mut out)) = trace_out {
        out.flush()
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        println!("[saved {}] ({} events)", path.display(), traced_events);
        if oracle_failures.is_empty() {
            println!("scale: replay oracle clean over {traced_events} events");
        } else {
            for failure in &oracle_failures {
                eprintln!("scale: oracle violation: {failure}");
            }
            eprintln!(
                "scale: {} oracle violation(s) — see above",
                oracle_failures.len()
            );
            std::process::exit(1);
        }
    }
    println!("scale: done in {total_wall_ms} ms");
}

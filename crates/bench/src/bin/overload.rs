//! Overload sweep runner — the strategy panel under correlated overload
//! scenarios, with and without the deadline-aware overload control
//! layer (DESIGN.md §15).
//!
//! ```text
//! cargo run --release -p pc-bench --bin overload -- [--filter NAME]...
//!     [--threads N] [--trace] [--list]
//! ```
//!
//! Writes two files under `results/`:
//!
//! * `overload.json` — per-cell metrics plus the shed/deadline
//!   accounting (`items_shed`, `shed_pct`, `overload_windows`,
//!   `deadline_misses`). **Byte-identical for any `--threads` value at
//!   the same seed** — the CI determinism gate byte-compares
//!   `--threads 4` against `--threads 1`, exactly like `suite.json`,
//!   and `--trace` must not change the bytes either.
//! * `BENCH_overload.json` — wall-clock and thread count (timings only).
//!
//! Every cell is *always* traced internally and replayed through the
//! extended oracle (`pc_bench::oracle`): item conservation through
//! shedding (`produced == consumed + shed`), paired overload windows
//! with exact per-window shed counts, and pool conservation must hold
//! through every injected fault; any violation fails the run. `--trace`
//! additionally exports the streams to `results/overload_trace.jsonl`
//! in the suite's `CellMeta`/event JSONL format, so `trace_report` can
//! re-verify the export offline and `replay` can re-execute it (the
//! `…(overload)` strategy labels alone carry the overload recipe).
//!
//! `--filter` takes the exact cell name `{scenario}/{strategy}` (the
//! planet-scale block is `{scenario}@m100/{strategy}`), matching the
//! scale runner's exact-name semantics — `--list` prints every name.
//!
//! `PC_DURATION_MS`, `PC_REPLICATES`, `PC_SEED`, `PC_THREADS` and
//! `PC_TRACE_CAP` apply as everywhere else; `--threads` overrides
//! `PC_THREADS`.

use pc_bench::exp::{save_json, Protocol};
use pc_bench::oracle::{self, CellMeta, TraceLine};
use pc_bench::overload::{
    execute_overload_costed, overload_cell_name, overload_cell_report, overload_cells,
    overload_oracle, overload_strategy_label, OverloadCellReport, OverloadCellSpec, OverloadPoint,
};
use pc_bench::replay;
use pc_bench::sweep::CellTiming;
use serde::Serialize;
use std::io::Write;
use std::time::Instant;

#[derive(Serialize)]
struct OverloadReport {
    /// Bump on any change to this file's structure.
    schema_version: u32,
    duration_ms: u64,
    replicates: usize,
    base_seed: u64,
    trace_mean_rate: f64,
    cells: Vec<OverloadCellReport>,
}

#[derive(Serialize)]
struct OverloadTiming {
    /// v4 from birth: `QueueStats` carries `items_shed` (DESIGN.md §15)
    /// — matching the other sidecars' v4 bump.
    schema_version: u32,
    threads: usize,
    cells: usize,
    /// Active `--filter` values (empty = full sweep), so a checked-in
    /// sidecar can never masquerade as a full run.
    filters: Vec<String>,
    total_wall_ms: u64,
    /// Worker busy share over the sweep's dispatch interval.
    utilization: f64,
    /// Per-worker busy milliseconds.
    worker_busy_ms: Vec<u64>,
    /// Per-cell wall time + deterministic scheduler counters.
    cell_timings: Vec<CellTiming>,
}

struct Options {
    filters: Vec<String>,
    threads: Option<usize>,
    trace: bool,
    list: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        filters: Vec::new(),
        threads: None,
        trace: false,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--filter" => {
                let value = args.next().unwrap_or_else(|| die("--filter needs a value"));
                options.filters.push(value);
            }
            "--threads" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| die("--threads needs a value"));
                let n: usize = value
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
                options.threads = Some(n);
            }
            "--trace" => options.trace = true,
            "--list" => options.list = true,
            "--help" | "-h" => {
                println!(
                    "usage: overload [--filter NAME]... [--threads N] [--trace] [--list]\n\
                     \n\
                     Runs the overload sweep ({{BP, PBPL, PBPL(degraded),\n\
                     PBPL(overload)}} x every fault scenario incl. the\n\
                     correlated flash_crowd / cascading_squeeze, plus a planet\n\
                     m100 flash-crowd block) and writes results/overload.json\n\
                     (deterministic) and results/BENCH_overload.json (timings).\n\
                     --filter keeps cells whose exact name\n\
                     'scenario/strategy' (planet block: 'scenario@m100/strategy')\n\
                     equals NAME (repeatable, OR; --list prints every name).\n\
                     Every cell is traced and replayed through the extended\n\
                     oracle; violations fail the run. --trace exports\n\
                     results/overload_trace.jsonl.\n\
                     Env: PC_DURATION_MS, PC_REPLICATES, PC_SEED, PC_THREADS,\n\
                     PC_TRACE_CAP."
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    options
}

fn die(msg: &str) -> ! {
    eprintln!("overload: {msg} (try --help)");
    std::process::exit(2);
}

fn main() {
    let options = parse_args();
    let mut protocol = Protocol::from_env();
    if let Some(threads) = options.threads {
        protocol.threads = threads;
    }

    // Exact-name filters (scale-runner semantics): several cell names
    // are prefixes of others ("flash_crowd/PBPL" vs
    // "flash_crowd/PBPL(overload)"), so substring matching would make
    // the narrower cell unselectable on its own.
    let cells: Vec<OverloadCellSpec> = overload_cells(protocol.replicates)
        .into_iter()
        .filter(|cell| {
            let name = overload_cell_name(cell);
            options.filters.is_empty() || options.filters.iter().any(|f| name == f.as_str())
        })
        .collect();

    if options.list {
        let mut seen = std::collections::BTreeSet::new();
        for cell in &cells {
            let name = overload_cell_name(cell);
            if seen.insert(name.clone()) {
                println!("{name}");
            }
        }
        return;
    }
    if cells.is_empty() {
        die("no cell matches the given --filter (names are exact; see --list)");
    }

    let duration_ms = protocol.duration.as_nanos() / 1_000_000;
    println!(
        "overload: {} cell(s), {} ms horizon, {} replicate(s), seed {}, {} thread(s)",
        cells.len(),
        duration_ms,
        protocol.replicates,
        protocol.base_seed,
        protocol.threads
    );

    // JSONL export opened up front so an unwritable results dir fails
    // before the sweep runs.
    let mut trace_out = if options.trace {
        std::fs::create_dir_all("results")
            .unwrap_or_else(|e| die(&format!("cannot create results dir: {e}")));
        let path = std::path::Path::new("results").join("overload_trace.jsonl");
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        Some((path, std::io::BufWriter::new(file)))
    } else {
        None
    };

    let started = Instant::now();
    let (results, dispatch) = execute_overload_costed(&protocol, &cells, protocol.threads);
    let total_wall_ms = started.elapsed().as_millis() as u64;

    let mut oracle_failures: Vec<String> = Vec::new();
    let mut reports = Vec::with_capacity(cells.len());
    println!(
        "{:<24} {:<16} {:>9} {:>8} {:>7} {:>8} {:>7} {:>8}",
        "scenario", "strategy", "items", "shed", "shed%", "windows", "misses", "wakeups"
    );
    for (cell, (metrics, log)) in cells.iter().zip(&results) {
        let seed = protocol.base_seed + cell.replicate as u64;
        let name = overload_cell_name(cell);
        let report = overload_oracle(log);
        for violation in report.violations {
            oracle_failures.push(format!("{name} seed={seed}: {violation}"));
        }
        // The non-overload panel rows must never shed: the layer is
        // opt-in per cell, and a nonzero count here would mean the knob
        // leaked across cells.
        if !cell.overload && metrics.items_shed != 0 {
            oracle_failures.push(format!(
                "{name} seed={seed}: shed {} items with overload control disabled",
                metrics.items_shed
            ));
        }
        let row = overload_cell_report(&protocol, cell, metrics, log);
        println!(
            "{:<24} {:<16} {:>9} {:>8} {:>6.2}% {:>8} {:>7} {:>8}",
            match cell.point {
                OverloadPoint::Chaos => row.scenario.clone(),
                OverloadPoint::PlanetM100 => format!("{}@m100", row.scenario),
            },
            row.strategy,
            row.items_consumed,
            row.items_shed,
            row.shed_pct,
            row.overload_windows,
            row.deadline_misses,
            row.wakeups
        );
        if let Some((path, out)) = trace_out.as_mut() {
            let point = cell.point.grid();
            let meta = CellMeta {
                experiment: match cell.point {
                    OverloadPoint::Chaos => format!("overload_{}", cell.scenario.name()),
                    OverloadPoint::PlanetM100 => {
                        format!("overload_{}_m100", cell.scenario.name())
                    }
                },
                strategy: overload_strategy_label(&cell.strategy, cell.overload),
                pairs: point.pairs as u64,
                cores: point.cores as u64,
                buffer: point.buffer as u64,
                seed,
                duration_ns: protocol.duration.as_nanos(),
                workload: match cell.point {
                    OverloadPoint::Chaos => replay::worldcup_workload_label(&protocol.trace)
                        .unwrap_or_else(|| {
                            die("trace config matches no named workload — unreplayable")
                        })
                        .to_string(),
                    OverloadPoint::PlanetM100 => "planet_scale".to_string(),
                },
                scenario: cell.scenario.name().to_string(),
                period_ns: oracle::strategy_period_ns(&cell.strategy),
                events: log.events.len() as u64,
                dropped: log.dropped,
                digest: log.digest(),
            };
            writeln!(out, "{}", oracle::line_to_json(&TraceLine::Cell(meta)))
                .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
            for ev in &log.events {
                writeln!(out, "{}", oracle::line_to_json(&TraceLine::Ev(ev.clone())))
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
            }
        }
        reports.push(row);
    }

    save_json(
        "overload",
        &OverloadReport {
            schema_version: 1,
            duration_ms,
            replicates: protocol.replicates,
            base_seed: protocol.base_seed,
            trace_mean_rate: protocol.trace.mean_rate,
            cells: reports,
        },
    );
    save_json(
        "BENCH_overload",
        &OverloadTiming {
            schema_version: 4,
            threads: protocol.threads,
            cells: cells.len(),
            filters: options.filters.clone(),
            total_wall_ms,
            utilization: dispatch.utilization(total_wall_ms),
            worker_busy_ms: dispatch.worker_busy_ms.clone(),
            cell_timings: cells
                .iter()
                .zip(&results)
                .zip(&dispatch.cell_wall_ms)
                .map(|((cell, (metrics, _)), &cell_wall)| CellTiming {
                    cell: format!(
                        "{} seed={}",
                        overload_cell_name(cell),
                        protocol.base_seed + cell.replicate as u64
                    ),
                    wall_ms: cell_wall,
                    scheduler: {
                        // Closed scheduler ledger — shedding must not
                        // unbalance it (shed items still ride the
                        // arrival calendar; DESIGN.md §14, §15).
                        assert!(
                            metrics.scheduler.ledger_balanced(),
                            "scheduler ledger out of balance: {:?}",
                            metrics.scheduler
                        );
                        metrics.scheduler
                    },
                })
                .collect(),
        },
    );
    if let Some((path, mut out)) = trace_out {
        out.flush()
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        println!("[saved {}]", path.display());
    }

    if oracle_failures.is_empty() {
        let events: u64 = results.iter().map(|(_, log)| log.events.len() as u64).sum();
        println!("overload: replay oracle clean over {events} events");
    } else {
        for failure in &oracle_failures {
            eprintln!("overload: ORACLE VIOLATION: {failure}");
        }
        eprintln!(
            "overload: replay oracle found {} violation(s)",
            oracle_failures.len()
        );
        std::process::exit(1);
    }
    println!("overload: done in {total_wall_ms} ms");
}

//! Unified suite runner — every figure/table experiment in one binary,
//! executed on the parallel sweep engine.
//!
//! ```text
//! cargo run --release -p pc-bench --bin suite -- [--filter SUBSTR]...
//!     [--threads N] [--trace] [--list]
//! ```
//!
//! Writes two files under `results/`:
//!
//! * `suite.json` — schema-versioned, per-cell metrics with the energy
//!   reading as raw `f64` bits. **Byte-identical for any `--threads`
//!   value at the same seed** — the CI determinism gate runs the suite
//!   twice (`--threads 4`, then `--threads 1`) and fails the build on
//!   any byte difference. Nothing timing- or thread-dependent may ever
//!   be added to this file.
//! * `BENCH_suite.json` — wall-clock per experiment and thread count.
//!   Timing lives here precisely so it stays *out* of `suite.json`.
//!
//! With `--trace`, every cell additionally records a structured event
//! trace: the streams are exported to `results/suite_trace.jsonl` (a
//! `CellMeta` header line then the cell's events, in canonical cell
//! order — thread-count independent like everything else) and each cell
//! is checked by the replay oracle (`pc_bench::oracle`); any violation
//! fails the run. Recording is purely observational, so `suite.json` is
//! byte-identical with and without `--trace` — the determinism gate
//! checks that too.
//!
//! `PC_DURATION_MS`, `PC_REPLICATES`, `PC_SEED`, `PC_THREADS` and
//! `PC_TRACE_CAP` apply as everywhere else; `--threads` overrides
//! `PC_THREADS`.

use pc_bench::exp::{
    evaluated_strategies, print_header, print_row, save_json, single_pc_strategies, Protocol, Row,
};
use pc_bench::oracle::{self, CellMeta, TraceLine};
use pc_bench::replay;
use pc_bench::sweep::{
    execute_costed, execute_traced_costed, CellSpec, CellTiming, GridPoint, SweepSpec,
};
use pc_core::{PbplConfig, StrategyKind};
use pc_sim::SimDuration;
use serde::Serialize;
use std::io::Write;
use std::time::Instant;

/// One named experiment: a sweep spec under a figure/table name.
struct ExperimentDef {
    name: &'static str,
    spec: SweepSpec,
}

/// Everything the suite runs, in fixed order.
fn experiments(protocol: &Protocol) -> Vec<ExperimentDef> {
    let mean_rate = protocol.trace.mean_rate;
    let evaluated = evaluated_strategies();

    // Fig. 3/4's seven single-pair strategies, plus the §III-C jitter
    // sweep (PBP/SPBP with the period tightened toward the nanosleep
    // jitter scale).
    let mut single = single_pc_strategies(50, mean_rate);
    for period_ms in [27u64, 9, 3] {
        let period = SimDuration::from_millis(period_ms);
        single.push(StrategyKind::Pbp { period });
        single.push(StrategyKind::Spbp { period });
    }

    vec![
        ExperimentDef {
            name: "fig03_04_single_pc",
            spec: SweepSpec {
                strategies: single,
                points: vec![GridPoint {
                    pairs: 1,
                    cores: 1,
                    buffer: 50,
                }],
            },
        },
        ExperimentDef {
            name: "fig09_five_consumers",
            spec: SweepSpec {
                strategies: evaluated.clone(),
                points: vec![GridPoint {
                    pairs: 5,
                    cores: 2,
                    buffer: 25,
                }],
            },
        },
        ExperimentDef {
            name: "fig10_consumer_sweep",
            spec: SweepSpec {
                strategies: evaluated,
                points: [2usize, 5, 10]
                    .iter()
                    .map(|&pairs| GridPoint {
                        pairs,
                        cores: 2,
                        buffer: 25,
                    })
                    .collect(),
            },
        },
        ExperimentDef {
            name: "fig11_buffer_sweep",
            spec: SweepSpec {
                strategies: vec![StrategyKind::Bp, StrategyKind::pbpl_default()],
                points: [25usize, 50, 100]
                    .iter()
                    .map(|&buffer| GridPoint {
                        pairs: 5,
                        cores: 2,
                        buffer,
                    })
                    .collect(),
            },
        },
        ExperimentDef {
            name: "table_overflows",
            spec: SweepSpec {
                strategies: vec![StrategyKind::Bp, StrategyKind::pbpl_default()],
                points: vec![GridPoint {
                    pairs: 5,
                    cores: 2,
                    buffer: 50,
                }],
            },
        },
        ExperimentDef {
            name: "table_buffer_usage",
            spec: SweepSpec {
                strategies: vec![
                    StrategyKind::pbpl_default(),
                    StrategyKind::Pbpl(PbplConfig {
                        resizing: false,
                        ..PbplConfig::default()
                    }),
                ],
                points: vec![GridPoint {
                    pairs: 5,
                    cores: 2,
                    buffer: 50,
                }],
            },
        },
    ]
}

/// Display label disambiguating parameterised strategies within an
/// experiment (periods in µs; fixed-capacity PBPL variant tagged).
fn strategy_label(strategy: &StrategyKind) -> String {
    match strategy {
        StrategyKind::Pbp { period } => format!("PBP@{}us", period.as_nanos() / 1_000),
        StrategyKind::Spbp { period } => format!("SPBP@{}us", period.as_nanos() / 1_000),
        StrategyKind::Pbpl(cfg) if !cfg.resizing => "PBPL(fixed)".to_string(),
        other => other.name().to_string(),
    }
}

#[derive(Serialize)]
struct CellReport {
    strategy: String,
    pairs: usize,
    cores: usize,
    buffer: usize,
    seed: u64,
    /// Raw bits of the energy reading — the exact-equality currency of
    /// the determinism contract (never compare the float itself).
    energy_j_bits: u64,
    energy_j: f64,
    items_produced: u64,
    items_consumed: u64,
    wakeups: u64,
    scheduled_wakeups: u64,
    overflow_wakeups: u64,
    slot_fires: u64,
    mean_capacity: f64,
    mean_latency_us: f64,
}

#[derive(Serialize)]
struct ExperimentReport {
    name: String,
    cells: Vec<CellReport>,
}

#[derive(Serialize)]
struct SuiteReport {
    /// Bump on any change to this file's structure.
    schema_version: u32,
    duration_ms: u64,
    replicates: usize,
    base_seed: u64,
    trace_mean_rate: f64,
    experiments: Vec<ExperimentReport>,
}

#[derive(Serialize)]
struct ExperimentTiming {
    name: String,
    cells: usize,
    wall_ms: u64,
    /// Worker busy share over this experiment's dispatch interval
    /// (Σ busy / (threads × wall); 1.0 = no idle worker).
    utilization: f64,
    /// Per-worker busy milliseconds for this experiment's dispatch.
    worker_busy_ms: Vec<u64>,
    /// Per-cell wall time + deterministic scheduler counters.
    cell_timings: Vec<CellTiming>,
}

#[derive(Serialize)]
struct SuiteTiming {
    /// v2: added `filters`, per-experiment `utilization` /
    /// `worker_busy_ms` / `cell_timings` (scheduler counters).
    /// v3: `QueueStats` gained the arrival-calendar counters
    /// (`arrivals_scheduled` / `arrivals_popped`) and
    /// `pending_at_teardown` (DESIGN.md §14).
    /// v4: `QueueStats` gained `items_shed` (overload control,
    /// DESIGN.md §15; zero whenever the layer is disabled — always,
    /// for the suite's paper-default cells).
    schema_version: u32,
    threads: usize,
    /// Active `--filter` values (empty = full suite), so a checked-in
    /// sidecar can never masquerade as a full run.
    filters: Vec<String>,
    total_wall_ms: u64,
    experiments: Vec<ExperimentTiming>,
}

struct Options {
    filters: Vec<String>,
    threads: Option<usize>,
    trace: bool,
    list: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        filters: Vec::new(),
        threads: None,
        trace: false,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--filter" => {
                let value = args.next().unwrap_or_else(|| die("--filter needs a value"));
                options.filters.push(value);
            }
            "--threads" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| die("--threads needs a value"));
                let n: usize = value
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
                options.threads = Some(n);
            }
            "--trace" => options.trace = true,
            "--list" => options.list = true,
            "--help" | "-h" => {
                println!(
                    "usage: suite [--filter SUBSTR]... [--threads N] [--trace] [--list]\n\
                     \n\
                     Runs every figure/table experiment on the parallel sweep\n\
                     engine and writes results/suite.json (deterministic) and\n\
                     results/BENCH_suite.json (timings). --filter keeps only\n\
                     experiments whose name contains SUBSTR (repeatable, OR).\n\
                     --trace records per-cell event streams, replays the\n\
                     oracle over each (violations fail the run) and exports\n\
                     results/suite_trace.jsonl; suite.json is unaffected.\n\
                     Env: PC_DURATION_MS, PC_REPLICATES, PC_SEED, PC_THREADS,\n\
                     PC_TRACE_CAP."
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    options
}

fn die(msg: &str) -> ! {
    eprintln!("suite: {msg} (try --help)");
    std::process::exit(2);
}

fn main() {
    let options = parse_args();
    let mut protocol = Protocol::from_env();
    if let Some(threads) = options.threads {
        protocol.threads = threads;
    }

    let selected: Vec<ExperimentDef> = experiments(&protocol)
        .into_iter()
        .filter(|e| {
            options.filters.is_empty()
                || options.filters.iter().any(|f| e.name.contains(f.as_str()))
        })
        .collect();

    if options.list {
        for e in &selected {
            println!(
                "{:<22} {:>3} cells",
                e.name,
                e.spec.cells(protocol.replicates).len()
            );
        }
        return;
    }
    if selected.is_empty() {
        die("no experiment matches the given --filter");
    }

    let duration_ms = protocol.duration.as_nanos() / 1_000_000;
    println!(
        "suite: {} experiment(s), {} ms horizon, {} replicate(s), seed {}, {} thread(s)",
        selected.len(),
        duration_ms,
        protocol.replicates,
        protocol.base_seed,
        protocol.threads
    );

    // JSONL trace export, opened up front so an unwritable results dir
    // fails before an hour of simulation, written incrementally in the
    // engine's canonical cell order (thread-count independent).
    let mut trace_out = if options.trace {
        std::fs::create_dir_all("results")
            .unwrap_or_else(|e| die(&format!("cannot create results dir: {e}")));
        let path = std::path::Path::new("results").join("suite_trace.jsonl");
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        Some((path, std::io::BufWriter::new(file)))
    } else {
        None
    };
    let mut oracle_failures: Vec<String> = Vec::new();
    let mut traced_events: u64 = 0;

    let suite_start = Instant::now();
    let mut reports = Vec::new();
    let mut timings = Vec::new();
    for def in &selected {
        let cells = def.spec.cells(protocol.replicates);
        let started = Instant::now();
        let (runs, logs, dispatch) = if options.trace {
            let (traced, dispatch) = execute_traced_costed(&protocol, &cells, protocol.threads);
            let mut runs = Vec::with_capacity(traced.len());
            let mut logs = Vec::with_capacity(traced.len());
            for (m, log) in traced {
                runs.push(m);
                logs.push(log);
            }
            (runs, logs, dispatch)
        } else {
            let (runs, dispatch) = execute_costed(&protocol, &cells, protocol.threads);
            (runs, Vec::new(), dispatch)
        };
        let wall_ms = started.elapsed().as_millis() as u64;

        if let Some((path, out)) = trace_out.as_mut() {
            for (cell, log) in cells.iter().zip(&logs) {
                let meta = CellMeta {
                    experiment: def.name.to_string(),
                    strategy: strategy_label(&cell.strategy),
                    pairs: cell.point.pairs as u64,
                    cores: cell.point.cores as u64,
                    buffer: cell.point.buffer as u64,
                    seed: protocol.base_seed + cell.replicate as u64,
                    duration_ns: protocol.duration.as_nanos(),
                    workload: replay::worldcup_workload_label(&protocol.trace)
                        .unwrap_or_else(|| {
                            die("trace config matches no named workload — unreplayable")
                        })
                        .to_string(),
                    scenario: String::new(),
                    period_ns: oracle::strategy_period_ns(&cell.strategy),
                    events: log.events.len() as u64,
                    dropped: log.dropped,
                    digest: log.digest(),
                };
                let label = format!(
                    "{} {} M={} B={} seed={}",
                    def.name, meta.strategy, meta.pairs, meta.buffer, meta.seed
                );
                writeln!(out, "{}", oracle::line_to_json(&TraceLine::Cell(meta)))
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
                for ev in &log.events {
                    writeln!(out, "{}", oracle::line_to_json(&TraceLine::Ev(ev.clone())))
                        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
                }
                traced_events += log.events.len() as u64;
                let report = oracle::check(log);
                for violation in report.violations {
                    oracle_failures.push(format!("{label}: {violation}"));
                }
            }
        }

        // Per-configuration summary table, replicates grouped in the
        // engine's canonical cell order.
        print_header(def.name);
        for (chunk_index, group) in runs.chunks(protocol.replicates).enumerate() {
            let cell = &cells[chunk_index * protocol.replicates];
            let mut row = Row::from_runs(group);
            row.name = format!(
                "{} M={} B={}",
                strategy_label(&cell.strategy),
                cell.point.pairs,
                cell.point.buffer
            );
            print_row(&row);
        }

        reports.push(ExperimentReport {
            name: def.name.to_string(),
            cells: cells
                .iter()
                .zip(&runs)
                .map(|(cell, m)| cell_report(&protocol, cell, m))
                .collect(),
        });
        timings.push(ExperimentTiming {
            name: def.name.to_string(),
            cells: cells.len(),
            wall_ms,
            utilization: dispatch.utilization(wall_ms),
            worker_busy_ms: dispatch.worker_busy_ms.clone(),
            cell_timings: cells
                .iter()
                .zip(&runs)
                .zip(&dispatch.cell_wall_ms)
                .map(|((cell, m), &cell_wall)| CellTiming {
                    cell: format!(
                        "{} M={} B={} seed={}",
                        strategy_label(&cell.strategy),
                        cell.point.pairs,
                        cell.point.buffer,
                        protocol.base_seed + cell.replicate as u64
                    ),
                    wall_ms: cell_wall,
                    scheduler: {
                        // Closed scheduler ledger: scheduled events are
                        // popped, cancelled, or pending at teardown —
                        // nothing may vanish silently (DESIGN.md §14).
                        assert!(
                            m.scheduler.ledger_balanced(),
                            "scheduler ledger out of balance: {:?}",
                            m.scheduler
                        );
                        m.scheduler
                    },
                })
                .collect(),
        });
    }

    let report = SuiteReport {
        schema_version: 1,
        duration_ms,
        replicates: protocol.replicates,
        base_seed: protocol.base_seed,
        trace_mean_rate: protocol.trace.mean_rate,
        experiments: reports,
    };
    save_json("suite", &report);

    let total_wall_ms = suite_start.elapsed().as_millis() as u64;
    save_json(
        "BENCH_suite",
        &SuiteTiming {
            schema_version: 4,
            threads: protocol.threads,
            filters: options.filters.clone(),
            total_wall_ms,
            experiments: timings,
        },
    );

    if let Some((path, mut out)) = trace_out {
        out.flush()
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        println!("[saved {}] ({traced_events} events)", path.display());
        if oracle_failures.is_empty() {
            println!("suite: replay oracle clean over {traced_events} events");
        } else {
            for failure in &oracle_failures {
                eprintln!("suite: ORACLE VIOLATION: {failure}");
            }
            eprintln!(
                "suite: replay oracle found {} violation(s)",
                oracle_failures.len()
            );
            std::process::exit(1);
        }
    }
    println!("suite: done in {total_wall_ms} ms");
}

fn cell_report(protocol: &Protocol, cell: &CellSpec, m: &pc_core::RunMetrics) -> CellReport {
    CellReport {
        strategy: strategy_label(&cell.strategy),
        pairs: cell.point.pairs,
        cores: cell.point.cores,
        buffer: cell.point.buffer,
        seed: protocol.base_seed + cell.replicate as u64,
        energy_j_bits: m.energy.energy_j.to_bits(),
        energy_j: m.energy.energy_j,
        items_produced: m.items_produced,
        items_consumed: m.items_consumed,
        wakeups: m.energy.wakeups,
        scheduled_wakeups: m.scheduled_wakeups(),
        overflow_wakeups: m.overflow_wakeups(),
        slot_fires: m.slot_fires,
        mean_capacity: m.mean_capacity(),
        mean_latency_us: m.mean_latency().as_secs_f64() * 1e6,
    }
}

//! Calibration sensitivity — how robust are the conclusions to the one
//! constant everything hinges on, the wakeup energy ω?
//!
//! The paper's entire argument rests on wakeups being expensive (Eq. 3,
//! Fig. 1). This sweep scales ω from a quarter to four times the
//! calibrated 120 µJ and watches the strategy gaps: if the orderings only
//! held at one magic ω, the reproduction would be fragile; if the PBPL
//! advantage grows monotonically with ω (and dies as ω → 0), the
//! mechanism is exactly the paper's.

use pc_bench::exp::{pct_change, save_json, Protocol};
use pc_core::{Experiment, StrategyKind};
use pc_power::PowerModel;
use serde::Serialize;

#[derive(Serialize)]
struct SensitivityPoint {
    omega_uj: f64,
    mutex_mw: f64,
    bp_mw: f64,
    pbpl_mw: f64,
    pbpl_vs_mutex_pct: f64,
    pbpl_vs_bp_pct: f64,
}

fn main() {
    let protocol = Protocol::from_env();
    let base = PowerModel::exynos_like();

    println!("=== wakeup-energy sensitivity (M = 5, B = 25) ===");
    println!(
        "{:>8} | {:>9} | {:>9} | {:>9} | {:>13} | {:>12}",
        "ω (µJ)", "Mutex mW", "BP mW", "PBPL mW", "PBPL vs Mutex", "PBPL vs BP"
    );

    let mut points = Vec::new();
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut model = base.clone();
        model.wakeup_energy_j = base.wakeup_energy_j * factor;
        let run = |strategy: StrategyKind| {
            let samples: Vec<f64> = (0..protocol.replicates)
                .map(|k| {
                    Experiment::builder()
                        .pairs(5)
                        .cores(2)
                        .duration(protocol.duration)
                        .strategy(strategy.clone())
                        .trace(protocol.trace.clone())
                        .seed(protocol.base_seed + k as u64)
                        .buffer_capacity(25)
                        .power(model.clone())
                        .run()
                        .extra_power_mw()
                })
                .collect();
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        let mutex = run(StrategyKind::Mutex);
        let bp = run(StrategyKind::Bp);
        let pbpl = run(StrategyKind::pbpl_default());
        let point = SensitivityPoint {
            omega_uj: model.wakeup_energy_j * 1e6,
            mutex_mw: mutex,
            bp_mw: bp,
            pbpl_mw: pbpl,
            pbpl_vs_mutex_pct: pct_change(pbpl, mutex),
            pbpl_vs_bp_pct: pct_change(pbpl, bp),
        };
        println!(
            "{:>8.0} | {:>9.1} | {:>9.1} | {:>9.1} | {:>+12.1}% | {:>+11.1}%",
            point.omega_uj,
            point.mutex_mw,
            point.bp_mw,
            point.pbpl_mw,
            point.pbpl_vs_mutex_pct,
            point.pbpl_vs_bp_pct
        );
        points.push(point);
    }

    // The premise check: the PBPL-vs-BP gap must widen as wakeups get
    // more expensive (more negative percentage at higher ω).
    let first = points.first().expect("swept");
    let last = points.last().expect("swept");
    println!(
        "\nPBPL-vs-BP gap: {:+.1}% at ω = {:.0} µJ → {:+.1}% at ω = {:.0} µJ — {}",
        first.pbpl_vs_bp_pct,
        first.omega_uj,
        last.pbpl_vs_bp_pct,
        last.omega_uj,
        if last.pbpl_vs_bp_pct < first.pbpl_vs_bp_pct {
            "the advantage scales with wakeup cost, as the paper's premise requires"
        } else {
            "UNEXPECTED: the advantage does not scale with wakeup cost"
        }
    );

    save_json("sensitivity", &points);
}

//! Native queue throughput sweep — the perf-trajectory benchmark.
//!
//! Pumps a fixed item count through each queue implementation on real
//! threads and reports items/s and ns/item per cell of
//! {strategy} × {pair count} × {batch size}:
//!
//! * `mutex` — the §III-A Mutex queue, one lock per item on both sides
//!   (the baseline the batched paths are measured against).
//! * `sem`   — the §III-A Sem queue, one semaphore transaction per item.
//! * `bp`    — BP-shaped batching on the Mutex queue: the producer still
//!   pushes item-at-a-time (a replayed arrival stream has no batches to
//!   offer), but the consumer takes the whole session in one lock via
//!   `pop_timeout_drain`. The queue capacity doubles as the batch bound.
//! * `spsc`  — the lock-free ring; batch 1 is `push`/`pop`, larger
//!   batches use `push_slice`/`pop_chunk` (one atomic store per batch).
//!
//! A second family of cells exercises the *sharded* coordination layout
//! (DESIGN.md §11) at fleet scale, M ∈ {10, 100, 1000}:
//!
//! * `mutex_sharded` / `sem_sharded` — per-pair queues hashed onto
//!   `SHARDS` shard consumers (pair i → shard i mod S); each shard
//!   thread sweeps its pairs and drains whole sessions in one
//!   lock/semaphore transaction. Producers are *paced* (fixed-rate
//!   bursts), so a cell's aggregate items/s measures how much fleet
//!   load the shard layer sustains, not how fast one pair can spin —
//!   which is what makes the M=100 : M=10 aggregate ratio meaningful
//!   even on a small host. Paced cells pump [`PACED_ITEMS`] per pair
//!   regardless of `--items`, and report `batch` 0 (drain-everything)
//!   and their shard count in the `shards` field (0 = unsharded).
//!
//! Output goes to `results/BENCH_throughput.json`. **Timings only**: like
//! `BENCH_suite.json` this file is host-dependent by nature and is
//! explicitly *outside* the determinism gate — nothing here may ever
//! feed into `results/suite.json`.
//!
//! Knobs: `--items N` / `PC_TP_ITEMS` (items per pair, default 200 000;
//! CI smoke uses 20 000), `--filter SUBSTR` (cell label substring),
//! `--list` (print the selected cell labels without running).

use pc_queues::{spsc_ring, Backoff, MutexQueue, SemQueue};
use serde::Serialize;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Consumers poll with this timeout so a stalled cell cannot hang the
/// whole sweep silently.
const POLL: Duration = Duration::from_millis(100);

/// Shard-consumer count of the `*_sharded` cells (pair i → shard i mod
/// this).
const SHARDS: usize = 8;

/// Paced producers emit one burst per tick…
const PACE_TICK: Duration = Duration::from_millis(5);
/// …of this many items — 4 000 items/s per pair.
const PACE_BURST: u64 = 20;
/// Items per pair of the paced sharded cells (~0.4 s of pacing); fixed
/// rather than `--items`-driven so the cell's wall time stays bounded.
const PACED_ITEMS: u64 = 1_500;

/// Idle nap of a shard consumer whose sweep found every queue empty.
const SHARD_NAP: Duration = Duration::from_micros(500);

#[derive(Serialize, Clone)]
struct Cell {
    strategy: &'static str,
    pairs: usize,
    batch: usize,
    /// Shard-consumer count; 0 for the unsharded pair-per-consumer cells.
    shards: usize,
    items_total: u64,
    wall_ms: f64,
    /// Thread spawn + queue allocation cost, which the start barrier
    /// keeps *out* of `wall_ms`. Stamped so nobody mistakes a cell's
    /// measured window for its full cost (or vice versa) when comparing
    /// strategies whose setup differs.
    setup_ms: f64,
    items_per_sec: f64,
    ns_per_item: f64,
}

#[derive(Serialize)]
struct Report {
    /// v2: added `filters` (active `--filter`, empty = full sweep) —
    /// a checked-in sidecar can never masquerade as a full run. The
    /// `--items`/`PC_TP_ITEMS` knob was already stamped via
    /// `items_per_pair`.
    /// v3: per-cell `setup_ms` (spawn/alloc cost outside the timed
    /// window, previously unrecorded).
    schema_version: u32,
    items_per_pair: u64,
    filters: Vec<String>,
    note: &'static str,
    cells: Vec<Cell>,
}

/// Runs `pairs` producer/consumer thread pairs, each pumping `items`
/// values through its own queue endpoints built by `make`, and returns
/// the wall time from the start barrier to the last consumer finishing.
fn run_cell<P, C>(pairs: usize, items: u64, make: impl Fn() -> (P, C)) -> Duration
where
    P: FnMut(u64) + Send + 'static,
    C: FnMut(u64) -> u64 + Send + 'static,
{
    // Everyone (plus the timer) starts together so thread spawn cost
    // stays out of the measurement.
    let barrier = Arc::new(Barrier::new(2 * pairs + 1));
    let mut handles = Vec::with_capacity(2 * pairs);
    for _ in 0..pairs {
        let (mut produce, mut consume) = make();
        let b = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            b.wait();
            for i in 0..items {
                produce(i);
            }
        }));
        let b = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            b.wait();
            let got = consume(items);
            assert_eq!(got, items, "consumer lost items");
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("throughput worker panicked");
    }
    start.elapsed()
}

/// Mutex strategy: one lock acquisition per item on both endpoints.
fn cell_mutex(pairs: usize, items: u64) -> Duration {
    run_cell(pairs, items, || {
        let q = Arc::new(MutexQueue::<u64>::new(1024));
        let qp = Arc::clone(&q);
        (
            move |v| {
                qp.push(v);
            },
            move |n| {
                let mut got = 0u64;
                while got < n {
                    if q.pop_timeout(POLL).is_some() {
                        got += 1;
                    }
                }
                got
            },
        )
    })
}

/// Sem strategy: one items+slots semaphore transaction per item.
fn cell_sem(pairs: usize, items: u64) -> Duration {
    run_cell(pairs, items, || {
        let (qp, qc) = SemQueue::<u64>::new(1024);
        (
            move |v| {
                qp.push(v);
            },
            move |n| {
                let mut got = 0u64;
                while got < n {
                    if qc.pop_timeout(POLL).is_some() {
                        got += 1;
                    }
                }
                got
            },
        )
    })
}

/// BP-shaped batching: per-item producer, session-draining consumer.
/// The queue capacity bounds the batch, as the BP buffer does.
fn cell_bp(pairs: usize, items: u64, batch: usize) -> Duration {
    run_cell(pairs, items, move || {
        let q = Arc::new(MutexQueue::<u64>::new(batch));
        let qp = Arc::clone(&q);
        (
            move |v| {
                qp.push(v);
            },
            move |n| {
                let mut got = 0u64;
                let mut out = Vec::with_capacity(batch);
                while got < n {
                    out.clear();
                    if let Some((k, _)) = q.pop_timeout_drain(POLL, &mut out) {
                        got += k as u64;
                    }
                }
                got
            },
        )
    })
}

/// SPSC ring. Batch 1 exercises the single-item cached-cursor path;
/// larger batches the `push_slice`/`pop_chunk` pair. All stall loops
/// back off and yield — on a single-core host unbounded spinning would
/// just burn the peer's scheduler quantum.
fn cell_spsc(pairs: usize, items: u64, batch: usize) -> Duration {
    run_cell(pairs, items, move || {
        let (p, c) = spsc_ring::<u64>(1024.max(batch));
        let produce = move |v: u64| {
            if batch == 1 {
                let mut backoff = Backoff::new();
                let mut v = v;
                while let Err(back) = p.push(v) {
                    v = back;
                    backoff.snooze();
                }
            } else {
                // Stage a batch locally, ship it with one Release store.
                // The closure is called per item, so stage through a
                // thread-local buffer captured by the closure.
                STAGE.with(|s| {
                    let mut stage = s.borrow_mut();
                    stage.push(v);
                    // Flush on a full batch, and on the final item so a
                    // trailing partial batch is never stranded.
                    if stage.len() >= batch || v + 1 == items {
                        let mut backoff = Backoff::new();
                        let mut sent = 0;
                        while sent < stage.len() {
                            let k = p.push_slice(&stage[sent..]);
                            if k == 0 {
                                backoff.snooze();
                            } else {
                                sent += k;
                                backoff.reset();
                            }
                        }
                        stage.clear();
                    }
                });
            }
        };
        let consume = move |n: u64| {
            let mut got = 0u64;
            let mut backoff = Backoff::new();
            if batch == 1 {
                while got < n {
                    if c.pop().is_some() {
                        got += 1;
                        backoff.reset();
                    } else {
                        backoff.snooze();
                    }
                }
            } else {
                let mut out = Vec::with_capacity(batch);
                while got < n {
                    out.clear();
                    let k = c.pop_chunk(&mut out, batch);
                    if k == 0 {
                        backoff.snooze();
                    } else {
                        got += k as u64;
                        backoff.reset();
                    }
                }
            }
            got
        };
        (produce, consume)
    })
}

thread_local! {
    static STAGE: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs a paced sharded cell: `pairs` rate-limited producers (one thread
/// each, `PACE_BURST` items every `PACE_TICK`) feeding per-pair queues,
/// drained by `SHARDS` shard-consumer threads that sweep the queues
/// hashed to them (pair i → shard i mod `SHARDS`) and take whole
/// sessions per transaction. Returns the wall time from the start
/// barrier to the last shard finishing.
fn run_paced_sharded<P, C>(
    pairs: usize,
    items: u64,
    make: impl Fn() -> (P, C),
    push: impl Fn(&P, u64) + Send + Sync + Clone + 'static,
    drain: impl Fn(&C, &mut Vec<u64>) -> usize + Send + Sync + Clone + 'static,
) -> Duration
where
    P: Send + 'static,
    C: Send + 'static,
{
    let shards = SHARDS.min(pairs);
    let barrier = Arc::new(Barrier::new(pairs + shards + 1));
    let mut producers = Vec::with_capacity(pairs);
    let mut shard_queues: Vec<Vec<C>> = (0..shards).map(|_| Vec::new()).collect();
    for i in 0..pairs {
        let (p, c) = make();
        shard_queues[i % shards].push(c);
        let b = Arc::clone(&barrier);
        let push = push.clone();
        producers.push(thread::spawn(move || {
            b.wait();
            let start = Instant::now();
            let mut sent = 0u64;
            let mut tick = 0u32;
            while sent < items {
                let due = start + PACE_TICK * tick;
                let wait = due.saturating_duration_since(Instant::now());
                if !wait.is_zero() {
                    thread::sleep(wait);
                }
                let burst = PACE_BURST.min(items - sent);
                for k in 0..burst {
                    push(&p, sent + k);
                }
                sent += burst;
                tick += 1;
            }
        }));
    }
    let mut consumers = Vec::with_capacity(shards);
    for queues in shard_queues {
        let expected = items * queues.len() as u64;
        let b = Arc::clone(&barrier);
        let drain = drain.clone();
        consumers.push(thread::spawn(move || {
            b.wait();
            let mut got = 0u64;
            let mut out = Vec::new();
            while got < expected {
                let mut progress = 0usize;
                for c in &queues {
                    progress += drain(c, &mut out);
                    out.clear();
                }
                got += progress as u64;
                if progress == 0 {
                    thread::sleep(SHARD_NAP);
                }
            }
            got
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in producers {
        h.join().expect("paced producer panicked");
    }
    let mut got = 0u64;
    for h in consumers {
        got += h.join().expect("shard consumer panicked");
    }
    let wall = start.elapsed();
    assert_eq!(got, items * pairs as u64, "shard consumers lost items");
    wall
}

/// Sharded Mutex: per-pair `MutexQueue`s, shard consumers draining each
/// sweep stop with one non-blocking lock per queue.
fn cell_mutex_sharded(pairs: usize, items: u64) -> Duration {
    run_paced_sharded(
        pairs,
        items,
        || {
            let q = Arc::new(MutexQueue::<u64>::new(256));
            (Arc::clone(&q), q)
        },
        |q, v| {
            q.push(v);
        },
        |q, out| q.drain_into(out),
    )
}

/// Sharded Sem: per-pair `SemQueue`s (the endpoints stay SPSC — the
/// shard consumer is the queue's only popper), drained a whole
/// accounted-for session per semaphore transaction.
fn cell_sem_sharded(pairs: usize, items: u64) -> Duration {
    run_paced_sharded(
        pairs,
        items,
        || SemQueue::<u64>::new(256),
        |q, v| {
            q.push(v);
        },
        |q, out| {
            q.pop_timeout_drain(Duration::ZERO, out)
                .map_or(0, |(n, _)| n)
        },
    )
}

fn main() {
    let mut items: u64 = std::env::var("PC_TP_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let mut filter = String::new();
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--items" => {
                items = args.next().and_then(|v| v.parse().ok()).expect("--items N");
            }
            "--filter" => {
                filter = args.next().expect("--filter SUBSTR");
            }
            "--list" => list = true,
            other => {
                eprintln!(
                    "unknown arg {other}; usage: throughput [--items N] [--filter SUBSTR] [--list]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(items > 0, "need at least one item");

    let pair_counts = [1usize, 2, 5, 10];
    // (strategy, batches): Mutex/Sem are defined per-item; BP's batch is
    // its buffer capacity; SPSC gets batch 1 as the unbatched reference.
    let plan: Vec<(&'static str, Vec<usize>)> = vec![
        ("mutex", vec![1]),
        ("sem", vec![1]),
        ("bp", vec![16, 64, 256]),
        ("spsc", vec![1, 16, 64, 256]),
    ];
    // Paced fleet cells on the sharded consumer layout; batch 0 =
    // drain-everything sessions.
    let sharded_pair_counts = [10usize, 100, 1000];
    let sharded_plan = ["mutex_sharded", "sem_sharded"];

    // (label, strategy, pairs, batch, shards) in run order.
    let mut selected: Vec<(String, &'static str, usize, usize, usize)> = Vec::new();
    for (strategy, batches) in &plan {
        for &batch in batches {
            for &pairs in &pair_counts {
                let label = format!("{strategy}/p{pairs}/b{batch}");
                if filter.is_empty() || label.contains(&filter) {
                    selected.push((label, strategy, pairs, batch, 0));
                }
            }
        }
    }
    for strategy in &sharded_plan {
        for &pairs in &sharded_pair_counts {
            let shards = SHARDS.min(pairs);
            let label = format!("{strategy}/p{pairs}/b0/s{shards}");
            if filter.is_empty() || label.contains(&filter) {
                selected.push((label, strategy, pairs, 0, shards));
            }
        }
    }

    if list {
        for (label, ..) in &selected {
            println!("{label}");
        }
        return;
    }

    let mut cells = Vec::new();
    println!("{items} items per pair ({PACED_ITEMS} paced for sharded cells)\n");
    println!(
        "{:<14} {:>5} {:>6} {:>6} {:>12} {:>14} {:>10}",
        "strategy", "pairs", "batch", "shards", "wall_ms", "items/s", "ns/item"
    );
    for (_, strategy, pairs, batch, shards) in &selected {
        let (pairs, batch, shards) = (*pairs, *batch, *shards);
        let cell_started = Instant::now();
        let wall = match *strategy {
            "mutex" => cell_mutex(pairs, items),
            "sem" => cell_sem(pairs, items),
            "bp" => cell_bp(pairs, items, batch),
            "mutex_sharded" => cell_mutex_sharded(pairs, PACED_ITEMS),
            "sem_sharded" => cell_sem_sharded(pairs, PACED_ITEMS),
            _ => cell_spsc(pairs, items, batch),
        };
        // Everything the barrier fenced off the measurement: thread
        // spawn and queue allocation (plus join teardown noise).
        let setup = cell_started.elapsed().saturating_sub(wall);
        let cell_items = if shards > 0 { PACED_ITEMS } else { items };
        let total = cell_items * pairs as u64;
        let secs = wall.as_secs_f64();
        let cell = Cell {
            strategy,
            pairs,
            batch,
            shards,
            items_total: total,
            wall_ms: secs * 1e3,
            setup_ms: setup.as_secs_f64() * 1e3,
            items_per_sec: total as f64 / secs,
            ns_per_item: secs * 1e9 / total as f64,
        };
        println!(
            "{:<14} {:>5} {:>6} {:>6} {:>12.2} {:>14.0} {:>10.1}",
            cell.strategy,
            cell.pairs,
            cell.batch,
            cell.shards,
            cell.wall_ms,
            cell.items_per_sec,
            cell.ns_per_item
        );
        cells.push(cell);
    }

    // Headline: the batched ring against the per-item Mutex baseline.
    let mutex_1 = cells
        .iter()
        .find(|c| c.strategy == "mutex" && c.pairs == 1)
        .map(|c| c.items_per_sec);
    let spsc_best = cells
        .iter()
        .filter(|c| c.strategy == "spsc" && c.pairs == 1 && c.batch > 1)
        .map(|c| c.items_per_sec)
        .fold(f64::NAN, f64::max);
    if let Some(base) = mutex_1 {
        if spsc_best.is_finite() {
            println!(
                "\nSPSC batched vs Mutex at 1 pair: {:.1}x ({:.0} vs {:.0} items/s)",
                spsc_best / base,
                spsc_best,
                base
            );
        }
    }

    // Headline: sharded fleet scaling — the paced M=100 cell must
    // sustain a multiple of the paced M=10 cell's aggregate (the CI
    // acceptance bar is ≥5×; pacing makes the ideal exactly 10×).
    for strategy in &sharded_plan {
        let at = |pairs: usize| {
            cells
                .iter()
                .find(|c| c.strategy == *strategy && c.pairs == pairs)
                .map(|c| c.items_per_sec)
        };
        if let (Some(m10), Some(m100)) = (at(10), at(100)) {
            println!(
                "{strategy} fleet scaling M=10 -> M=100: {:.1}x ({:.0} -> {:.0} items/s)",
                m100 / m10,
                m10,
                m100
            );
        }
    }

    pc_bench::exp::save_json(
        "BENCH_throughput",
        &Report {
            schema_version: 3,
            items_per_pair: items,
            filters: if filter.is_empty() {
                Vec::new()
            } else {
                vec![filter]
            },
            note: "wall-clock timings; host-dependent by design, outside the determinism gate",
            cells,
        },
    );
}

//! Native queue throughput sweep — the perf-trajectory benchmark.
//!
//! Pumps a fixed item count through each queue implementation on real
//! threads and reports items/s and ns/item per cell of
//! {strategy} × {pair count} × {batch size}:
//!
//! * `mutex` — the §III-A Mutex queue, one lock per item on both sides
//!   (the baseline the batched paths are measured against).
//! * `sem`   — the §III-A Sem queue, one semaphore transaction per item.
//! * `bp`    — BP-shaped batching on the Mutex queue: the producer still
//!   pushes item-at-a-time (a replayed arrival stream has no batches to
//!   offer), but the consumer takes the whole session in one lock via
//!   `pop_timeout_drain`. The queue capacity doubles as the batch bound.
//! * `spsc`  — the lock-free ring; batch 1 is `push`/`pop`, larger
//!   batches use `push_slice`/`pop_chunk` (one atomic store per batch).
//!
//! Output goes to `results/BENCH_throughput.json`. **Timings only**: like
//! `BENCH_suite.json` this file is host-dependent by nature and is
//! explicitly *outside* the determinism gate — nothing here may ever
//! feed into `results/suite.json`.
//!
//! Knobs: `--items N` / `PC_TP_ITEMS` (items per pair, default 200 000;
//! CI smoke uses 20 000), `--filter SUBSTR` (cell label substring).

use pc_queues::{spsc_ring, Backoff, MutexQueue, SemQueue};
use serde::Serialize;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Consumers poll with this timeout so a stalled cell cannot hang the
/// whole sweep silently.
const POLL: Duration = Duration::from_millis(100);

#[derive(Serialize, Clone)]
struct Cell {
    strategy: &'static str,
    pairs: usize,
    batch: usize,
    items_total: u64,
    wall_ms: f64,
    items_per_sec: f64,
    ns_per_item: f64,
}

#[derive(Serialize)]
struct Report {
    schema_version: u32,
    items_per_pair: u64,
    note: &'static str,
    cells: Vec<Cell>,
}

/// Runs `pairs` producer/consumer thread pairs, each pumping `items`
/// values through its own queue endpoints built by `make`, and returns
/// the wall time from the start barrier to the last consumer finishing.
fn run_cell<P, C>(pairs: usize, items: u64, make: impl Fn() -> (P, C)) -> Duration
where
    P: FnMut(u64) + Send + 'static,
    C: FnMut(u64) -> u64 + Send + 'static,
{
    // Everyone (plus the timer) starts together so thread spawn cost
    // stays out of the measurement.
    let barrier = Arc::new(Barrier::new(2 * pairs + 1));
    let mut handles = Vec::with_capacity(2 * pairs);
    for _ in 0..pairs {
        let (mut produce, mut consume) = make();
        let b = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            b.wait();
            for i in 0..items {
                produce(i);
            }
        }));
        let b = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            b.wait();
            let got = consume(items);
            assert_eq!(got, items, "consumer lost items");
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("throughput worker panicked");
    }
    start.elapsed()
}

/// Mutex strategy: one lock acquisition per item on both endpoints.
fn cell_mutex(pairs: usize, items: u64) -> Duration {
    run_cell(pairs, items, || {
        let q = Arc::new(MutexQueue::<u64>::new(1024));
        let qp = Arc::clone(&q);
        (
            move |v| {
                qp.push(v);
            },
            move |n| {
                let mut got = 0u64;
                while got < n {
                    if q.pop_timeout(POLL).is_some() {
                        got += 1;
                    }
                }
                got
            },
        )
    })
}

/// Sem strategy: one items+slots semaphore transaction per item.
fn cell_sem(pairs: usize, items: u64) -> Duration {
    run_cell(pairs, items, || {
        let (qp, qc) = SemQueue::<u64>::new(1024);
        (
            move |v| {
                qp.push(v);
            },
            move |n| {
                let mut got = 0u64;
                while got < n {
                    if qc.pop_timeout(POLL).is_some() {
                        got += 1;
                    }
                }
                got
            },
        )
    })
}

/// BP-shaped batching: per-item producer, session-draining consumer.
/// The queue capacity bounds the batch, as the BP buffer does.
fn cell_bp(pairs: usize, items: u64, batch: usize) -> Duration {
    run_cell(pairs, items, move || {
        let q = Arc::new(MutexQueue::<u64>::new(batch));
        let qp = Arc::clone(&q);
        (
            move |v| {
                qp.push(v);
            },
            move |n| {
                let mut got = 0u64;
                let mut out = Vec::with_capacity(batch);
                while got < n {
                    out.clear();
                    if let Some((k, _)) = q.pop_timeout_drain(POLL, &mut out) {
                        got += k as u64;
                    }
                }
                got
            },
        )
    })
}

/// SPSC ring. Batch 1 exercises the single-item cached-cursor path;
/// larger batches the `push_slice`/`pop_chunk` pair. All stall loops
/// back off and yield — on a single-core host unbounded spinning would
/// just burn the peer's scheduler quantum.
fn cell_spsc(pairs: usize, items: u64, batch: usize) -> Duration {
    run_cell(pairs, items, move || {
        let (p, c) = spsc_ring::<u64>(1024.max(batch));
        let produce = move |v: u64| {
            if batch == 1 {
                let mut backoff = Backoff::new();
                let mut v = v;
                while let Err(back) = p.push(v) {
                    v = back;
                    backoff.snooze();
                }
            } else {
                // Stage a batch locally, ship it with one Release store.
                // The closure is called per item, so stage through a
                // thread-local buffer captured by the closure.
                STAGE.with(|s| {
                    let mut stage = s.borrow_mut();
                    stage.push(v);
                    // Flush on a full batch, and on the final item so a
                    // trailing partial batch is never stranded.
                    if stage.len() >= batch || v + 1 == items {
                        let mut backoff = Backoff::new();
                        let mut sent = 0;
                        while sent < stage.len() {
                            let k = p.push_slice(&stage[sent..]);
                            if k == 0 {
                                backoff.snooze();
                            } else {
                                sent += k;
                                backoff.reset();
                            }
                        }
                        stage.clear();
                    }
                });
            }
        };
        let consume = move |n: u64| {
            let mut got = 0u64;
            let mut backoff = Backoff::new();
            if batch == 1 {
                while got < n {
                    if c.pop().is_some() {
                        got += 1;
                        backoff.reset();
                    } else {
                        backoff.snooze();
                    }
                }
            } else {
                let mut out = Vec::with_capacity(batch);
                while got < n {
                    out.clear();
                    let k = c.pop_chunk(&mut out, batch);
                    if k == 0 {
                        backoff.snooze();
                    } else {
                        got += k as u64;
                        backoff.reset();
                    }
                }
            }
            got
        };
        (produce, consume)
    })
}

thread_local! {
    static STAGE: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn main() {
    let mut items: u64 = std::env::var("PC_TP_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let mut filter = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--items" => {
                items = args.next().and_then(|v| v.parse().ok()).expect("--items N");
            }
            "--filter" => {
                filter = args.next().expect("--filter SUBSTR");
            }
            other => {
                eprintln!("unknown arg {other}; usage: throughput [--items N] [--filter SUBSTR]");
                std::process::exit(2);
            }
        }
    }
    assert!(items > 0, "need at least one item");

    let pair_counts = [1usize, 2, 5, 10];
    // (strategy, batches): Mutex/Sem are defined per-item; BP's batch is
    // its buffer capacity; SPSC gets batch 1 as the unbatched reference.
    let plan: Vec<(&'static str, Vec<usize>)> = vec![
        ("mutex", vec![1]),
        ("sem", vec![1]),
        ("bp", vec![16, 64, 256]),
        ("spsc", vec![1, 16, 64, 256]),
    ];

    let mut cells = Vec::new();
    println!("{items} items per pair\n");
    println!(
        "{:<8} {:>5} {:>6} {:>12} {:>14} {:>10}",
        "strategy", "pairs", "batch", "wall_ms", "items/s", "ns/item"
    );
    for (strategy, batches) in &plan {
        for &batch in batches {
            for &pairs in &pair_counts {
                let label = format!("{strategy}/p{pairs}/b{batch}");
                if !filter.is_empty() && !label.contains(&filter) {
                    continue;
                }
                let wall = match *strategy {
                    "mutex" => cell_mutex(pairs, items),
                    "sem" => cell_sem(pairs, items),
                    "bp" => cell_bp(pairs, items, batch),
                    _ => cell_spsc(pairs, items, batch),
                };
                let total = items * pairs as u64;
                let secs = wall.as_secs_f64();
                let cell = Cell {
                    strategy,
                    pairs,
                    batch,
                    items_total: total,
                    wall_ms: secs * 1e3,
                    items_per_sec: total as f64 / secs,
                    ns_per_item: secs * 1e9 / total as f64,
                };
                println!(
                    "{:<8} {:>5} {:>6} {:>12.2} {:>14.0} {:>10.1}",
                    cell.strategy,
                    cell.pairs,
                    cell.batch,
                    cell.wall_ms,
                    cell.items_per_sec,
                    cell.ns_per_item
                );
                cells.push(cell);
            }
        }
    }

    // Headline: the batched ring against the per-item Mutex baseline.
    let mutex_1 = cells
        .iter()
        .find(|c| c.strategy == "mutex" && c.pairs == 1)
        .map(|c| c.items_per_sec);
    let spsc_best = cells
        .iter()
        .filter(|c| c.strategy == "spsc" && c.pairs == 1 && c.batch > 1)
        .map(|c| c.items_per_sec)
        .fold(f64::NAN, f64::max);
    if let Some(base) = mutex_1 {
        if spsc_best.is_finite() {
            println!(
                "\nSPSC batched vs Mutex at 1 pair: {:.1}x ({:.0} vs {:.0} items/s)",
                spsc_best / base,
                spsc_best,
                base
            );
        }
    }

    pc_bench::exp::save_json(
        "BENCH_throughput",
        &Report {
            schema_version: 1,
            items_per_pair: items,
            note: "wall-clock timings; host-dependent by design, outside the determinism gate",
            cells,
        },
    );
}

//! Predictor accuracy study — grounding the §VIII future-work claim.
//!
//! The paper uses a moving average "for the simplicity of its
//! calculation" and names Kalman filtering as future work for "better
//! accuracy". This experiment measures each estimator directly: feed it
//! the per-interval item counts a PBPL consumer would observe on the
//! web-log workload and score its one-step-ahead rate predictions
//! against the realised rates (RMSE and mean absolute percentage error),
//! plus the operational consequence — how often the prediction
//! undershoots enough to overflow a paper-sized buffer.

use pc_bench::exp::{save_json, Protocol};
use pc_core::{Ewma, Holt, Kalman, MovingAverage, RatePredictor};
use pc_sim::{SimDuration, SimTime};
use serde::Serialize;

#[derive(Serialize)]
struct AccuracyRow {
    predictor: String,
    rmse_items_per_sec: f64,
    mape_pct: f64,
    undershoot_overflow_pct: f64,
}

fn score(
    name: &str,
    mut predictor: Box<dyn RatePredictor>,
    counts: &[(u64, SimDuration)],
    buffer: usize,
) -> AccuracyRow {
    let mut se = 0.0;
    let mut ape = 0.0;
    let mut overflows = 0usize;
    let mut scored = 0usize;
    for w in counts.windows(2) {
        let (items, dt) = w[0];
        predictor.observe(items, dt);
        let predicted = predictor.rate();
        let (next_items, next_dt) = w[1];
        let actual = next_items as f64 / next_dt.as_secs_f64();
        se += (predicted - actual) * (predicted - actual);
        if actual > 0.0 {
            ape += ((predicted - actual) / actual).abs();
        }
        // Operational test: the consumer sizes its buffer for the
        // predicted fill (margin 1.15, as in PbplConfig::default); an
        // actual fill beyond that is an overflow.
        let sized = (predicted * next_dt.as_secs_f64() * 1.15).ceil().max(1.0);
        let cap = sized.min(buffer as f64 * 2.0); // pool-capped
        if next_items as f64 > cap {
            overflows += 1;
        }
        scored += 1;
    }
    AccuracyRow {
        predictor: name.to_string(),
        rmse_items_per_sec: (se / scored as f64).sqrt(),
        mape_pct: ape / scored as f64 * 100.0,
        undershoot_overflow_pct: overflows as f64 / scored as f64 * 100.0,
    }
}

fn main() {
    let protocol = Protocol::from_env();
    let mut cfg = protocol.trace.clone();
    cfg.horizon = SimTime::ZERO + protocol.duration;
    let interval = SimDuration::from_millis(25); // one slot per observation

    let mut rows: Vec<AccuracyRow> = Vec::new();
    type PredictorFactory = Box<dyn Fn() -> Box<dyn RatePredictor>>;
    let predictors: Vec<(&str, PredictorFactory)> = vec![
        ("MA(h=4)", Box::new(|| Box::new(MovingAverage::new(4, 0.0)))),
        ("MA(h=8)", Box::new(|| Box::new(MovingAverage::new(8, 0.0)))),
        (
            "MA(h=16)",
            Box::new(|| Box::new(MovingAverage::new(16, 0.0))),
        ),
        ("EWMA(0.35)", Box::new(|| Box::new(Ewma::new(0.35, 0.0)))),
        (
            "Kalman",
            Box::new(|| Box::new(Kalman::new(4.0e5, 4.0e6, 0.0))),
        ),
        ("Holt", Box::new(|| Box::new(Holt::new(0.5, 0.25, 0.0)))),
    ];

    // Average scores across replicate traces.
    let mut accum: Vec<AccuracyRow> = Vec::new();
    for k in 0..protocol.replicates {
        let trace = cfg.generate(protocol.base_seed + k as u64);
        // Per-interval observed counts, exactly what a slot-paced
        // consumer sees.
        let mut counts = Vec::new();
        let mut t = SimTime::ZERO;
        while t < trace.horizon() {
            let end = t.saturating_add(interval).min(trace.horizon());
            counts.push((trace.count_between(t, end) as u64, end.since(t)));
            t = end;
        }
        for (name, make) in &predictors {
            let row = score(name, make(), &counts, 25);
            accum.push(row);
        }
    }
    for (name, _) in &predictors {
        let mine: Vec<&AccuracyRow> = accum.iter().filter(|r| &r.predictor == name).collect();
        let n = mine.len() as f64;
        rows.push(AccuracyRow {
            predictor: name.to_string(),
            rmse_items_per_sec: mine.iter().map(|r| r.rmse_items_per_sec).sum::<f64>() / n,
            mape_pct: mine.iter().map(|r| r.mape_pct).sum::<f64>() / n,
            undershoot_overflow_pct: mine.iter().map(|r| r.undershoot_overflow_pct).sum::<f64>()
                / n,
        });
    }

    println!("=== predictor accuracy on the web-log workload (25 ms observation intervals) ===");
    println!(
        "{:>11} | {:>14} | {:>9} | {:>16}",
        "predictor", "RMSE (items/s)", "MAPE", "overflow risk"
    );
    for r in &rows {
        println!(
            "{:>11} | {:>14.0} | {:>8.1}% | {:>15.1}%",
            r.predictor, r.rmse_items_per_sec, r.mape_pct, r.undershoot_overflow_pct
        );
    }
    println!(
        "\nReading: lower RMSE/MAPE = better §V-C prediction; overflow risk is the\n\
         operational consequence the paper cares about (unscheduled wakeups)."
    );
    save_json("predictor_accuracy", &rows);
}

//! Ablations — isolating the contribution of each PBPL design choice
//! (our extension of the paper's evaluation; §VIII motivates the Kalman
//! variant as future work).
//!
//! 1. Latching on/off: without latching PBPL degrades to per-consumer
//!    periodic batching — the group-wakeup mechanism's whole value.
//! 2. Dynamic resizing on/off: the overflow-conversion mechanism.
//! 3. Predictor: the paper's moving average vs EWMA vs a scalar Kalman
//!    filter.
//! 4. Slot size Δ: the latency/power trade-off.

use pc_bench::exp::{pct_change, print_header, print_row, save_json, Protocol, Row};
use pc_core::{Experiment, PbplConfig, PredictorKind, StrategyKind};
use pc_power::GovernorKind;
use pc_sim::SimDuration;

fn run_variant(protocol: &Protocol, label: &str, cfg: PbplConfig, rows: &mut Vec<(String, Row)>) {
    let runs = protocol.run(StrategyKind::Pbpl(cfg), 5, 2, 25);
    let mut row = Row::from_runs(&runs);
    row.name = label.to_string();
    print_row(&row);
    rows.push((label.to_string(), row));
}

fn main() {
    let protocol = Protocol::from_env();
    let mut rows: Vec<(String, Row)> = Vec::new();

    print_header("Ablations — PBPL variants (M = 5, B = 25)");
    run_variant(&protocol, "full", PbplConfig::default(), &mut rows);
    run_variant(
        &protocol,
        "-latch",
        PbplConfig {
            latching: false,
            ..PbplConfig::default()
        },
        &mut rows,
    );
    run_variant(
        &protocol,
        "-piggy",
        PbplConfig {
            piggyback: false,
            ..PbplConfig::default()
        },
        &mut rows,
    );
    run_variant(
        &protocol,
        "-resize",
        PbplConfig {
            resizing: false,
            ..PbplConfig::default()
        },
        &mut rows,
    );
    run_variant(
        &protocol,
        "-both",
        PbplConfig {
            latching: false,
            resizing: false,
            ..PbplConfig::default()
        },
        &mut rows,
    );
    run_variant(
        &protocol,
        "ewma",
        PbplConfig {
            predictor: PredictorKind::Ewma { alpha: 0.35 },
            ..PbplConfig::default()
        },
        &mut rows,
    );
    run_variant(
        &protocol,
        "holt",
        PbplConfig {
            predictor: PredictorKind::Holt {
                alpha: 0.5,
                beta: 0.25,
            },
            ..PbplConfig::default()
        },
        &mut rows,
    );
    run_variant(
        &protocol,
        "kalman",
        PbplConfig {
            predictor: PredictorKind::Kalman { q: 4.0e5, r: 4.0e6 },
            ..PbplConfig::default()
        },
        &mut rows,
    );
    for slot_ms in [10u64, 50] {
        run_variant(
            &protocol,
            &format!("d={slot_ms}ms"),
            PbplConfig {
                slot: SimDuration::from_millis(slot_ms),
                ..PbplConfig::default()
            },
            &mut rows,
        );
    }

    let full = rows
        .iter()
        .find(|(l, _)| l == "full")
        .map(|(_, r)| r.power_mw.mean)
        .expect("full row");
    println!("\n--- power deltas vs full PBPL ---");
    for (label, row) in &rows {
        if label != "full" {
            println!(
                "{label:>8}: {:+.1}% power, {:+.1}% wakeups",
                pct_change(row.power_mw.mean, full),
                pct_change(
                    row.wakeups_per_sec.mean,
                    rows.iter()
                        .find(|(l, _)| l == "full")
                        .map(|(_, r)| r.wakeups_per_sec.mean)
                        .expect("full row")
                ),
            );
        }
    }

    // Governor realism check: the oracle accounting above is post-hoc
    // optimal; a menu-like predictive governor pays for mispredicted
    // idles. Grouped wakeups (PBPL) make idle lengths regular, so the
    // realistic governor should lose *less* on PBPL than on Mutex.
    println!("\n--- menu governor penalty (realistic cpuidle vs oracle accounting) ---");
    let menu_penalty = |strategy: StrategyKind| {
        let run = |gov| {
            let runs: Vec<f64> = (0..protocol.replicates)
                .map(|k| {
                    Experiment::builder()
                        .pairs(5)
                        .cores(2)
                        .duration(protocol.duration)
                        .strategy(strategy.clone())
                        .trace(protocol.trace.clone())
                        .seed(protocol.base_seed + k as u64)
                        .buffer_capacity(25)
                        .governor(gov)
                        .run()
                        .extra_power_mw()
                })
                .collect();
            runs.iter().sum::<f64>() / runs.len() as f64
        };
        let oracle = run(GovernorKind::Oracle);
        let menu = run(GovernorKind::Menu);
        (oracle, menu, pct_change(menu, oracle))
    };
    for strategy in [
        StrategyKind::Mutex,
        StrategyKind::Bp,
        StrategyKind::pbpl_default(),
    ] {
        let name = strategy.name();
        let (oracle, menu, pct) = menu_penalty(strategy);
        println!("{name:>6}: oracle {oracle:>7.1} mW  menu {menu:>7.1} mW  penalty {pct:+.1}%");
    }

    let named: Vec<Row> = rows.into_iter().map(|(_, r)| r).collect();
    save_json("ablations", &named);
}

//! Replay oracle: re-derives the system invariants from a recorded
//! [`TraceLog`] alone, without looking at any metric the run reported.
//!
//! The checks mirror the invariants CLAUDE.md says the tests lean on:
//!
//! 1. **Item conservation** — per pair, every produced item is accounted
//!    for by an invocation batch, the end-of-run flush, or a ledgered
//!    shed (`produced == consumed + shed`; shed is necessarily zero when
//!    overload control is disabled, because a disabled run cannot emit
//!    `ItemShed` at all — see invariant 6).
//! 2. **Elastic-pool conservation** — replaying `Buffer*` events, the sum
//!    of buffer capacities plus the pool's available units equals the
//!    pool total after *every* transaction, grants never exceed requests,
//!    and a buffer never releases capacity it does not hold. (Skipped for
//!    native traces, which carry no `Buffer*` events — cross-thread pool
//!    snapshots would race.)
//! 3. **Core-span ordering** — per core, `CoreSpan` starts are
//!    non-decreasing, spans are non-empty, and the `wakeup` flag matches
//!    an independent replay of the merge/idle-gap rule of
//!    `Core::add_active_span`.
//! 4. **Reservation consistency** — replaying the slot book, every
//!    `SlotReserve` reports the consumer's true previous slot, every
//!    `SlotRelease` names the slot actually held, and every consumer a
//!    `SlotDispatch` wakes holds a live reservation for that exact slot
//!    (which the dispatch then consumes, mirroring `take_due`).
//! 5. **Fault-window pairing** — every `FaultInjected` is eventually
//!    matched by a `FaultRecovered` with the same id and kind (the sim
//!    recovers still-open windows before teardown), ids never overlap
//!    while active, and a `pool_squeeze` returns exactly the units it
//!    grabbed. Squeezed units count toward pool conservation, so the
//!    Σ capacities + squeezed + available == total ledger balances
//!    through every fault.
//! 6. **Overload-window pairing** — every `OverloadEntered` is matched
//!    by an `OverloadCleared` for the same pair (teardown force-clears
//!    open windows), windows never nest, every `ItemShed` falls inside
//!    an open window of its pair, and each `OverloadCleared` reports
//!    exactly the sheds replayed inside its window — so Σ `ItemShed`
//!    per pair equals Σ `OverloadCleared.shed` per pair, window by
//!    window (DESIGN.md §15).
//!
//! A truncated trace (`dropped > 0`) is reported as a violation: a
//! partial stream cannot prove conservation, and silently passing would
//! defeat the point.

use pc_trace_events::{Event, TraceEvent, TraceLog, TRACE_SCHEMA_VERSION};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of one oracle pass over a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OracleReport {
    /// Events examined.
    pub events: u64,
    /// Events the recorder discarded (capacity bound).
    pub dropped: u64,
    /// Human-readable invariant violations, in detection order. Empty
    /// means every replayed invariant held.
    pub violations: Vec<String>,
}

impl OracleReport {
    /// Whether the trace passed every check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-pair item ledger replayed from the stream.
#[derive(Default)]
struct PairLedger {
    produced: u64,
    consumed: u64,
    shed: u64,
}

/// Replays `log` and reports every invariant violation found.
pub fn check(log: &TraceLog) -> OracleReport {
    let mut violations = Vec::new();
    if log.schema_version != TRACE_SCHEMA_VERSION {
        violations.push(format!(
            "schema version {} != supported {}",
            log.schema_version, TRACE_SCHEMA_VERSION
        ));
        return OracleReport {
            events: log.events.len() as u64,
            dropped: log.dropped,
            violations,
        };
    }
    if log.dropped > 0 {
        violations.push(format!(
            "trace truncated: {} events dropped past the recorder bound — conservation unverifiable",
            log.dropped
        ));
    }

    check_items(&log.events, &mut violations);
    check_pool(&log.events, &mut violations);
    check_core_spans(&log.events, &mut violations);
    check_reservations(&log.events, &mut violations);
    check_faults(&log.events, &mut violations);
    check_overload(&log.events, &mut violations);

    OracleReport {
        events: log.events.len() as u64,
        dropped: log.dropped,
        violations,
    }
}

/// Invariant 1: per pair, Σ Produce == Σ Invoke.batch + Σ Flush.drained
/// + Σ ItemShed.
fn check_items(events: &[Event], violations: &mut Vec<String>) {
    let mut pairs: BTreeMap<u32, PairLedger> = BTreeMap::new();
    for ev in events {
        match &ev.kind {
            TraceEvent::Produce { pair } => {
                pairs.entry(*pair).or_default().produced += 1;
            }
            TraceEvent::Invoke { pair, batch, .. } => {
                pairs.entry(*pair).or_default().consumed += batch;
            }
            TraceEvent::Flush { pair, drained } => {
                pairs.entry(*pair).or_default().consumed += drained;
            }
            TraceEvent::ItemShed { pair } => {
                pairs.entry(*pair).or_default().shed += 1;
            }
            _ => {}
        }
    }
    for (pair, ledger) in &pairs {
        if ledger.produced != ledger.consumed + ledger.shed {
            violations.push(format!(
                "item conservation: pair {pair} produced {} but invocations+flush account for {} and sheds for {}",
                ledger.produced, ledger.consumed, ledger.shed
            ));
        }
    }
}

/// Invariant 2: replay every `Buffer*` transaction against the pool.
/// Sim-only — a trace with no `BufferCreate` events passes trivially.
/// `pool_squeeze` fault windows reserve units out of the pool without a
/// buffer owning them; a ledger of active squeezes keeps the
/// conservation sum balanced through each window.
fn check_pool(events: &[Event], violations: &mut Vec<String>) {
    // owner -> held capacity. Owners are unique per run (one elastic
    // buffer per PBPL pair).
    let mut held: BTreeMap<u32, u64> = BTreeMap::new();
    // fault id -> units an active pool_squeeze holds hostage.
    let mut squeezes: BTreeMap<u32, u64> = BTreeMap::new();
    let mut total: Option<u64> = None;
    for ev in events {
        let seq = ev.seq;
        match &ev.kind {
            TraceEvent::BufferCreate {
                owner,
                capacity,
                pool_available,
                pool_total,
            } => {
                match total {
                    None => total = Some(*pool_total),
                    Some(t) if t != *pool_total => {
                        violations.push(format!(
                            "pool: seq {seq} BufferCreate reports total {pool_total}, earlier events said {t}"
                        ));
                    }
                    Some(_) => {}
                }
                if held.insert(*owner, *capacity).is_some() {
                    violations.push(format!(
                        "pool: seq {seq} BufferCreate for owner {owner} which already holds capacity"
                    ));
                }
                expect_conserved(seq, &held, &squeezes, *pool_available, total, violations);
            }
            TraceEvent::BufferGrow {
                owner,
                from,
                to,
                want,
                pool_available,
            } => {
                if to < from || to > want {
                    violations.push(format!(
                        "pool: seq {seq} BufferGrow owner {owner} from {from} to {to} want {want} — grant out of range"
                    ));
                }
                match held.get_mut(owner) {
                    Some(cap) if *cap == *from => *cap = *to,
                    Some(cap) => violations.push(format!(
                        "pool: seq {seq} BufferGrow owner {owner} claims from {from}, replay holds {cap}"
                    )),
                    None => violations.push(format!(
                        "pool: seq {seq} BufferGrow for owner {owner} with no live buffer"
                    )),
                }
                expect_conserved(seq, &held, &squeezes, *pool_available, total, violations);
            }
            TraceEvent::BufferShrink {
                owner,
                from,
                to,
                pool_available,
            } => {
                if to > from {
                    violations.push(format!(
                        "pool: seq {seq} BufferShrink owner {owner} from {from} to {to} — shrink grew"
                    ));
                }
                match held.get_mut(owner) {
                    Some(cap) if *cap == *from => *cap = *to,
                    Some(cap) => violations.push(format!(
                        "pool: seq {seq} BufferShrink owner {owner} claims from {from}, replay holds {cap}"
                    )),
                    None => violations.push(format!(
                        "pool: seq {seq} BufferShrink for owner {owner} with no live buffer"
                    )),
                }
                expect_conserved(seq, &held, &squeezes, *pool_available, total, violations);
            }
            TraceEvent::BufferDestroy {
                owner,
                released,
                pool_available,
            } => {
                match held.remove(owner) {
                    Some(cap) if cap == *released => {}
                    Some(cap) => violations.push(format!(
                        "pool: seq {seq} BufferDestroy owner {owner} released {released}, replay held {cap} — double free or leak"
                    )),
                    None => violations.push(format!(
                        "pool: seq {seq} BufferDestroy for owner {owner} with no live buffer"
                    )),
                }
                expect_conserved(seq, &held, &squeezes, *pool_available, total, violations);
            }
            TraceEvent::FaultInjected {
                id,
                kind,
                param,
                pool_available,
                ..
            } => {
                // `u64::MAX` is the no-pool sentinel: nothing to replay.
                if *pool_available == u64::MAX {
                    continue;
                }
                if (kind == "pool_squeeze" || kind == "pool_squeeze_shard")
                    && squeezes.insert(*id, *param).is_some()
                {
                    violations.push(format!(
                        "pool: seq {seq} {kind} fault {id} injected while already active"
                    ));
                }
                expect_conserved(seq, &held, &squeezes, *pool_available, total, violations);
            }
            TraceEvent::FaultRecovered {
                id,
                kind,
                param,
                pool_available,
                ..
            } => {
                if *pool_available == u64::MAX {
                    continue;
                }
                if kind == "pool_squeeze" || kind == "pool_squeeze_shard" {
                    match squeezes.remove(id) {
                        Some(units) if units == *param => {}
                        Some(units) => violations.push(format!(
                            "pool: seq {seq} {kind} fault {id} returned {param} units but squeezed {units}"
                        )),
                        None => violations.push(format!(
                            "pool: seq {seq} {kind} fault {id} recovered without an active squeeze"
                        )),
                    }
                }
                expect_conserved(seq, &held, &squeezes, *pool_available, total, violations);
            }
            _ => {}
        }
    }
    for (id, units) in &squeezes {
        violations.push(format!(
            "pool: pool_squeeze fault {id} still holds {units} units at end of trace"
        ));
    }
}

/// After every pool transaction: Σ held capacities + Σ active squeezes
/// + available == total.
fn expect_conserved(
    seq: u64,
    held: &BTreeMap<u32, u64>,
    squeezes: &BTreeMap<u32, u64>,
    pool_available: u64,
    total: Option<u64>,
    violations: &mut Vec<String>,
) {
    let Some(total) = total else { return };
    let in_buffers: u64 = held.values().sum();
    let squeezed: u64 = squeezes.values().sum();
    if in_buffers + squeezed + pool_available != total {
        violations.push(format!(
            "pool conservation: seq {seq}: Σ capacities {in_buffers} + squeezed {squeezed} + available {pool_available} != total {total}"
        ));
    }
}

/// Invariant 3: per-core span ordering plus the wakeup/merge rule.
fn check_core_spans(events: &[Event], violations: &mut Vec<String>) {
    // core -> (last start, end of the open merged span).
    let mut cores: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for ev in events {
        let TraceEvent::CoreSpan {
            core,
            start_ns,
            end_ns,
            wakeup,
        } = &ev.kind
        else {
            continue;
        };
        let seq = ev.seq;
        if end_ns <= start_ns {
            violations.push(format!(
                "core {core}: seq {seq} empty or inverted span [{start_ns}, {end_ns})"
            ));
            continue;
        }
        match cores.get_mut(core) {
            None => {
                if !wakeup {
                    violations.push(format!(
                        "core {core}: seq {seq} first span did not count a wakeup"
                    ));
                }
                cores.insert(*core, (*start_ns, *end_ns));
            }
            Some((last_start, open_end)) => {
                if start_ns < last_start {
                    violations.push(format!(
                        "core {core}: seq {seq} span starts at {start_ns}, before previous start {last_start}"
                    ));
                }
                // Replay Core::add_active_span: a span at or before the
                // open end latches (no wakeup); a gap wakes the core.
                let expect_wakeup = *start_ns > *open_end;
                if *wakeup != expect_wakeup {
                    violations.push(format!(
                        "core {core}: seq {seq} wakeup flag {wakeup} but replay (open span ends {open_end}, next starts {start_ns}) expects {expect_wakeup}"
                    ));
                }
                *last_start = (*last_start).max(*start_ns);
                *open_end = if expect_wakeup {
                    *end_ns
                } else {
                    (*open_end).max(*end_ns)
                };
            }
        }
    }
}

/// Invariant 4: replay the reservation book of every core manager.
fn check_reservations(events: &[Event], violations: &mut Vec<String>) {
    // (core, consumer) -> reserved slot.
    let mut book: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for ev in events {
        let seq = ev.seq;
        match &ev.kind {
            TraceEvent::SlotReserve {
                core,
                consumer,
                slot,
                prev,
            } => {
                let replayed = book.insert((*core, *consumer), *slot);
                if replayed != *prev {
                    violations.push(format!(
                        "reservations: seq {seq} core {core} consumer {consumer} reports prev {prev:?}, replay says {replayed:?}"
                    ));
                }
            }
            TraceEvent::SlotRelease {
                core,
                consumer,
                slot,
            } => match book.remove(&(*core, *consumer)) {
                Some(held) if held == *slot => {}
                Some(held) => violations.push(format!(
                    "reservations: seq {seq} core {core} consumer {consumer} released slot {slot} but held {held}"
                )),
                None => violations.push(format!(
                    "reservations: seq {seq} core {core} consumer {consumer} released slot {slot} without a reservation"
                )),
            },
            TraceEvent::SlotDispatch {
                core,
                slot,
                consumers,
            } => {
                // A dispatch *consumes* the reservations it serves
                // (`take_due` clears the held map), so remove them from
                // the replay book as well.
                for consumer in consumers {
                    match book.remove(&(*core, *consumer)) {
                        Some(held) if held == *slot => {}
                        Some(held) => violations.push(format!(
                            "reservations: seq {seq} core {core} dispatched slot {slot} to consumer {consumer} who reserved {held}"
                        )),
                        None => violations.push(format!(
                            "reservations: seq {seq} core {core} dispatched slot {slot} to consumer {consumer} with no reservation"
                        )),
                    }
                }
            }
            _ => {}
        }
    }
}

/// Invariant 5: fault windows pair up. Injections carry fresh ids,
/// recoveries name an active id with the same kind, and nothing stays
/// open past the end of the trace (the sim recovers still-active faults
/// before teardown, so a dangling window means lost rollback).
fn check_faults(events: &[Event], violations: &mut Vec<String>) {
    // fault id -> kind of the active window.
    let mut active: BTreeMap<u32, String> = BTreeMap::new();
    for ev in events {
        let seq = ev.seq;
        match &ev.kind {
            TraceEvent::FaultInjected { id, kind, .. } => {
                if let Some(prev) = active.insert(*id, kind.clone()) {
                    violations.push(format!(
                        "faults: seq {seq} fault {id} ({kind}) injected while {prev} window with the same id is open"
                    ));
                }
            }
            TraceEvent::FaultRecovered { id, kind, .. } => match active.remove(id) {
                Some(injected) if injected == *kind => {}
                Some(injected) => violations.push(format!(
                    "faults: seq {seq} fault {id} recovered as {kind} but was injected as {injected}"
                )),
                None => violations.push(format!(
                    "faults: seq {seq} fault {id} ({kind}) recovered without an open window"
                )),
            },
            _ => {}
        }
    }
    for (id, kind) in &active {
        violations.push(format!(
            "faults: fault {id} ({kind}) still open at end of trace — rollback never ran"
        ));
    }
}

/// Invariant 6: overload windows pair up and ledger every shed. The
/// per-window check subsumes the per-pair sum: if every window's
/// `OverloadCleared.shed` matches the sheds replayed inside it, the
/// per-pair totals match too.
fn check_overload(events: &[Event], violations: &mut Vec<String>) {
    // pair -> sheds replayed inside the currently-open window.
    let mut open: BTreeMap<u32, u64> = BTreeMap::new();
    for ev in events {
        let seq = ev.seq;
        match &ev.kind {
            TraceEvent::OverloadEntered { pair, .. } => {
                let already_open = open.insert(*pair, 0).is_some();
                if already_open {
                    violations.push(format!(
                        "overload: seq {seq} pair {pair} entered overload while its window is already open"
                    ));
                }
            }
            TraceEvent::ItemShed { pair } => match open.get_mut(pair) {
                Some(n) => *n += 1,
                None => violations.push(format!(
                    "overload: seq {seq} pair {pair} shed an item outside an overload window"
                )),
            },
            TraceEvent::OverloadCleared { pair, shed } => match open.remove(pair) {
                Some(n) if n == *shed => {}
                Some(n) => violations.push(format!(
                    "overload: seq {seq} pair {pair} cleared reporting {shed} sheds, replay counted {n}"
                )),
                None => violations.push(format!(
                    "overload: seq {seq} pair {pair} cleared without an open window"
                )),
            },
            _ => {}
        }
    }
    for (pair, n) in &open {
        violations.push(format!(
            "overload: pair {pair} window still open at end of trace ({n} sheds unledgered)"
        ));
    }
}

/// Per-cell metadata line of a JSONL trace export: identifies the suite
/// cell the following [`TraceLine::Ev`] lines belong to and pins its
/// digest so `trace_report` can detect tampering or drift.
///
/// The header is also the *replay recipe*: `pc_bench::replay`
/// reconstructs the cell's full configuration from these fields alone
/// (strategy label + `period_ns`, named `workload`, `duration_ns`,
/// geometry, seed, and — for chaos cells — the `scenario` whose fault
/// plan re-expands deterministically), re-runs the simulation, and
/// compares the regenerated stream event-by-event against the
/// recording. Anything a replay needs must live here, and nothing
/// host-dependent ever may.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellMeta {
    /// Experiment id (e.g. `fig4_wakeups`).
    pub experiment: String,
    /// Strategy display name.
    pub strategy: String,
    /// Producer-consumer pairs in the cell.
    pub pairs: u64,
    /// Simulated cores.
    pub cores: u64,
    /// Base buffer capacity B₀.
    pub buffer: u64,
    /// Seed the cell ran under.
    pub seed: u64,
    /// Run horizon in sim nanoseconds.
    pub duration_ns: u64,
    /// Named workload the cell ran (`worldcup_paper`, `worldcup_quick`,
    /// `planet_scale`, `planet_quick`) — replay maps the name back to
    /// the constructor, so only registered configurations are
    /// exportable.
    pub workload: String,
    /// Fault scenario name ([`pc_faults::FaultScenario::name`]); empty
    /// for fault-free cells.
    pub scenario: String,
    /// Exact period of parameterised periodic strategies (PBP/SPBP) in
    /// nanoseconds; zero when the strategy has no period. The display
    /// label rounds to microseconds, which is too coarse to re-run.
    pub period_ns: u64,
    /// Events recorded for the cell.
    pub events: u64,
    /// Events dropped past the recorder bound.
    pub dropped: u64,
    /// FNV-1a digest of the cell's event stream
    /// ([`pc_trace_events::digest`]).
    pub digest: u64,
}

impl CellMeta {
    /// Stable single-line cell label used in reports and diagnostics.
    pub fn label(&self) -> String {
        format!(
            "{} {} M={} B={} seed={}",
            self.experiment, self.strategy, self.pairs, self.buffer, self.seed
        )
    }
}

/// The exact period of a parameterised periodic strategy, or zero — the
/// `period_ns` field of [`CellMeta`].
pub fn strategy_period_ns(strategy: &pc_core::StrategyKind) -> u64 {
    match strategy {
        pc_core::StrategyKind::Pbp { period } | pc_core::StrategyKind::Spbp { period } => {
            period.as_nanos()
        }
        _ => 0,
    }
}

/// One line of a JSONL trace export: either a cell header or an event of
/// the most recent cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceLine {
    /// Header announcing a new cell; subsequent events belong to it.
    Cell(CellMeta),
    /// One recorded event of the current cell.
    Ev(Event),
}

/// Serialises one export line as compact JSON.
pub fn line_to_json(line: &TraceLine) -> String {
    serde_json::to_string(line).expect("trace line serialisation is infallible")
}

/// Parses one export line.
pub fn line_from_json(text: &str) -> Result<TraceLine, String> {
    serde_json::from_str(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_trace_events::Trigger;

    fn log(kinds: Vec<TraceEvent>) -> TraceLog {
        TraceLog {
            schema_version: TRACE_SCHEMA_VERSION,
            events: kinds
                .into_iter()
                .enumerate()
                .map(|(i, kind)| Event {
                    seq: i as u64,
                    t_ns: i as u64 * 10,
                    kind,
                })
                .collect(),
            dropped: 0,
        }
    }

    #[test]
    fn clean_conserving_trace_passes() {
        let report = check(&log(vec![
            TraceEvent::Produce { pair: 0 },
            TraceEvent::Produce { pair: 0 },
            TraceEvent::Invoke {
                pair: 0,
                trigger: Trigger::Scheduled,
                batch: 1,
                capacity: 25,
            },
            TraceEvent::Flush {
                pair: 0,
                drained: 1,
            },
        ]));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.events, 4);
    }

    #[test]
    fn lost_item_is_reported() {
        let report = check(&log(vec![
            TraceEvent::Produce { pair: 2 },
            TraceEvent::Produce { pair: 2 },
            TraceEvent::Invoke {
                pair: 2,
                trigger: Trigger::Item,
                batch: 1,
                capacity: 0,
            },
        ]));
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("pair 2"));
    }

    #[test]
    fn truncated_trace_is_a_violation() {
        let mut l = log(vec![TraceEvent::Produce { pair: 0 }]);
        l.dropped = 10;
        // The surviving prefix also fails conservation; the truncation
        // violation must come first so readers see why.
        let report = check(&l);
        assert!(report.violations[0].contains("truncated"));
    }

    #[test]
    fn pool_replay_catches_double_free() {
        let report = check(&log(vec![
            TraceEvent::BufferCreate {
                owner: 0,
                capacity: 25,
                pool_available: 25,
                pool_total: 50,
            },
            TraceEvent::BufferDestroy {
                owner: 0,
                released: 30, // more than it held
                pool_available: 55,
            },
        ]));
        assert!(!report.is_clean());
        assert!(report.violations.iter().any(|v| v.contains("double free")));
    }

    #[test]
    fn pool_replay_checks_available_every_step() {
        let report = check(&log(vec![TraceEvent::BufferCreate {
            owner: 0,
            capacity: 25,
            pool_available: 30, // should be 25
            pool_total: 50,
        }]));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("pool conservation")));
    }

    #[test]
    fn native_trace_without_buffer_events_skips_pool_check() {
        let report = check(&log(vec![
            TraceEvent::Produce { pair: 0 },
            TraceEvent::Invoke {
                pair: 0,
                trigger: Trigger::Item,
                batch: 1,
                capacity: 0,
            },
        ]));
        assert!(report.is_clean());
    }

    #[test]
    fn span_replay_checks_order_and_wakeups() {
        // Merge then gap: flags must follow the add_active_span rule.
        let clean = check(&log(vec![
            TraceEvent::CoreSpan {
                core: 0,
                start_ns: 10,
                end_ns: 20,
                wakeup: true,
            },
            TraceEvent::CoreSpan {
                core: 0,
                start_ns: 15,
                end_ns: 30,
                wakeup: false,
            },
            TraceEvent::CoreSpan {
                core: 0,
                start_ns: 40,
                end_ns: 50,
                wakeup: true,
            },
        ]));
        assert!(clean.is_clean(), "{:?}", clean.violations);

        let out_of_order = check(&log(vec![
            TraceEvent::CoreSpan {
                core: 0,
                start_ns: 40,
                end_ns: 50,
                wakeup: true,
            },
            TraceEvent::CoreSpan {
                core: 0,
                start_ns: 10,
                end_ns: 20,
                wakeup: true,
            },
        ]));
        assert!(out_of_order
            .violations
            .iter()
            .any(|v| v.contains("before previous start")));

        let bad_flag = check(&log(vec![
            TraceEvent::CoreSpan {
                core: 1,
                start_ns: 10,
                end_ns: 20,
                wakeup: true,
            },
            TraceEvent::CoreSpan {
                core: 1,
                start_ns: 15,
                end_ns: 30,
                wakeup: true, // overlaps: should latch, not wake
            },
        ]));
        assert!(bad_flag
            .violations
            .iter()
            .any(|v| v.contains("wakeup flag")));
    }

    #[test]
    fn reservation_replay_checks_book() {
        let clean = check(&log(vec![
            TraceEvent::SlotReserve {
                core: 0,
                consumer: 1,
                slot: 4,
                prev: None,
            },
            TraceEvent::SlotDispatch {
                core: 0,
                slot: 4,
                consumers: vec![1],
            },
            // The dispatch consumed the reservation, so the next reserve
            // starts fresh.
            TraceEvent::SlotReserve {
                core: 0,
                consumer: 1,
                slot: 9,
                prev: None,
            },
            TraceEvent::SlotRelease {
                core: 0,
                consumer: 1,
                slot: 9,
            },
        ]));
        assert!(clean.is_clean(), "{:?}", clean.violations);

        let wrong_prev = check(&log(vec![TraceEvent::SlotReserve {
            core: 0,
            consumer: 1,
            slot: 4,
            prev: Some(2),
        }]));
        assert!(!wrong_prev.is_clean());

        let ghost_dispatch = check(&log(vec![TraceEvent::SlotDispatch {
            core: 0,
            slot: 4,
            consumers: vec![7],
        }]));
        assert!(ghost_dispatch
            .violations
            .iter()
            .any(|v| v.contains("no reservation")));
    }

    fn inject(id: u32, kind: &str, param: u64, pool_available: u64) -> TraceEvent {
        TraceEvent::FaultInjected {
            id,
            kind: kind.into(),
            pair: u32::MAX,
            core: u32::MAX,
            param,
            pool_available,
        }
    }

    fn recover(id: u32, kind: &str, param: u64, pool_available: u64) -> TraceEvent {
        TraceEvent::FaultRecovered {
            id,
            kind: kind.into(),
            pair: u32::MAX,
            core: u32::MAX,
            param,
            pool_available,
        }
    }

    #[test]
    fn pool_squeeze_window_conserves() {
        // 50-unit pool, one 25-cap buffer; a squeeze grabs 20 for a
        // while. Conservation must hold at every step of the window.
        let report = check(&log(vec![
            TraceEvent::BufferCreate {
                owner: 0,
                capacity: 25,
                pool_available: 25,
                pool_total: 50,
            },
            inject(3, "pool_squeeze", 20, 5),
            recover(3, "pool_squeeze", 20, 25),
            TraceEvent::BufferDestroy {
                owner: 0,
                released: 25,
                pool_available: 50,
            },
        ]));
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn pool_squeeze_leak_is_reported() {
        // The recovery claims fewer units than the squeeze grabbed.
        let report = check(&log(vec![
            TraceEvent::BufferCreate {
                owner: 0,
                capacity: 25,
                pool_available: 25,
                pool_total: 50,
            },
            inject(3, "pool_squeeze", 20, 5),
            recover(3, "pool_squeeze", 10, 15),
        ]));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("returned 10 units but squeezed 20")));
    }

    #[test]
    fn dangling_fault_window_is_reported() {
        let report = check(&log(vec![inject(0, "rate_shock", 3000, u64::MAX)]));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("still open at end of trace")));
    }

    #[test]
    fn fault_kind_mismatch_and_ghost_recovery_reported() {
        let mismatch = check(&log(vec![
            inject(1, "producer_stall", 0, u64::MAX),
            recover(1, "timer_drift", 0, u64::MAX),
        ]));
        assert!(mismatch
            .violations
            .iter()
            .any(|v| v.contains("injected as producer_stall")));

        let ghost = check(&log(vec![recover(9, "dropped_wakeup", 2, u64::MAX)]));
        assert!(ghost
            .violations
            .iter()
            .any(|v| v.contains("without an open window")));
    }

    #[test]
    fn no_pool_sentinel_skips_squeeze_ledger() {
        // Faults traced under a pool-less strategy carry the u64::MAX
        // sentinel; the pool replay must ignore them entirely.
        let report = check(&log(vec![
            inject(0, "dropped_wakeup", 0, u64::MAX),
            recover(0, "dropped_wakeup", 4, u64::MAX),
        ]));
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn shed_items_balance_conservation_inside_windows() {
        let report = check(&log(vec![
            TraceEvent::Produce { pair: 0 },
            TraceEvent::Produce { pair: 0 },
            TraceEvent::OverloadEntered {
                pair: 0,
                occupancy: 25,
                escalated: false,
            },
            TraceEvent::ItemShed { pair: 0 },
            TraceEvent::OverloadCleared { pair: 0, shed: 1 },
            TraceEvent::Flush {
                pair: 0,
                drained: 1,
            },
        ]));
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn shed_outside_a_window_is_reported() {
        let report = check(&log(vec![
            TraceEvent::Produce { pair: 0 },
            TraceEvent::ItemShed { pair: 0 },
        ]));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("outside an overload window")));
    }

    #[test]
    fn overload_window_shed_mismatch_and_dangles_reported() {
        let miscount = check(&log(vec![
            TraceEvent::Produce { pair: 1 },
            TraceEvent::OverloadEntered {
                pair: 1,
                occupancy: 10,
                escalated: true,
            },
            TraceEvent::ItemShed { pair: 1 },
            TraceEvent::OverloadCleared { pair: 1, shed: 2 },
        ]));
        assert!(miscount
            .violations
            .iter()
            .any(|v| v.contains("reporting 2 sheds, replay counted 1")));

        let dangling = check(&log(vec![TraceEvent::OverloadEntered {
            pair: 3,
            occupancy: 0,
            escalated: false,
        }]));
        assert!(dangling
            .violations
            .iter()
            .any(|v| v.contains("window still open at end of trace")));

        let ghost = check(&log(vec![TraceEvent::OverloadCleared { pair: 5, shed: 0 }]));
        assert!(ghost
            .violations
            .iter()
            .any(|v| v.contains("cleared without an open window")));
    }

    #[test]
    fn unshedded_lost_item_still_reported_with_windows_present() {
        // A window alone must not excuse a genuinely lost item.
        let report = check(&log(vec![
            TraceEvent::Produce { pair: 0 },
            TraceEvent::Produce { pair: 0 },
            TraceEvent::OverloadEntered {
                pair: 0,
                occupancy: 1,
                escalated: false,
            },
            TraceEvent::ItemShed { pair: 0 },
            TraceEvent::OverloadCleared { pair: 0, shed: 1 },
            // The second produced item is never consumed or flushed.
        ]));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("item conservation")));
    }

    #[test]
    fn trace_lines_roundtrip() {
        let lines = vec![
            TraceLine::Cell(CellMeta {
                experiment: "fig4_wakeups".into(),
                strategy: "PBPL".into(),
                pairs: 8,
                cores: 4,
                buffer: 25,
                seed: 42,
                duration_ns: 50_000_000,
                workload: "worldcup_quick".into(),
                scenario: String::new(),
                period_ns: 0,
                events: 2,
                dropped: 0,
                digest: 0xdead_beef_dead_beef,
            }),
            TraceLine::Ev(Event {
                seq: 0,
                t_ns: 99,
                kind: TraceEvent::Wakeup { pair: 3 },
            }),
        ];
        for line in lines {
            let text = line_to_json(&line);
            let back = line_from_json(&text).expect("parses");
            assert_eq!(back, line, "roundtrip mismatch for {text}");
        }
    }
}

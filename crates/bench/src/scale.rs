//! Large-M scaling experiment (DESIGN.md §11).
//!
//! The paper's evaluation stops at M = 5 pairs; this experiment drives
//! the sharded coordination layer (ShardedCoreManager + sharded
//! GlobalPool) with the planet-scale workload from `pc_trace::planet` at
//! M ∈ {10, 100, 1000} and checks that the deterministic results are a
//! pure function of `(seed, config)` — **never** of the worker-thread
//! count *or the shard count*. The CI `scale` job byte-compares
//! `results/scale.json` across `--threads {4, 1}` and across two shard
//! counts; sharding is a locking layout, not a semantics change, and
//! this file is where that contract is enforced.
//!
//! Timings (which *do* depend on threads and shards) go to
//! `results/BENCH_scale.json` only.

use crate::sweep::{
    cell_cost, parallel_map, parallel_map_costed, CellSpec, DispatchStats, GridPoint, SweepSpec,
};
use pc_core::{Experiment, RunMetrics, StrategyKind};
use pc_sim::SimDuration;
use pc_trace::{PlanetConfig, Trace};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Protocol of the scaling sweep: like `exp::Protocol` but carrying the
/// planet-fleet workload and the shard-count knob.
#[derive(Debug, Clone)]
pub struct ScaleProtocol {
    /// Run length. The planet workload's horizon is stretched to match,
    /// so the diurnal cycle always spans the whole run.
    pub duration: SimDuration,
    /// Replicates per configuration; replicate k runs with
    /// `base_seed + k` (the whole fleet is regenerated per seed).
    pub replicates: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Fleet workload template (per-pair rates, flash pairs, phases).
    pub workload: PlanetConfig,
    /// Worker threads for the sweep engine; never affects results.
    pub threads: usize,
    /// Coordination shards per manager and in the global pool; a pure
    /// locking-layout knob that never affects results (the CI scale job
    /// byte-compares `scale.json` across shard counts).
    pub shards: usize,
}

impl ScaleProtocol {
    /// Defaults with environment overrides: `PC_DURATION_MS` (default
    /// 10 000 — the scaling grid is ~90× the suite's item volume, so it
    /// gets a shorter horizon and a single replicate), `PC_REPLICATES`
    /// (default 1), `PC_SEED`, `PC_THREADS`, `PC_SHARDS` (default 8).
    pub fn from_env() -> Self {
        let duration_ms = std::env::var("PC_DURATION_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&ms: &u64| ms > 0)
            .unwrap_or(10_000u64);
        let replicates = std::env::var("PC_REPLICATES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(1usize);
        let base_seed = std::env::var("PC_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1u64);
        let shards = std::env::var("PC_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(8usize);
        let duration = SimDuration::from_millis(duration_ms);
        let mut workload = PlanetConfig::scale_default();
        workload.base.horizon = pc_sim::SimTime::ZERO + duration;
        ScaleProtocol {
            duration,
            replicates,
            base_seed,
            workload,
            threads: crate::sweep::threads_from_env(),
            shards,
        }
    }
}

/// One named grid point of the scaling experiment.
pub struct ScalePoint {
    /// Display/filter name (`m10`, `m100`, `m1000`).
    pub name: &'static str,
    /// The (pairs, cores, buffer) configuration.
    pub point: GridPoint,
}

/// The scaling grid: cores grow with M (10 pairs per core, as in the
/// paper's 5-pairs-on-2-cores ratio), buffer fixed at the paper's
/// B₀ = 25.
pub fn scale_points() -> Vec<ScalePoint> {
    vec![
        ScalePoint {
            name: "m10",
            point: GridPoint {
                pairs: 10,
                cores: 2,
                buffer: 25,
            },
        },
        ScalePoint {
            name: "m100",
            point: GridPoint {
                pairs: 100,
                cores: 10,
                buffer: 25,
            },
        },
        ScalePoint {
            name: "m1000",
            point: GridPoint {
                pairs: 1000,
                cores: 100,
                buffer: 25,
            },
        },
    ]
}

/// The four §VI implementations, evaluated at every scale point.
pub fn scale_strategies() -> Vec<StrategyKind> {
    crate::exp::evaluated_strategies()
}

/// Shared pre-generated fleets, keyed by `(pairs, replicate)`.
pub type FleetMap = BTreeMap<(usize, usize), Arc<Vec<Trace>>>;

/// Pre-generates the planet fleets a cell list needs, keyed by
/// `(pairs, replicate)` — cells that differ only in strategy share the
/// identical fleet (and the generation cost is paid once, in parallel).
///
/// Call this *outside* any timed region: fleet generation is workload
/// synthesis, not simulation, and letting it leak into a point's wall
/// clock misattributes ~100 ms to whichever cell runs first (the
/// `fleet_gen_ms` sidecar field records the real cost).
pub fn fleets(protocol: &ScaleProtocol, cells: &[CellSpec]) -> FleetMap {
    let mut keys: Vec<(usize, usize)> =
        cells.iter().map(|c| (c.point.pairs, c.replicate)).collect();
    keys.sort_unstable();
    keys.dedup();
    let generated = parallel_map(&keys, protocol.threads, |&(pairs, replicate)| {
        let seed = protocol.base_seed + replicate as u64;
        Arc::new(protocol.workload.traces(seed, pairs))
    });
    keys.into_iter().zip(generated).collect()
}

/// Runs one scaling cell: a pure function of `(protocol, cell, fleet)`.
/// The shard count is passed to the builder but is semantically inert —
/// energy bits, item counts and event streams are identical for any
/// value (see `tests/shard_invariance.rs`).
pub fn run_cell(protocol: &ScaleProtocol, cell: &CellSpec, fleet: &Arc<Vec<Trace>>) -> RunMetrics {
    Experiment::builder()
        .pairs(cell.point.pairs)
        .cores(cell.point.cores)
        .duration(protocol.duration)
        .strategy(cell.strategy.clone())
        .shared_traces(Arc::clone(fleet))
        .seed(protocol.base_seed + cell.replicate as u64)
        .buffer_capacity(cell.point.buffer)
        .shards(protocol.shards)
        .run()
}

/// Traced variant of [`run_cell`]: records the cell's event stream into
/// a bounded recorder. Recording is purely observational — the metrics
/// are bit-identical to [`run_cell`]'s, so `results/scale.json` stays
/// byte-stable under `--trace`.
pub fn run_cell_traced(
    protocol: &ScaleProtocol,
    cell: &CellSpec,
    fleet: &Arc<Vec<Trace>>,
) -> (RunMetrics, pc_trace_events::TraceLog) {
    let recorder = pc_trace_events::Recorder::bounded(crate::sweep::trace_capacity_from_env());
    let metrics = Experiment::builder()
        .pairs(cell.point.pairs)
        .cores(cell.point.cores)
        .duration(protocol.duration)
        .strategy(cell.strategy.clone())
        .shared_traces(Arc::clone(fleet))
        .seed(protocol.base_seed + cell.replicate as u64)
        .buffer_capacity(cell.point.buffer)
        .shards(protocol.shards)
        .record_events(recorder.handle())
        .run();
    (metrics, recorder.take())
}

/// Traced variant of [`execute`]: per-cell bounded recorders, results in
/// cell order whatever the thread count.
pub fn execute_traced(
    protocol: &ScaleProtocol,
    cells: &[CellSpec],
) -> Vec<(RunMetrics, pc_trace_events::TraceLog)> {
    execute_traced_costed(protocol, cells).0
}

/// [`execute_traced`] with cost-aware (LPT) dispatch: the m1000 cells
/// are claimed first so they never straggle behind a queue of cheap
/// cells. Results are byte-identical; the stats are sidecar-only.
pub fn execute_traced_costed(
    protocol: &ScaleProtocol,
    cells: &[CellSpec],
) -> (Vec<(RunMetrics, pc_trace_events::TraceLog)>, DispatchStats) {
    let fleets = fleets(protocol, cells);
    execute_traced_costed_with(protocol, cells, &fleets)
}

/// [`execute_traced_costed`] over fleets the caller already generated,
/// so harnesses can hoist generation out of their timed regions.
pub fn execute_traced_costed_with(
    protocol: &ScaleProtocol,
    cells: &[CellSpec],
    fleets: &FleetMap,
) -> (Vec<(RunMetrics, pc_trace_events::TraceLog)>, DispatchStats) {
    let costs: Vec<u64> = cells
        .iter()
        .map(|cell| cell_cost(cell, protocol.duration))
        .collect();
    parallel_map_costed(cells, protocol.threads, &costs, |cell| {
        let fleet = &fleets[&(cell.point.pairs, cell.replicate)];
        run_cell_traced(protocol, cell, fleet)
    })
}

/// Expands the scaling grid for the selected points into the sweep
/// engine's canonical cell order.
pub fn cells_for(points: &[&ScalePoint], replicates: usize) -> Vec<CellSpec> {
    let spec = SweepSpec {
        strategies: scale_strategies(),
        points: points.iter().map(|p| p.point).collect(),
    };
    spec.cells(replicates)
}

/// Runs `cells` on the engine with shared pre-generated fleets; results
/// in cell order regardless of thread count.
pub fn execute(protocol: &ScaleProtocol, cells: &[CellSpec]) -> Vec<RunMetrics> {
    execute_costed(protocol, cells).0
}

/// [`execute`] with cost-aware (LPT) dispatch and timing telemetry.
pub fn execute_costed(
    protocol: &ScaleProtocol,
    cells: &[CellSpec],
) -> (Vec<RunMetrics>, DispatchStats) {
    let fleets = fleets(protocol, cells);
    execute_costed_with(protocol, cells, &fleets)
}

/// [`execute_costed`] over fleets the caller already generated, so
/// harnesses can hoist generation out of their timed regions.
pub fn execute_costed_with(
    protocol: &ScaleProtocol,
    cells: &[CellSpec],
    fleets: &FleetMap,
) -> (Vec<RunMetrics>, DispatchStats) {
    let costs: Vec<u64> = cells
        .iter()
        .map(|cell| cell_cost(cell, protocol.duration))
        .collect();
    parallel_map_costed(cells, protocol.threads, &costs, |cell| {
        let fleet = &fleets[&(cell.point.pairs, cell.replicate)];
        run_cell(protocol, cell, fleet)
    })
}

/// Per-cell deterministic report row of `results/scale.json`.
///
/// Deliberately mirrors the suite's cell schema; **no thread or shard
/// field may ever appear here** — those live in `BENCH_scale.json`.
#[derive(Serialize)]
pub struct ScaleCellReport {
    /// Strategy display name.
    pub strategy: String,
    /// Pairs (the paper's M).
    pub pairs: usize,
    /// Cores.
    pub cores: usize,
    /// Per-consumer base buffer capacity.
    pub buffer: usize,
    /// Seed of this replicate.
    pub seed: u64,
    /// Raw bits of the energy reading — the exact-equality currency of
    /// the determinism contract.
    pub energy_j_bits: u64,
    /// Energy, joules (for humans; compare the bits).
    pub energy_j: f64,
    /// Items produced across the fleet.
    pub items_produced: u64,
    /// Items consumed (must equal produced after flush).
    pub items_consumed: u64,
    /// Core wakeups.
    pub wakeups: u64,
    /// Scheduled (timer) wakeups.
    pub scheduled_wakeups: u64,
    /// Overflow-forced wakeups.
    pub overflow_wakeups: u64,
    /// PBPL slot fires.
    pub slot_fires: u64,
    /// Mean allocated buffer capacity.
    pub mean_capacity: f64,
    /// Mean item latency, microseconds.
    pub mean_latency_us: f64,
}

/// Builds the deterministic report row for one cell.
pub fn cell_report(protocol: &ScaleProtocol, cell: &CellSpec, m: &RunMetrics) -> ScaleCellReport {
    ScaleCellReport {
        strategy: cell.strategy.name().to_string(),
        pairs: cell.point.pairs,
        cores: cell.point.cores,
        buffer: cell.point.buffer,
        seed: protocol.base_seed + cell.replicate as u64,
        energy_j_bits: m.energy.energy_j.to_bits(),
        energy_j: m.energy.energy_j,
        items_produced: m.items_produced,
        items_consumed: m.items_consumed,
        wakeups: m.energy.wakeups,
        scheduled_wakeups: m.scheduled_wakeups(),
        overflow_wakeups: m.overflow_wakeups(),
        slot_fires: m.slot_fires,
        mean_capacity: m.mean_capacity(),
        mean_latency_us: m.mean_latency().as_secs_f64() * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_protocol(threads: usize, shards: usize) -> ScaleProtocol {
        let duration = SimDuration::from_millis(60);
        let mut workload = PlanetConfig::quick_test();
        workload.base.horizon = pc_sim::SimTime::ZERO + duration;
        ScaleProtocol {
            duration,
            replicates: 1,
            base_seed: 11,
            workload,
            threads,
            shards,
        }
    }

    fn tiny_cells() -> Vec<CellSpec> {
        let spec = SweepSpec {
            strategies: scale_strategies(),
            points: vec![GridPoint {
                pairs: 6,
                cores: 2,
                buffer: 25,
            }],
        };
        spec.cells(1)
    }

    #[test]
    fn grid_is_three_points_of_four_strategies() {
        let points = scale_points();
        assert_eq!(points.len(), 3);
        assert_eq!(points[2].point.pairs, 1000);
        let refs: Vec<&ScalePoint> = points.iter().collect();
        assert_eq!(cells_for(&refs, 2).len(), 3 * 4 * 2);
    }

    #[test]
    fn neither_threads_nor_shards_change_energy_bits() {
        let cells = tiny_cells();
        let base = execute(&tiny_protocol(1, 1), &cells);
        for (threads, shards) in [(4, 1), (1, 4), (4, 3)] {
            let other = execute(&tiny_protocol(threads, shards), &cells);
            for (a, b) in base.iter().zip(&other) {
                assert_eq!(a.energy.energy_j.to_bits(), b.energy.energy_j.to_bits());
                assert_eq!(a.items_consumed, b.items_consumed);
                assert_eq!(a.energy.wakeups, b.energy.wakeups);
            }
        }
    }

    #[test]
    fn fleet_is_generated_once_per_point_and_replicate() {
        let protocol = tiny_protocol(2, 1);
        let cells = tiny_cells();
        let fleets = fleets(&protocol, &cells);
        assert_eq!(fleets.len(), 1, "4 strategies share one fleet");
        assert_eq!(fleets[&(6, 0)].len(), 6);
    }

    #[test]
    fn conservation_holds_at_scale_cells() {
        let protocol = tiny_protocol(4, 2);
        for m in execute(&protocol, &tiny_cells()) {
            assert_eq!(m.items_produced, m.items_consumed, "{}", m.strategy);
        }
    }
}

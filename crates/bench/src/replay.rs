//! Executable trace replay: re-drive a recorded cell and fail on the
//! first divergence.
//!
//! The oracle (`crate::oracle`) *verifies* a recorded stream against
//! the system invariants; this module goes the other way and *re-runs*
//! the execution the stream came from. A [`CellMeta`] header is a
//! complete replay recipe — strategy (label + exact `period_ns`),
//! named workload, horizon, geometry, seed, and the fault scenario
//! whose plan re-expands deterministically from `(scenario, seed,
//! env)` — so [`rerun_cell`] reconstructs the experiment, runs it with
//! a recorder attached, and [`first_divergence`] compares the
//! regenerated event stream against the recording event-by-event
//! (sequence number, sim time and payload all must match). The first
//! mismatch is reported wasm-rr-style with a ±[`CONTEXT_WINDOW`]-event
//! context window; `replay --digest-only` skips the per-event diff and
//! compares the FNV canonical-JSON digests instead.
//!
//! The same parser ([`parse_export`]) backs the `trace_report` and
//! `replay` binaries, and the golden fixtures under `tests/fixtures/`
//! are rendered by [`render_fixture`] from the [`fixture_defs`] table —
//! regeneration is `cargo run -p pc-bench --bin replay --
//! --regen-fixtures` (see DESIGN.md §12).

use crate::oracle::{self, CellMeta, TraceLine};
use crate::sweep::trace_capacity_from_env;
use pc_core::{Experiment, OverloadConfig, PbplConfig, StrategyKind};
use pc_faults::{ExpandEnv, FaultPlan, FaultScenario};
use pc_sim::{SimDuration, SimTime};
use pc_trace::{PlanetConfig, WorldCupConfig};
use pc_trace_events::{Event, Recorder, TraceLog};
use std::io::BufRead;
use std::path::PathBuf;

/// One cell reassembled from a JSONL export: its header plus the event
/// lines that followed it.
#[derive(Debug, Clone)]
pub struct CellTrace {
    /// The cell's header line.
    pub meta: CellMeta,
    /// The recorded events, in stream order.
    pub events: Vec<Event>,
}

impl CellTrace {
    /// The recording as a [`TraceLog`] (for the oracle).
    pub fn log(&self) -> TraceLog {
        TraceLog {
            schema_version: pc_trace_events::TRACE_SCHEMA_VERSION,
            events: self.events.clone(),
            dropped: self.meta.dropped,
        }
    }
}

/// A parse failure, located by 1-based line number so CLI callers can
/// print `path:line: message`.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Parses a JSONL trace export into cells. Blank lines are skipped;
/// an event before any cell header, an unreadable line, or malformed
/// JSON is an error with its line number.
pub fn parse_export(reader: impl BufRead) -> Result<Vec<CellTrace>, ParseError> {
    let mut cells: Vec<CellTrace> = Vec::new();
    for (index, line) in reader.lines().enumerate() {
        let lineno = index + 1;
        let line = line.map_err(|e| ParseError {
            line: lineno,
            msg: format!("read error: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        match oracle::line_from_json(&line) {
            Ok(TraceLine::Cell(meta)) => cells.push(CellTrace {
                meta,
                events: Vec::new(),
            }),
            Ok(TraceLine::Ev(ev)) => match cells.last_mut() {
                Some(cell) => cell.events.push(ev),
                None => {
                    return Err(ParseError {
                        line: lineno,
                        msg: "event before any cell header".to_string(),
                    })
                }
            },
            Err(e) => {
                return Err(ParseError {
                    line: lineno,
                    msg: format!("bad line: {e}"),
                })
            }
        }
    }
    Ok(cells)
}

/// Opens and parses a JSONL export file; errors are prefixed with
/// `path:line`.
pub fn parse_export_file(path: &str) -> Result<Vec<CellTrace>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    parse_export(std::io::BufReader::new(file)).map_err(|e| format!("{path}:{}: {}", e.line, e.msg))
}

/// The workload registry: every exportable workload is one of these
/// named configurations, compared with the horizon normalised away
/// (the experiment builder stretches the horizon to the run duration).
#[derive(Debug, Clone)]
pub enum Workload {
    /// Single shared World-Cup trace config (suite/chaos cells).
    WorldCup(WorldCupConfig),
    /// Planet-fleet config; replay regenerates the per-pair fleet from
    /// `(config, seed, pairs)` (scale cells).
    Planet(PlanetConfig),
}

/// Name of the World-Cup workload `cfg`, ignoring its horizon — or
/// `None` if it matches no registered configuration (such a cell could
/// not be replayed, so exporters refuse to write it).
pub fn worldcup_workload_label(cfg: &WorldCupConfig) -> Option<&'static str> {
    let mut paper = WorldCupConfig::paper_default();
    paper.horizon = cfg.horizon;
    if *cfg == paper {
        return Some("worldcup_paper");
    }
    let mut quick = WorldCupConfig::quick_test();
    quick.horizon = cfg.horizon;
    if *cfg == quick {
        return Some("worldcup_quick");
    }
    None
}

/// Name of the planet-fleet workload `cfg`, ignoring the base horizon.
pub fn planet_workload_label(cfg: &PlanetConfig) -> Option<&'static str> {
    let mut scale = PlanetConfig::scale_default();
    scale.base.horizon = cfg.base.horizon;
    if *cfg == scale {
        return Some("planet_scale");
    }
    let mut quick = PlanetConfig::quick_test();
    quick.base.horizon = cfg.base.horizon;
    if *cfg == quick {
        return Some("planet_quick");
    }
    None
}

/// Maps a workload name back to its constructor.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    match name {
        "worldcup_paper" => Some(Workload::WorldCup(WorldCupConfig::paper_default())),
        "worldcup_quick" => Some(Workload::WorldCup(WorldCupConfig::quick_test())),
        "planet_scale" => Some(Workload::Planet(PlanetConfig::scale_default())),
        "planet_quick" => Some(Workload::Planet(PlanetConfig::quick_test())),
        _ => None,
    }
}

/// Whether a strategy label carries the `(overload)` suffix — the
/// overload sweep's marker that the cell ran under
/// [`OverloadConfig::standard`]. That config is canonical (derivable
/// from the label alone), which is what keeps such cells replayable
/// without new `CellMeta` fields.
pub fn label_overloaded(label: &str) -> bool {
    label.ends_with("(overload)")
}

/// Inverts the strategy display label (plus the exact `period_ns` for
/// the periodic strategies — the label's microseconds are truncated).
/// An `(overload)` suffix names the *base* strategy; the overload knob
/// is applied separately by [`rerun_cell`] via [`label_overloaded`].
pub fn rebuild_strategy(meta: &CellMeta) -> Result<StrategyKind, String> {
    let label = meta.strategy.as_str();
    let label = label.strip_suffix("(overload)").unwrap_or(label);
    let period = || -> Result<SimDuration, String> {
        if meta.period_ns == 0 {
            return Err(format!(
                "strategy {label} needs period_ns, but the header says 0"
            ));
        }
        Ok(SimDuration::from_nanos(meta.period_ns))
    };
    match label {
        "BW" => Ok(StrategyKind::BusyWait),
        "Yield" => Ok(StrategyKind::Yield),
        "Mutex" => Ok(StrategyKind::Mutex),
        "Sem" => Ok(StrategyKind::Sem),
        "BP" => Ok(StrategyKind::Bp),
        "PBPL" => Ok(StrategyKind::pbpl_default()),
        "PBPL(fixed)" => Ok(StrategyKind::Pbpl(PbplConfig {
            resizing: false,
            ..PbplConfig::default()
        })),
        "PBPL(degraded)" => Ok(StrategyKind::pbpl_degraded()),
        _ if label.starts_with("PBP@") => Ok(StrategyKind::Pbp { period: period()? }),
        _ if label.starts_with("SPBP@") => Ok(StrategyKind::Spbp { period: period()? }),
        other => Err(format!("unknown strategy label {other:?}")),
    }
}

/// Re-runs the cell `meta` describes and returns the regenerated event
/// stream. The reconstruction mirrors the exporters exactly: the suite
/// builder path for World-Cup workloads, the scale builder path
/// (pre-generated fleet) for planet workloads, and the chaos fault
/// plan re-expanded from `(scenario, seed, env)` when a scenario is
/// named. The recorder bound follows `PC_TRACE_CAP` like the
/// exporters, so even a truncated recording replays bit-identically.
pub fn rerun_cell(meta: &CellMeta) -> Result<TraceLog, String> {
    let strategy = rebuild_strategy(meta)?;
    if meta.duration_ns == 0 {
        return Err("header duration_ns is 0".to_string());
    }
    let duration = SimDuration::from_nanos(meta.duration_ns);
    let recorder = Recorder::bounded(trace_capacity_from_env());
    let mut builder = Experiment::builder()
        .pairs(meta.pairs as usize)
        .cores(meta.cores as usize)
        .duration(duration)
        .strategy(strategy.clone())
        .seed(meta.seed)
        .buffer_capacity(meta.buffer as usize)
        .record_events(recorder.handle());
    if label_overloaded(&meta.strategy) {
        builder = builder.overload(OverloadConfig::standard());
    }
    match workload_by_name(&meta.workload) {
        Some(Workload::WorldCup(cfg)) => builder = builder.trace(cfg),
        Some(Workload::Planet(mut cfg)) => {
            cfg.base.horizon = SimTime::ZERO + duration;
            builder = builder.traces(cfg.traces(meta.seed, meta.pairs as usize));
        }
        None => return Err(format!("unknown workload {:?}", meta.workload)),
    }
    if !meta.scenario.is_empty() {
        let scenario = FaultScenario::from_name(&meta.scenario)
            .ok_or_else(|| format!("unknown fault scenario {:?}", meta.scenario))?;
        let env = ExpandEnv {
            horizon_ns: meta.duration_ns,
            pairs: meta.pairs as u32,
            cores: meta.cores as u32,
            pool_total: if strategy.is_batching() {
                meta.buffer * meta.pairs
            } else {
                0
            },
        };
        builder = builder.faults(FaultPlan::expand(scenario, meta.seed, &env));
    }
    let metrics = builder.run();
    // Re-executions must satisfy the same closed scheduler ledger as
    // live runs (DESIGN.md §14); a drift here means the rebuilt cell
    // diverged from the recorded one in more than its event stream.
    if !metrics.scheduler.ledger_balanced() {
        return Err(format!(
            "scheduler ledger out of balance on re-execution: {:?}",
            metrics.scheduler
        ));
    }
    Ok(recorder.take())
}

/// Events shown on each side of a divergence.
pub const CONTEXT_WINDOW: usize = 8;

/// The first point where a regenerated stream departs from the
/// recording.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index into the streams of the first mismatch.
    pub index: usize,
    /// What the recording holds there (`None`: recording ended early).
    pub expected: Option<Event>,
    /// What the replay produced there (`None`: replay ended early).
    pub got: Option<Event>,
}

impl Divergence {
    /// Sequence number of the first divergent event (the recording's
    /// if present, else the replay's).
    pub fn seq(&self) -> u64 {
        self.expected
            .as_ref()
            .or(self.got.as_ref())
            .map(|e| e.seq)
            .expect("a divergence names at least one event")
    }
}

/// Compares the recording against the regenerated stream event-by-event
/// (seq, sim time and payload). Returns the first divergence, or `None`
/// when the streams are identical.
pub fn first_divergence(recorded: &[Event], regenerated: &[Event]) -> Option<Divergence> {
    let n = recorded.len().max(regenerated.len());
    for i in 0..n {
        let expected = recorded.get(i);
        let got = regenerated.get(i);
        if expected != got {
            return Some(Divergence {
                index: i,
                expected: expected.cloned(),
                got: got.cloned(),
            });
        }
    }
    None
}

fn side(label: &str, events: &[Event], index: usize, out: &mut String) {
    let lo = index.saturating_sub(CONTEXT_WINDOW);
    let hi = (index + CONTEXT_WINDOW + 1).min(events.len());
    out.push_str(&format!("  {label} [{lo}..{hi}):\n"));
    if lo >= hi {
        out.push_str("    (stream ended)\n");
        return;
    }
    for (i, ev) in events.iter().enumerate().take(hi).skip(lo) {
        let marker = if i == index { '>' } else { ' ' };
        out.push_str(&format!("   {marker} {}\n", ev.summary()));
    }
}

/// Renders a divergence wasm-rr-style: the mismatching pair, then a
/// ±[`CONTEXT_WINDOW`]-event window of both streams with the divergent
/// index marked.
pub fn divergence_message(recorded: &[Event], regenerated: &[Event], d: &Divergence) -> String {
    let mut out = String::new();
    let describe = |ev: &Option<Event>, ended: &str| match ev {
        Some(ev) => ev.summary(),
        None => ended.to_string(),
    };
    out.push_str(&format!(
        "first divergence at index {} (seq {}): expected {}, got {}\n",
        d.index,
        d.seq(),
        describe(&d.expected, "end of recording"),
        describe(&d.got, "end of replay"),
    ));
    side("recorded", recorded, d.index, &mut out);
    side("replayed", regenerated, d.index, &mut out);
    out
}

/// Outcome of replaying one cell.
pub enum CellReplay {
    /// The regenerated stream matched the recording exactly.
    Match {
        /// Events compared.
        events: u64,
    },
    /// The streams differ; the report includes the context window.
    Diverged {
        /// First divergent sequence number.
        seq: u64,
        /// Human-readable report ([`divergence_message`]).
        report: String,
    },
    /// The cell could not be reconstructed (unknown strategy, workload
    /// or scenario, or a zero duration).
    Unreplayable(String),
}

/// Replays one cell end-to-end. With `digest_only`, the event streams
/// are compared through their FNV canonical-JSON digests instead of
/// event-by-event — same verdict on match, coarser report on mismatch.
pub fn replay_cell(cell: &CellTrace, digest_only: bool) -> CellReplay {
    let regenerated = match rerun_cell(&cell.meta) {
        Ok(log) => log,
        Err(e) => return CellReplay::Unreplayable(e),
    };
    if digest_only {
        let expected = pc_trace_events::digest(&cell.events);
        let got = regenerated.digest();
        if expected == got {
            return CellReplay::Match {
                events: cell.events.len() as u64,
            };
        }
        // Fall through to the event-level diff only to find the seq —
        // the caller asked for digests, so keep the report terse.
        let seq = first_divergence(&cell.events, &regenerated.events)
            .map(|d| d.seq())
            .unwrap_or(0);
        return CellReplay::Diverged {
            seq,
            report: format!(
                "digest mismatch: recorded {expected:016x}, replayed {got:016x} (first divergent seq {seq})\n"
            ),
        };
    }
    match first_divergence(&cell.events, &regenerated.events) {
        None => CellReplay::Match {
            events: cell.events.len() as u64,
        },
        Some(d) => CellReplay::Diverged {
            seq: d.seq(),
            report: divergence_message(&cell.events, &regenerated.events, &d),
        },
    }
}

/// Directory of the checked-in golden fixtures (`tests/fixtures/` at
/// the repository root).
pub fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

/// The golden fixture cells: one canonical cell from each sweep family
/// (suite, chaos, scale, overload), on the quick workloads so the
/// checked-in files stay small. The `events`/`dropped`/`digest` fields
/// are prototypes — [`render_fixture`] fills them from the actual run.
pub fn fixture_defs() -> Vec<(&'static str, CellMeta)> {
    let proto = |experiment: &str,
                 strategy: &str,
                 pairs: u64,
                 cores: u64,
                 buffer: u64,
                 seed: u64,
                 duration_ns: u64,
                 workload: &str,
                 scenario: &str| CellMeta {
        experiment: experiment.to_string(),
        strategy: strategy.to_string(),
        pairs,
        cores,
        buffer,
        seed,
        duration_ns,
        workload: workload.to_string(),
        scenario: scenario.to_string(),
        period_ns: 0,
        events: 0,
        dropped: 0,
        digest: 0,
    };
    vec![
        // The paper's Fig. 9 point under PBPL: slot reservations,
        // elastic pool traffic and core spans all present.
        (
            "suite_cell.jsonl",
            proto(
                "fig09_five_consumers",
                "PBPL",
                5,
                2,
                25,
                7,
                30_000_000,
                "worldcup_quick",
                "",
            ),
        ),
        // A rate shock against degraded PBPL: fault windows plus the
        // watchdog's emergency rebalance path.
        (
            "chaos_cell.jsonl",
            proto(
                "chaos_rate_shock",
                "PBPL(degraded)",
                5,
                2,
                25,
                11,
                60_000_000,
                "worldcup_quick",
                "rate_shock",
            ),
        ),
        // The scale sweep's smallest point on the planet fleet.
        (
            "scale_cell.jsonl",
            proto(
                "scale_m10",
                "PBPL",
                10,
                2,
                25,
                3,
                30_000_000,
                "planet_quick",
                "",
            ),
        ),
        // A flash crowd against overload-controlled PBPL: admission
        // actually trips (the horizon is long enough for the surge to
        // push service lag past the standard 50 ms deadline), so the
        // fixture pins the shed path — `ItemShed` events, paired
        // `OverloadEntered`/`OverloadCleared` windows and the
        // shed-aware conservation law — byte-for-byte.
        (
            "overload_cell.jsonl",
            proto(
                "overload_flash_crowd",
                "PBPL(overload)",
                5,
                2,
                25,
                11,
                400_000_000,
                "worldcup_quick",
                "flash_crowd",
            ),
        ),
    ]
}

/// Renders one fixture: re-runs the prototype cell, completes the
/// header from the recording, and returns the exact JSONL bytes the
/// checked-in file must contain.
pub fn render_fixture(proto: &CellMeta) -> Result<String, String> {
    let log = rerun_cell(proto)?;
    let mut meta = proto.clone();
    meta.events = log.events.len() as u64;
    meta.dropped = log.dropped;
    meta.digest = log.digest();
    let mut out = String::new();
    out.push_str(&oracle::line_to_json(&TraceLine::Cell(meta)));
    out.push('\n');
    for ev in &log.events {
        out.push_str(&oracle::line_to_json(&TraceLine::Ev(ev.clone())));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_trace_events::TraceEvent;

    fn meta(strategy: &str, scenario: &str) -> CellMeta {
        CellMeta {
            experiment: "test".into(),
            strategy: strategy.into(),
            pairs: 2,
            cores: 2,
            buffer: 25,
            seed: 5,
            duration_ns: 20_000_000,
            workload: "worldcup_quick".into(),
            scenario: scenario.into(),
            period_ns: 0,
            events: 0,
            dropped: 0,
            digest: 0,
        }
    }

    #[test]
    fn strategy_labels_roundtrip() {
        for (label, period_ns, expect) in [
            ("BW", 0, StrategyKind::BusyWait),
            ("Yield", 0, StrategyKind::Yield),
            ("Mutex", 0, StrategyKind::Mutex),
            ("Sem", 0, StrategyKind::Sem),
            ("BP", 0, StrategyKind::Bp),
            ("PBPL", 0, StrategyKind::pbpl_default()),
            ("PBPL(degraded)", 0, StrategyKind::pbpl_degraded()),
            (
                "PBP@26881us",
                26_881_720,
                StrategyKind::Pbp {
                    period: SimDuration::from_nanos(26_881_720),
                },
            ),
            (
                "SPBP@3000us",
                3_000_000,
                StrategyKind::Spbp {
                    period: SimDuration::from_nanos(3_000_000),
                },
            ),
        ] {
            let mut m = meta(label, "");
            m.period_ns = period_ns;
            assert_eq!(rebuild_strategy(&m).unwrap(), expect, "{label}");
        }
        let fixed = rebuild_strategy(&meta("PBPL(fixed)", "")).unwrap();
        match fixed {
            StrategyKind::Pbpl(cfg) => assert!(!cfg.resizing),
            other => panic!("unexpected {other:?}"),
        }
        assert!(rebuild_strategy(&meta("NOPE", "")).is_err());
        // Periodic labels without the exact period are unreplayable.
        assert!(rebuild_strategy(&meta("PBP@100us", "")).is_err());
    }

    #[test]
    fn workload_labels_roundtrip_and_reject_unknown() {
        let mut cfg = WorldCupConfig::paper_default();
        cfg.horizon = SimTime::from_millis(123); // horizon is normalised away
        assert_eq!(worldcup_workload_label(&cfg), Some("worldcup_paper"));
        assert_eq!(
            worldcup_workload_label(&WorldCupConfig::quick_test()),
            Some("worldcup_quick")
        );
        cfg.mean_rate += 1.0;
        assert_eq!(worldcup_workload_label(&cfg), None);

        assert_eq!(
            planet_workload_label(&PlanetConfig::scale_default()),
            Some("planet_scale")
        );
        assert_eq!(
            planet_workload_label(&PlanetConfig::quick_test()),
            Some("planet_quick")
        );
        assert!(workload_by_name("worldcup_paper").is_some());
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn rerun_is_bit_identical_and_comparator_sees_it() {
        let m = meta("PBPL", "");
        let a = rerun_cell(&m).unwrap();
        let b = rerun_cell(&m).unwrap();
        assert!(!a.events.is_empty());
        assert_eq!(a.digest(), b.digest());
        assert!(first_divergence(&a.events, &b.events).is_none());
    }

    #[test]
    fn chaos_rerun_reexpands_the_fault_plan() {
        let m = meta("PBPL(degraded)", "rate_shock");
        let log = rerun_cell(&m).unwrap();
        assert!(
            log.events
                .iter()
                .any(|e| matches!(e.kind, TraceEvent::FaultInjected { .. })),
            "re-expanded plan must fire"
        );
        assert_eq!(log.digest(), rerun_cell(&m).unwrap().digest());
    }

    #[test]
    fn overload_labels_rebuild_the_base_strategy_and_rerun_sheds() {
        assert!(label_overloaded("PBPL(overload)"));
        assert!(label_overloaded("BP(overload)"));
        assert!(!label_overloaded("PBPL(degraded)"));
        assert_eq!(
            rebuild_strategy(&meta("PBPL(overload)", "")).unwrap(),
            StrategyKind::pbpl_default()
        );
        assert_eq!(
            rebuild_strategy(&meta("BP(overload)", "")).unwrap(),
            StrategyKind::Bp
        );

        // The label alone is a complete recipe: rerun applies
        // OverloadConfig::standard(), and under a flash crowd the
        // admission controller actually sheds — deterministically.
        // The cell needs to run long enough for the surge window to
        // push service lag past the 50 ms standard deadline on this
        // geometry (one dedicated core per pair).
        let mut m = meta("PBPL(overload)", "flash_crowd");
        m.duration_ns = 800_000_000;
        let log = rerun_cell(&m).unwrap();
        assert!(
            log.events
                .iter()
                .any(|e| matches!(e.kind, TraceEvent::ItemShed { .. })),
            "flash crowd under overload control must shed"
        );
        assert_eq!(log.digest(), rerun_cell(&m).unwrap().digest());

        // Same cell without the suffix must not shed (overload stays off).
        let mut vanilla = meta("PBPL", "flash_crowd");
        vanilla.duration_ns = 800_000_000;
        let base = rerun_cell(&vanilla).unwrap();
        assert!(!base
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEvent::ItemShed { .. })));
    }

    #[test]
    fn divergence_reports_first_mismatching_seq() {
        let m = meta("BP", "");
        let base = rerun_cell(&m).unwrap().events;
        assert!(base.len() > 20);

        // Retime one event mid-stream.
        let mut retimed = base.clone();
        let idx = base.len() / 2;
        retimed[idx].t_ns += 1;
        let d = first_divergence(&retimed, &base).expect("diverges");
        assert_eq!(d.index, idx);
        assert_eq!(d.seq(), base[idx].seq);
        let msg = divergence_message(&retimed, &base, &d);
        assert!(msg.contains(&format!("seq {}", base[idx].seq)), "{msg}");
        assert!(msg.contains("recorded"), "{msg}");

        // Truncate: the recording ends early.
        let shorter = &base[..base.len() - 3];
        let d = first_divergence(shorter, &base).expect("length mismatch diverges");
        assert_eq!(d.index, base.len() - 3);
        assert!(d.expected.is_none());
        assert!(divergence_message(shorter, &base, &d).contains("end of recording"));
    }

    #[test]
    fn parse_export_reports_line_numbers() {
        let good = "\n";
        assert!(parse_export(good.as_bytes()).unwrap().is_empty());

        let orphan = r#"{"Ev":{"seq":0,"t_ns":1,"kind":{"Produce":{"pair":0}}}}"#;
        let err = parse_export(orphan.as_bytes()).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("before any cell header"));

        let garbage = "not json\n";
        let err = parse_export(garbage.as_bytes()).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("bad line"));
    }

    #[test]
    fn replay_cell_matches_its_own_recording() {
        let m = meta("Mutex", "");
        let log = rerun_cell(&m).unwrap();
        let mut full = m.clone();
        full.events = log.events.len() as u64;
        full.dropped = log.dropped;
        full.digest = log.digest();
        let cell = CellTrace {
            meta: full,
            events: log.events,
        };
        for digest_only in [false, true] {
            match replay_cell(&cell, digest_only) {
                CellReplay::Match { events } => assert!(events > 0),
                CellReplay::Diverged { report, .. } => panic!("diverged: {report}"),
                CellReplay::Unreplayable(e) => panic!("unreplayable: {e}"),
            }
        }
    }
}

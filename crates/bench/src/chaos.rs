//! Chaos sweep: every fault scenario crossed with a strategy panel,
//! recovery metrics re-derived from the event trace.
//!
//! A chaos cell is a normal sweep cell plus a [`FaultPlan`] expanded
//! from `(scenario, seed)` — bit-deterministic like everything else, so
//! `results/chaos.json` is byte-identical for any `--threads` value and
//! CI gates it exactly like `suite.json`. Every cell records its event
//! stream (the recovery metrics come from the trace, not the sim's own
//! counters) and is replayed through the extended oracle: item and pool
//! conservation must hold *through* every injected fault.

use crate::exp::Protocol;
use crate::oracle::{self, OracleReport};
use crate::sweep::{parallel_map_costed, trace_capacity_from_env, DispatchStats, GridPoint};
use pc_core::{Experiment, RunMetrics, StrategyKind};
use pc_faults::{ExpandEnv, FaultPlan, FaultScenario};
use pc_trace_events::{Recorder, TraceEvent, TraceLog, Trigger};
use serde::Serialize;
use std::collections::BTreeMap;

/// Strategy panel of the chaos sweep: the two item-driven baselines,
/// plain batching, vanilla PBPL, and PBPL with the degradation watchdog.
pub fn chaos_strategies() -> Vec<StrategyKind> {
    vec![
        StrategyKind::Mutex,
        StrategyKind::Sem,
        StrategyKind::Bp,
        StrategyKind::pbpl_default(),
        StrategyKind::pbpl_degraded(),
    ]
}

/// Display label; the degraded PBPL variant is tagged so both rows of
/// the comparison are distinguishable in reports and filters.
pub fn chaos_strategy_label(strategy: &StrategyKind) -> String {
    match strategy {
        StrategyKind::Pbpl(cfg) if cfg.degrade.enabled => "PBPL(degraded)".to_string(),
        other => other.name().to_string(),
    }
}

/// One chaos cell: a strategy under a fault scenario at one replicate.
#[derive(Debug, Clone)]
pub struct ChaosCellSpec {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Fault scenario the plan expands from.
    pub scenario: FaultScenario,
    /// Replicate index; the seed is `base_seed + replicate`.
    pub replicate: usize,
}

/// Expands the chaos grid in canonical order: scenario-major, then
/// strategy, then replicate — the same contract as `SweepSpec::cells`.
pub fn chaos_cells(strategies: &[StrategyKind], replicates: usize) -> Vec<ChaosCellSpec> {
    let mut cells = Vec::new();
    for scenario in FaultScenario::all() {
        for strategy in strategies {
            for replicate in 0..replicates {
                cells.push(ChaosCellSpec {
                    strategy: strategy.clone(),
                    scenario,
                    replicate,
                });
            }
        }
    }
    cells
}

/// The single grid point every chaos cell runs at (the paper's five
/// consumers on two cores, B₀ = 25 — Fig. 9's configuration).
pub fn chaos_point() -> GridPoint {
    GridPoint {
        pairs: 5,
        cores: 2,
        buffer: 25,
    }
}

/// Expands the cell's fault plan from `(scenario, seed)` and the run
/// geometry. The pool total mirrors the sim's own construction
/// (`B₀ · M` for batching strategies, zero otherwise).
pub fn chaos_plan(protocol: &Protocol, cell: &ChaosCellSpec) -> FaultPlan {
    let point = chaos_point();
    let env = ExpandEnv {
        horizon_ns: protocol.duration.as_nanos(),
        pairs: point.pairs as u32,
        cores: point.cores as u32,
        pool_total: if cell.strategy.is_batching() {
            (point.buffer * point.pairs) as u64
        } else {
            0
        },
    };
    FaultPlan::expand(
        cell.scenario,
        protocol.base_seed + cell.replicate as u64,
        &env,
    )
}

/// Runs one chaos cell, always traced — the recovery metrics below are
/// derived from the event stream.
pub fn run_chaos_cell(protocol: &Protocol, cell: &ChaosCellSpec) -> (RunMetrics, TraceLog) {
    let point = chaos_point();
    let recorder = Recorder::bounded(trace_capacity_from_env());
    let metrics = Experiment::builder()
        .pairs(point.pairs)
        .cores(point.cores)
        .duration(protocol.duration)
        .strategy(cell.strategy.clone())
        .trace(protocol.trace.clone())
        .seed(protocol.base_seed + cell.replicate as u64)
        .buffer_capacity(point.buffer)
        .faults(chaos_plan(protocol, cell))
        .record_events(recorder.handle())
        .run();
    (metrics, recorder.take())
}

/// Runs `cells` on `threads` workers; results in cell order.
pub fn execute_chaos(
    protocol: &Protocol,
    cells: &[ChaosCellSpec],
    threads: usize,
) -> Vec<(RunMetrics, TraceLog)> {
    execute_chaos_costed(protocol, cells, threads).0
}

/// [`execute_chaos`] with dispatch telemetry. Every chaos cell runs the
/// same geometry (M = 5, B₀ = 25), so costs are uniform and the claim
/// order stays canonical — this variant exists for the per-cell timings
/// and worker-utilization numbers in `BENCH_chaos.json`.
pub fn execute_chaos_costed(
    protocol: &Protocol,
    cells: &[ChaosCellSpec],
    threads: usize,
) -> (Vec<(RunMetrics, TraceLog)>, DispatchStats) {
    let costs = vec![0u64; cells.len()];
    parallel_map_costed(cells, threads, &costs, |cell| {
        run_chaos_cell(protocol, cell)
    })
}

/// Recovery metrics of one chaos cell, re-derived from its event trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RecoveryMetrics {
    /// Faults injected over the run.
    pub faults_injected: u64,
    /// Faults whose window closed (always equals `faults_injected` on a
    /// clean trace — the sim recovers open windows before teardown).
    pub faults_recovered: u64,
    /// Invocations triggered by buffer overflow.
    pub overflow_wakes: u64,
    /// Overflow invocations that *continue* a run — each one immediately
    /// follows another overflow invocation of the same pair with nothing
    /// scheduled in between. This is the sustained-thrashing currency the
    /// degradation watchdog exists to reduce: isolated overflows are a
    /// prediction being caught out once, consecutive ones are the planner
    /// failing to adapt.
    pub consec_overflow_wakes: u64,
    /// Invocations triggered by a reserved slot or periodic timer.
    pub scheduled_wakes: u64,
    /// Longest run of consecutive overflow invocations of any single
    /// pair (the burst a rate shock forces before resizing catches up).
    pub max_overflow_burst: u64,
    /// Worst case, over all fault recoveries, of the sim-time gap from
    /// the `FaultRecovered` event to that run's next scheduled-trigger
    /// invocation — how long the system took to get back onto planned
    /// wakeups. Zero when no fault fired or nothing scheduled followed.
    pub max_recovery_lag_ns: u64,
}

/// Scans a trace for the chaos table's recovery metrics.
pub fn recovery_metrics(log: &TraceLog) -> RecoveryMetrics {
    let mut m = RecoveryMetrics {
        faults_injected: 0,
        faults_recovered: 0,
        overflow_wakes: 0,
        consec_overflow_wakes: 0,
        scheduled_wakes: 0,
        max_overflow_burst: 0,
        max_recovery_lag_ns: 0,
    };
    // pair -> current consecutive-overflow run length.
    let mut bursts: BTreeMap<u32, u64> = BTreeMap::new();
    // Open recovery gaps: time of each FaultRecovered not yet followed
    // by a scheduled invocation.
    let mut open_recoveries: Vec<u64> = Vec::new();
    for ev in &log.events {
        match &ev.kind {
            TraceEvent::FaultInjected { .. } => m.faults_injected += 1,
            TraceEvent::FaultRecovered { .. } => {
                m.faults_recovered += 1;
                open_recoveries.push(ev.t_ns);
            }
            TraceEvent::Invoke { pair, trigger, .. } => match trigger {
                Trigger::Overflow => {
                    m.overflow_wakes += 1;
                    let run = bursts.entry(*pair).or_insert(0);
                    *run += 1;
                    if *run > 1 {
                        m.consec_overflow_wakes += 1;
                    }
                    m.max_overflow_burst = m.max_overflow_burst.max(*run);
                }
                Trigger::Scheduled => {
                    m.scheduled_wakes += 1;
                    bursts.insert(*pair, 0);
                    for t in open_recoveries.drain(..) {
                        m.max_recovery_lag_ns =
                            m.max_recovery_lag_ns.max(ev.t_ns.saturating_sub(t));
                    }
                }
                Trigger::Item => {
                    bursts.insert(*pair, 0);
                }
            },
            _ => {}
        }
    }
    m
}

/// One row of `results/chaos.json`: cell identity, the determinism
/// currency (energy bits, digest), and the recovery metrics.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosCellReport {
    /// Strategy label (`PBPL(degraded)` tags the watchdog variant).
    pub strategy: String,
    /// Scenario name (stable filter key).
    pub scenario: String,
    /// Seed the cell ran under.
    pub seed: u64,
    /// Faults in the expanded plan.
    pub plan_faults: usize,
    /// Raw bits of the energy reading (exact-equality currency).
    pub energy_j_bits: u64,
    /// Energy reading for human eyes.
    pub energy_j: f64,
    /// Items produced over the run.
    pub items_produced: u64,
    /// Items consumed (== produced on a clean run).
    pub items_consumed: u64,
    /// Consumer wakeups charged by the power model.
    pub wakeups: u64,
    /// Events the cell's recorder captured.
    pub trace_events: u64,
    /// FNV-1a digest of the cell's event stream.
    pub trace_digest: u64,
    /// Recovery metrics derived from the trace.
    pub recovery: RecoveryMetrics,
}

/// Builds the report row for one executed cell (oracle result handled
/// separately — violations fail the run rather than ride in the JSON).
pub fn chaos_cell_report(
    protocol: &Protocol,
    cell: &ChaosCellSpec,
    metrics: &RunMetrics,
    log: &TraceLog,
) -> ChaosCellReport {
    ChaosCellReport {
        strategy: chaos_strategy_label(&cell.strategy),
        scenario: cell.scenario.name().to_string(),
        seed: protocol.base_seed + cell.replicate as u64,
        plan_faults: chaos_plan(protocol, cell).len(),
        energy_j_bits: metrics.energy.energy_j.to_bits(),
        energy_j: metrics.energy.energy_j,
        items_produced: metrics.items_produced,
        items_consumed: metrics.items_consumed,
        wakeups: metrics.energy.wakeups,
        trace_events: log.events.len() as u64,
        trace_digest: log.digest(),
        recovery: recovery_metrics(log),
    }
}

/// Replays the extended oracle over one cell's trace.
pub fn chaos_oracle(log: &TraceLog) -> OracleReport {
    oracle::check(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_sim::SimDuration;
    use pc_trace::WorldCupConfig;

    fn tiny_protocol() -> Protocol {
        Protocol {
            duration: SimDuration::from_millis(60),
            replicates: 1,
            base_seed: 11,
            trace: WorldCupConfig::quick_test(),
            threads: 2,
        }
    }

    #[test]
    fn grid_is_scenarios_by_strategies_by_replicates() {
        let cells = chaos_cells(&chaos_strategies(), 2);
        assert_eq!(cells.len(), 8 * 5 * 2);
        assert_eq!(cells[0].scenario, FaultScenario::Baseline);
        assert_eq!(cells[0].replicate, 0);
        assert_eq!(cells[1].replicate, 1);
    }

    #[test]
    fn baseline_plan_is_empty_and_faulty_scenarios_are_not() {
        let p = tiny_protocol();
        for cell in chaos_cells(&chaos_strategies(), 1) {
            let plan = chaos_plan(&p, &cell);
            if cell.scenario == FaultScenario::Baseline {
                assert!(plan.is_empty());
            } else {
                assert!(!plan.is_empty(), "{} plan empty", cell.scenario.name());
            }
        }
    }

    #[test]
    fn chaos_cells_run_clean_through_the_oracle() {
        let p = tiny_protocol();
        // One representative faulty scenario per strategy class keeps
        // the test fast; the chaos binary covers the full cross.
        for (strategy, scenario) in [
            (StrategyKind::Mutex, FaultScenario::RateShock),
            (StrategyKind::Bp, FaultScenario::ConsumerSlowdown),
            (StrategyKind::pbpl_default(), FaultScenario::DroppedWakeup),
            (StrategyKind::pbpl_degraded(), FaultScenario::PoolSqueeze),
            (StrategyKind::pbpl_degraded(), FaultScenario::Chaos),
        ] {
            let cell = ChaosCellSpec {
                strategy,
                scenario,
                replicate: 0,
            };
            let (metrics, log) = run_chaos_cell(&p, &cell);
            assert_eq!(metrics.items_produced, metrics.items_consumed);
            let report = chaos_oracle(&log);
            assert!(
                report.is_clean(),
                "{} under {}: {:?}",
                chaos_strategy_label(&cell.strategy),
                scenario.name(),
                report.violations
            );
            let rec = recovery_metrics(&log);
            assert_eq!(rec.faults_injected, rec.faults_recovered);
            assert!(rec.faults_injected > 0, "{}", scenario.name());
        }
    }

    #[test]
    fn thread_count_does_not_change_chaos_bits() {
        let p = tiny_protocol();
        let cells = chaos_cells(&[StrategyKind::Bp, StrategyKind::pbpl_degraded()], 1);
        let serial = execute_chaos(&p, &cells, 1);
        let parallel = execute_chaos(&p, &cells, 4);
        for ((ms, ls), (mp, lp)) in serial.iter().zip(&parallel) {
            assert_eq!(ms.energy.energy_j.to_bits(), mp.energy.energy_j.to_bits());
            assert_eq!(ls.digest(), lp.digest());
        }
    }

    #[test]
    fn recovery_metrics_count_bursts_and_lag() {
        use pc_trace_events::{Event, TRACE_SCHEMA_VERSION};
        let kinds = vec![
            TraceEvent::FaultInjected {
                id: 0,
                kind: "rate_shock".into(),
                pair: 0,
                core: u32::MAX,
                param: 3000,
                pool_available: u64::MAX,
            },
            TraceEvent::Invoke {
                pair: 0,
                trigger: Trigger::Overflow,
                batch: 25,
                capacity: 25,
            },
            TraceEvent::Invoke {
                pair: 0,
                trigger: Trigger::Overflow,
                batch: 25,
                capacity: 25,
            },
            TraceEvent::FaultRecovered {
                id: 0,
                kind: "rate_shock".into(),
                pair: 0,
                core: u32::MAX,
                param: 3000,
                pool_available: u64::MAX,
            },
            TraceEvent::Invoke {
                pair: 0,
                trigger: Trigger::Scheduled,
                batch: 10,
                capacity: 25,
            },
        ];
        let log = TraceLog {
            schema_version: TRACE_SCHEMA_VERSION,
            events: kinds
                .into_iter()
                .enumerate()
                .map(|(i, kind)| Event {
                    seq: i as u64,
                    t_ns: i as u64 * 100,
                    kind,
                })
                .collect(),
            dropped: 0,
        };
        let m = recovery_metrics(&log);
        assert_eq!(m.faults_injected, 1);
        assert_eq!(m.faults_recovered, 1);
        assert_eq!(m.overflow_wakes, 2);
        assert_eq!(m.consec_overflow_wakes, 1);
        assert_eq!(m.scheduled_wakes, 1);
        assert_eq!(m.max_overflow_burst, 2);
        // Recovery at t=300, next scheduled invoke at t=400.
        assert_eq!(m.max_recovery_lag_ns, 100);
    }
}

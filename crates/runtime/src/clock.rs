//! Wall-clock pacing for trace replay and slot timers.
//!
//! The repro band for this paper calls for "native threads, fine timer
//! control": producers must emit items at trace timestamps and the PBPL
//! core manager must fire slots at precise wall instants. A
//! [`ReplayClock`] maps simulated trace time onto wall time (optionally
//! scaled), and [`precise_sleep_until`] implements the sleep-then-spin
//! idiom that gets microsecond-class firing accuracy out of a
//! millisecond-class OS sleep — the same trick that separates the paper's
//! SPBP from PBP.

use pc_sim::{SimDuration, SimTime};
use std::time::{Duration, Instant};

/// How close to the deadline the precise sleeper switches from OS sleep
/// to spinning.
const SPIN_WINDOW: Duration = Duration::from_micros(200);

/// Sleeps until `deadline` with sub-millisecond accuracy: OS-sleep the
/// bulk, spin the last ~200 µs.
pub fn precise_sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_WINDOW {
            std::thread::sleep(remaining - SPIN_WINDOW);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Sleeps until `deadline` using only the plain OS sleep — deliberately
/// inheriting its wakeup overshoot. This is the PBP path; the paper's
/// PBP/SPBP gap is exactly this jitter.
pub fn coarse_sleep_until(deadline: Instant) {
    let now = Instant::now();
    if let Some(remaining) = deadline.checked_duration_since(now) {
        if remaining > Duration::ZERO {
            std::thread::sleep(remaining);
        }
    }
}

/// Maps simulated trace time onto the wall clock.
#[derive(Debug, Clone, Copy)]
pub struct ReplayClock {
    epoch: Instant,
    /// Wall seconds per simulated second (1.0 = real time, 0.1 = 10×
    /// fast-forward).
    scale: f64,
}

impl ReplayClock {
    /// Starts a replay clock now.
    ///
    /// Panics for non-positive scales.
    pub fn start(scale: f64) -> Self {
        assert!(scale > 0.0, "replay scale must be positive");
        ReplayClock {
            epoch: Instant::now(),
            scale,
        }
    }

    /// The wall instant corresponding to simulated time `t`.
    pub fn wall_deadline(&self, t: SimTime) -> Instant {
        self.epoch + Duration::from_secs_f64(t.as_secs_f64() * self.scale)
    }

    /// Current simulated time.
    pub fn now_sim(&self) -> SimTime {
        let elapsed = self.epoch.elapsed().as_secs_f64() / self.scale;
        SimTime::from_nanos((elapsed * 1e9) as u64)
    }

    /// Sleeps (precisely) until simulated time `t`.
    pub fn sleep_until_sim(&self, t: SimTime) {
        precise_sleep_until(self.wall_deadline(t));
    }

    /// Like [`ReplayClock::sleep_until_sim`], but wakes every `poll` to
    /// check `stop`; returns `false` if stopped before the deadline.
    /// Long inter-arrival gaps in a replayed trace must not outlive a
    /// shutdown request.
    pub fn sleep_until_sim_or_stop(
        &self,
        t: SimTime,
        stop: &std::sync::atomic::AtomicBool,
        poll: Duration,
    ) -> bool {
        let deadline = self.wall_deadline(t);
        loop {
            if stop.load(std::sync::atomic::Ordering::Relaxed) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let remaining = deadline - now;
            if remaining > poll {
                std::thread::sleep(poll);
            } else {
                precise_sleep_until(deadline);
                return !stop.load(std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    /// Converts a simulated duration into its wall equivalent.
    pub fn wall_duration(&self, d: SimDuration) -> Duration {
        Duration::from_secs_f64(d.as_secs_f64() * self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_sleep_hits_deadline() {
        let deadline = Instant::now() + Duration::from_millis(5);
        precise_sleep_until(deadline);
        let late = Instant::now().duration_since(deadline);
        assert!(late < Duration::from_millis(2), "overshoot {late:?}");
    }

    #[test]
    fn precise_sleep_past_deadline_returns_immediately() {
        let deadline = Instant::now() - Duration::from_millis(1);
        let t0 = Instant::now();
        precise_sleep_until(deadline);
        assert!(t0.elapsed() < Duration::from_millis(2));
    }

    #[test]
    fn replay_clock_scales() {
        let clock = ReplayClock::start(0.5);
        let d = clock.wall_deadline(SimTime::from_millis(100));
        let expected = Duration::from_millis(50);
        let actual = d.duration_since(clock.epoch);
        assert!(
            (actual.as_secs_f64() - expected.as_secs_f64()).abs() < 1e-6,
            "{actual:?}"
        );
        assert_eq!(
            clock.wall_duration(SimDuration::from_secs(2)),
            Duration::from_secs(1)
        );
    }

    #[test]
    fn stoppable_sleep_observes_stop() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let clock = ReplayClock::start(1.0);
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            s2.store(true, Ordering::SeqCst);
        });
        let t0 = Instant::now();
        let completed =
            clock.sleep_until_sim_or_stop(SimTime::from_secs(30), &stop, Duration::from_millis(5));
        assert!(!completed, "stop must interrupt the sleep");
        assert!(t0.elapsed() < Duration::from_millis(500));
        t.join().unwrap();
    }

    #[test]
    fn now_sim_advances() {
        let clock = ReplayClock::start(0.1); // 10x fast
        std::thread::sleep(Duration::from_millis(5));
        let sim = clock.now_sim();
        assert!(sim >= SimTime::from_millis(40), "sim {sim}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        ReplayClock::start(0.0);
    }
}

//! # pc-runtime — the strategies on real OS threads
//!
//! The simulator (`pc-core::system`) reproduces the paper's *power*
//! numbers deterministically; this crate demonstrates that the algorithms
//! are real, runnable concurrent code. Producers replay a workload trace
//! in (scaled) wall-clock time against consumer threads implementing each
//! §III strategy and PBPL, with instrumentation that counts the paper's
//! PowerTop metrics — thread wakeups and CPU usage — directly from the
//! blocking primitives.
//!
//! * [`clock`] — precise wall-clock pacing: sleep-then-spin deadlines
//!   (the SPBP trick) and trace replay scaling.
//! * [`counters`] — wakeup/usage/latency accounting shared by all
//!   strategy threads.
//! * [`manager`] — the native PBPL core-manager thread: one armed
//!   deadline per core, re-targeted when earlier reservations arrive,
//!   waking whole latch groups per timer fire.
//! * [`strategy`] — one spawn function per strategy (BW, Yield, Mutex,
//!   Sem, BP, PBP, SPBP, PBPL).
//! * [`harness`] — spawn/collect machinery returning a
//!   [`NativeRunReport`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod counters;
pub mod harness;
pub mod manager;
pub mod strategy;

pub use clock::{precise_sleep_until, ReplayClock};
pub use counters::{PairCounters, PairStats, UsageTimer};
pub use harness::{NativeHarness, NativeRunReport};
pub use manager::NativeCoreManager;

//! Spawn/collect machinery: run M native pairs under one strategy for a
//! trace horizon and gather the paper's per-pair metrics.

use crate::clock::ReplayClock;
use crate::counters::PairStats;
use crate::manager::NativeCoreManager;
use crate::strategy::{
    spawn_bp, spawn_busy, spawn_mutex, spawn_pbpl, spawn_periodic, spawn_sem, PairContext,
    PairHandle,
};
use pc_core::{CostModel, SlotTrack, StrategyKind};
use pc_faults::FaultPlan;
use pc_power::PowerModel;
use pc_queues::GlobalPool;
use pc_sim::{SimDuration, SimTime};
use pc_trace::{Trace, WorldCupConfig};
use pc_trace_events::TraceHandle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Hard ceiling on how long [`NativeHarness::run`] waits for its strategy
/// threads after raising the stop flag. Generous compared to the drain
/// slack (tens of milliseconds) on purpose: the watchdog exists to catch
/// genuinely stuck threads — a lost wakeup, a consumer blocked on a
/// primitive nobody will ever signal — not to police slow machines.
const JOIN_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of one native run.
#[derive(Debug, Clone)]
pub struct NativeHarness {
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Number of producer-consumer pairs.
    pub pairs: usize,
    /// Number of virtual cores (PBPL managers); consumers are assigned
    /// `i mod cores`.
    pub cores: usize,
    /// Simulated horizon to replay.
    pub duration: SimDuration,
    /// Wall seconds per simulated second (use < 1.0 to fast-forward).
    pub time_scale: f64,
    /// Workload configuration (horizon overridden by `duration`).
    pub trace: WorldCupConfig,
    /// Base buffer capacity B₀.
    pub buffer_capacity: usize,
    /// Seed for trace generation.
    pub seed: u64,
    /// Structured event-trace handle (disabled by default). Native
    /// events carry replay-clock sim time: good for conservation checks,
    /// not for bit-stable digests.
    pub trace_events: TraceHandle,
    /// Fault plan applied to the replayed workload (empty by default).
    /// Native support is best-effort: workload faults (rate shocks,
    /// producer stalls) reshape each pair's production times before
    /// replay, exactly as the sim does; scheduler-level faults (dropped
    /// wakeups, timer drift, pool squeezes) need the sim's event loop
    /// and are ignored here.
    pub fault_plan: FaultPlan,
    /// Coordination shards per core manager and in the global pool
    /// (DESIGN.md §11). 1 reproduces the unsharded layout; larger values
    /// cut lock contention at large M.
    pub shards: usize,
}

impl Default for NativeHarness {
    fn default() -> Self {
        NativeHarness {
            strategy: StrategyKind::pbpl_default(),
            pairs: 2,
            cores: 2,
            duration: SimDuration::from_millis(500),
            time_scale: 1.0,
            trace: WorldCupConfig::quick_test(),
            buffer_capacity: 25,
            seed: 42,
            trace_events: TraceHandle::disabled(),
            fault_plan: FaultPlan::empty(),
            shards: 1,
        }
    }
}

/// Results of one native run.
#[derive(Debug, Clone)]
pub struct NativeRunReport {
    /// Strategy display name.
    pub strategy: String,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Per-pair counter snapshots.
    pub pairs: Vec<PairStats>,
    /// PBPL only: slot timer fires per core manager.
    pub manager_fires: Vec<u64>,
}

impl NativeRunReport {
    /// Total items consumed.
    pub fn items_consumed(&self) -> u64 {
        self.pairs.iter().map(|p| p.items_consumed).sum()
    }

    /// Total items produced.
    pub fn items_produced(&self) -> u64 {
        self.pairs.iter().map(|p| p.items_produced).sum()
    }

    /// Total consumer-thread wakeups per wall second (the PowerTop-style
    /// aggregate).
    pub fn wakeups_per_sec(&self) -> f64 {
        let total: u64 = self.pairs.iter().map(|p| p.wakeups).sum();
        total as f64 / self.wall_secs
    }

    /// Total consumer busy milliseconds per wall second (usage, ms/s).
    pub fn usage_ms_per_sec(&self) -> f64 {
        let busy: f64 = self.pairs.iter().map(|p| p.busy.as_secs_f64()).sum();
        busy * 1e3 / self.wall_secs
    }

    /// Mean item latency across pairs (wall time).
    pub fn mean_latency(&self) -> SimDuration {
        let total_items: u64 = self.pairs.iter().map(|p| p.items_consumed).sum();
        if total_items == 0 {
            return SimDuration::ZERO;
        }
        let sum: SimDuration = self.pairs.iter().map(|p| p.latency_sum).sum();
        sum / total_items
    }
}

impl NativeHarness {
    /// Runs the configured experiment on real threads and blocks until
    /// all of them have joined.
    pub fn run(self) -> NativeRunReport {
        assert!(self.pairs > 0 && self.cores > 0 && self.shards > 0);
        let horizon = SimTime::ZERO + self.duration;
        let mut cfg = self.trace.clone();
        cfg.horizon = horizon;
        let base = cfg.generate(self.seed.wrapping_add(0x7ace));
        let clock = ReplayClock::start(self.time_scale);
        let stop = Arc::new(AtomicBool::new(false));
        let cost = CostModel::from_power_model(&PowerModel::exynos_like());

        // PBPL substrate: one manager thread per core + the global pool.
        let (managers, mgr_threads, pool) = if matches!(self.strategy, StrategyKind::Pbpl(_)) {
            let pbpl = match &self.strategy {
                StrategyKind::Pbpl(c) => c.clone(),
                _ => unreachable!(),
            };
            let track = SlotTrack::new(pbpl.slot);
            let managers: Vec<Arc<NativeCoreManager>> = (0..self.cores)
                .map(|_| NativeCoreManager::new_sharded(track, clock, self.shards))
                .collect();
            let threads: Vec<thread::JoinHandle<()>> = managers
                .iter()
                .map(|m| {
                    let m = Arc::clone(m);
                    thread::spawn(move || m.run())
                })
                .collect();
            let pool = GlobalPool::with_shards(self.buffer_capacity * self.pairs, self.shards);
            (managers, threads, Some(pool))
        } else {
            (Vec::new(), Vec::new(), None)
        };

        let started = Instant::now();
        let handles: Vec<PairHandle> = (0..self.pairs)
            .map(|i| {
                let mut trace = base.phase_shift(i as f64 / self.pairs as f64);
                if !self.fault_plan.is_empty() {
                    let mut times = trace.into_times();
                    self.fault_plan
                        .apply_workload_faults(i as u32, &mut times, horizon);
                    trace = Trace::new(times, horizon);
                }
                let ctx = PairContext {
                    index: i,
                    trace,
                    clock,
                    stop: Arc::clone(&stop),
                    capacity: self.buffer_capacity,
                    manager: managers.get(i % self.cores.max(1)).cloned(),
                    pool: pool.clone(),
                    pbpl: match &self.strategy {
                        StrategyKind::Pbpl(c) => Some(c.clone()),
                        _ => None,
                    },
                    cost,
                    trace_events: self.trace_events.clone(),
                };
                match &self.strategy {
                    StrategyKind::BusyWait => spawn_busy(ctx, false),
                    StrategyKind::Yield => spawn_busy(ctx, true),
                    StrategyKind::Mutex => spawn_mutex(ctx),
                    StrategyKind::Sem => spawn_sem(ctx),
                    StrategyKind::Bp => spawn_bp(ctx),
                    StrategyKind::Pbp { period } => {
                        spawn_periodic(ctx, SimTime::ZERO + *period, false)
                    }
                    StrategyKind::Spbp { period } => {
                        spawn_periodic(ctx, SimTime::ZERO + *period, true)
                    }
                    StrategyKind::Pbpl(_) => spawn_pbpl(ctx),
                }
            })
            .collect();

        // Let the horizon elapse (plus strategy drain slack), then stop.
        crate::clock::precise_sleep_until(
            clock.wall_deadline(horizon + SimDuration::from_millis(20)),
        );
        stop.store(true, Ordering::SeqCst);
        let counters: Vec<_> = handles.iter().map(|h| Arc::clone(&h.counters)).collect();
        // Join through a watchdog. A strategy thread that misses the stop
        // flag (a lost wakeup with no recovery, a blocked primitive nobody
        // signals) would otherwise hang the whole process with zero
        // diagnostics; instead, dump every pair's counters — which pair
        // stopped consuming, and where — and fail loudly. The dump leads
        // with the shed/admission counters so a hung *overload* run shows
        // at a glance whether admission was shedding when it stalled.
        let (done_tx, done_rx) = mpsc::channel();
        let joiner = thread::Builder::new()
            .name("pc-join-watchdog".into())
            .spawn(move || {
                for h in handles {
                    h.join();
                }
                let _ = done_tx.send(());
            })
            .expect("spawn joiner thread");
        match done_rx.recv_timeout(JOIN_TIMEOUT) {
            Ok(()) => joiner.join().expect("joiner thread panicked"),
            Err(_) => {
                let dump: Vec<String> = counters
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.snapshot();
                        format!(
                            "  pair {i}: shed={} overload_windows={} {:?}",
                            s.items_shed, s.overload_windows, s
                        )
                    })
                    .collect();
                panic!(
                    "native harness: strategy threads failed to join within \
                     {JOIN_TIMEOUT:?} of the stop flag — likely a stuck \
                     consumer; per-pair counters at timeout:\n{}",
                    dump.join("\n")
                );
            }
        }
        let wall_secs = started.elapsed().as_secs_f64();
        let manager_fires = managers.iter().map(|m| m.slot_fires()).collect();
        for m in &managers {
            m.shutdown();
        }
        for t in mgr_threads {
            t.join().expect("manager thread panicked");
        }

        NativeRunReport {
            strategy: self.strategy.name().to_string(),
            wall_secs,
            pairs: counters.iter().map(|c| c.snapshot()).collect(),
            manager_fires,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness(strategy: StrategyKind) -> NativeHarness {
        NativeHarness {
            strategy,
            pairs: 2,
            cores: 2,
            duration: SimDuration::from_millis(250),
            ..NativeHarness::default()
        }
    }

    #[test]
    fn mutex_harness_runs_clean() {
        let r = harness(StrategyKind::Mutex).run();
        assert!(r.items_produced() > 0);
        assert_eq!(r.items_produced(), r.items_consumed());
        assert!(r.wakeups_per_sec() > 0.0);
    }

    #[test]
    fn pbpl_harness_runs_clean() {
        let r = harness(StrategyKind::pbpl_default()).run();
        assert_eq!(r.items_produced(), r.items_consumed());
        assert_eq!(r.manager_fires.len(), 2);
        let scheduled: u64 = r.pairs.iter().map(|p| p.scheduled).sum();
        assert!(scheduled > 0, "slot wakes expected");
    }

    #[test]
    fn bp_wakes_less_than_mutex() {
        let mutex = harness(StrategyKind::Mutex).run();
        let bp = harness(StrategyKind::Bp).run();
        assert!(
            bp.wakeups_per_sec() < mutex.wakeups_per_sec(),
            "bp {} vs mutex {}",
            bp.wakeups_per_sec(),
            mutex.wakeups_per_sec()
        );
    }

    #[test]
    fn faulted_harness_conserves_items() {
        // Workload faults reshape production times but never add or drop
        // items, so end-to-end conservation must survive them natively.
        use pc_faults::{ExpandEnv, FaultScenario};
        let mut h = harness(StrategyKind::pbpl_default());
        let env = ExpandEnv {
            horizon_ns: h.duration.as_nanos(),
            pairs: h.pairs as u32,
            cores: h.cores as u32,
            pool_total: (h.buffer_capacity * h.pairs) as u64,
        };
        h.fault_plan = FaultPlan::expand(FaultScenario::RateShock, 3, &env);
        assert!(!h.fault_plan.is_empty());
        let r = h.run();
        assert!(r.items_produced() > 0);
        assert_eq!(r.items_produced(), r.items_consumed());
    }

    #[test]
    fn busy_wait_burns_cpu_without_wakeups() {
        let r = harness(StrategyKind::BusyWait).run();
        assert!(
            r.usage_ms_per_sec() > 1500.0,
            "usage {}",
            r.usage_ms_per_sec()
        );
        let wakeups: u64 = r.pairs.iter().map(|p| p.wakeups).sum();
        assert_eq!(wakeups, 0);
    }
}

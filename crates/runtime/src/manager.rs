//! The native PBPL core-manager thread (§V-B on real threads).
//!
//! One manager thread per (virtual) core owns the core's slot
//! reservation book and a single armed deadline: the earliest reserved
//! slot. Consumers reserve slots through the shared handle; if a new
//! reservation is earlier than the armed deadline the manager is nudged
//! through its condvar and re-arms — the same cancel/re-arm dance the
//! simulator's `ensure_scheduled` performs. At each slot deadline the
//! manager releases every due consumer's wake semaphore: one timer
//! expiry, many consumer invocations — group latching in the flesh.
//!
//! ## Sharding (DESIGN.md §11)
//!
//! At large M the single mutex around the book serializes every
//! consumer's reserve/select critical section. The state is therefore
//! split into `S` shards, each with its own [`pc_core::CoreManager`]
//! book, waker table, and buffer table; consumers hash to shards by
//! index (`consumer mod S`). Reservation, slot selection, and latching
//! are intra-shard (a consumer's book queries see its shard's
//! reservations), while the slot fire performs the deterministic
//! cross-shard pass: the run loop arms the earliest reserved slot
//! *across all shards*, and a fire walks every shard round-robin,
//! stealing its due list, so one timer expiry still serves the whole
//! core. The armed deadline is coordinated through a separate
//! generation counter (`arm`) so reserve/shutdown never race the
//! scan-then-wait window. `NativeCoreManager::new` builds the
//! single-shard flavour, which behaves exactly like the pre-sharding
//! implementation.

use crate::clock::ReplayClock;
use parking_lot::{Condvar, Mutex};
use pc_core::{CoreManager, PairId, SlotTrack};
use pc_queues::{ElasticBuffer, Semaphore};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use std::time::Instant;

struct Shard {
    book: CoreManager,
    wakers: HashMap<usize, Arc<Semaphore>>,
    /// Consumers' buffers, for the piggyback occupancy check.
    buffers: HashMap<usize, Arc<Mutex<ElasticBuffer<Instant>>>>,
}

/// Shared handle to one core's slot-reservation manager.
pub struct NativeCoreManager {
    track: SlotTrack,
    shards: Box<[Mutex<Shard>]>,
    /// Arm-generation counter: bumped (under its lock) by every reserve
    /// and by shutdown, so the run loop can tell whether its shard scan
    /// went stale before it parked on the condvar.
    arm: Mutex<u64>,
    nudge: Condvar,
    clock: ReplayClock,
    stop: AtomicBool,
    slot_fires: AtomicU64,
}

impl NativeCoreManager {
    /// Creates a single-shard manager over `track`, pacing slots with
    /// `clock` — identical behaviour to the pre-sharding manager.
    pub fn new(track: SlotTrack, clock: ReplayClock) -> Arc<Self> {
        Self::new_sharded(track, clock, 1)
    }

    /// Creates a manager whose book, waker, and buffer state is split
    /// across `shards ≥ 1` independently locked shards.
    pub fn new_sharded(track: SlotTrack, clock: ReplayClock, shards: usize) -> Arc<Self> {
        assert!(shards >= 1, "manager needs at least one shard");
        Arc::new(NativeCoreManager {
            track,
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        book: CoreManager::new(track),
                        wakers: HashMap::new(),
                        buffers: HashMap::new(),
                    })
                })
                .collect(),
            arm: Mutex::new(0),
            nudge: Condvar::new(),
            clock,
            stop: AtomicBool::new(false),
            slot_fires: AtomicU64::new(0),
        })
    }

    fn shard_of(&self, consumer: usize) -> usize {
        consumer % self.shards.len()
    }

    /// Bumps the arm generation and wakes the manager thread. Called
    /// after any change that can move the earliest deadline.
    fn bump(&self) {
        let mut gen = self.arm.lock();
        *gen = gen.wrapping_add(1);
        drop(gen);
        self.nudge.notify_all();
    }

    /// Registers the semaphore a consumer waits on.
    pub fn register(&self, consumer: usize, waker: Arc<Semaphore>) {
        self.shards[self.shard_of(consumer)]
            .lock()
            .wakers
            .insert(consumer, waker);
    }

    /// Registers the consumer's buffer so slot fires can piggyback
    /// neighbours with meaningful batches (§V-A group latching — same
    /// rule as the simulator: occupancy ≥ capacity/8).
    pub fn register_buffer(&self, consumer: usize, buffer: Arc<Mutex<ElasticBuffer<Instant>>>) {
        self.shards[self.shard_of(consumer)]
            .lock()
            .buffers
            .insert(consumer, buffer);
    }

    /// Reserves `slot` for `consumer` on its shard's book, nudging the
    /// manager thread in case the new slot is earlier than the armed
    /// one.
    pub fn reserve(&self, slot: u64, consumer: usize) {
        let mut st = self.shards[self.shard_of(consumer)].lock();
        st.book.reserve(slot, PairId(consumer));
        drop(st);
        self.bump();
    }

    /// Runs a read-only query against `consumer`'s shard of the
    /// reservation book (used by the consumer's slot selection —
    /// latching is intra-shard in the native layer).
    pub fn with_book<R>(&self, consumer: usize, f: impl FnOnce(&CoreManager) -> R) -> R {
        f(&self.shards[self.shard_of(consumer)].lock().book)
    }

    /// Number of slot deadlines that actually fired.
    pub fn slot_fires(&self) -> u64 {
        self.slot_fires.load(Ordering::Relaxed)
    }

    /// Signals the manager thread to exit after waking all waiters.
    pub fn shutdown(&self) {
        // Order matters: stop is set before the generation bump, so the
        // run loop — which re-checks stop under the arm lock after
        // validating its generation snapshot — can never park after
        // shutdown has begun.
        self.stop.store(true, Ordering::SeqCst);
        // Release buffer handles so the consumers' elastic buffers drop
        // (and return their pool units) once the pair handles go away.
        for sh in self.shards.iter() {
            sh.lock().buffers.clear();
        }
        self.bump();
    }

    /// One slot fire: steal the due list from every shard (round-robin
    /// cross-shard pass), then piggyback fullish neighbours across all
    /// shards while the core is awake anyway.
    fn dispatch(&self, slot: u64) {
        let mut due_ids: Vec<usize> = Vec::new();
        let mut wakers: Vec<Arc<Semaphore>> = Vec::new();
        for sh in self.shards.iter() {
            let mut st = sh.lock();
            for c in st.book.take_due(slot) {
                if let Some(w) = st.wakers.get(&c.0) {
                    wakers.push(Arc::clone(w));
                }
                due_ids.push(c.0);
            }
        }
        if !wakers.is_empty() {
            // The core is awake anyway: piggyback neighbours whose
            // batches are worth a dispatch.
            for sh in self.shards.iter() {
                let st = sh.lock();
                for (&other, buffer) in st.buffers.iter() {
                    if due_ids.contains(&other) {
                        continue;
                    }
                    let worth = buffer
                        .try_lock()
                        .map(|b| b.len() * 8 >= b.capacity() && !b.is_empty())
                        .unwrap_or(false);
                    if worth {
                        if let Some(w) = st.wakers.get(&other) {
                            wakers.push(Arc::clone(w));
                        }
                    }
                }
            }
            self.slot_fires.fetch_add(1, Ordering::Relaxed);
        }
        for w in wakers {
            w.release(1);
        }
    }

    /// The manager thread body: arm the earliest reserved slot across
    /// all shards, wait, and dispatch. Returns when
    /// [`NativeCoreManager::shutdown`] is called.
    pub fn run(self: &Arc<Self>) {
        loop {
            // Snapshot the generation, then scan. If anything bumps the
            // generation between snapshot and wait, the re-check below
            // sends us back around instead of parking on a stale scan.
            let snapshot = *self.arm.lock();
            let mut next: Option<u64> = None;
            for sh in self.shards.iter() {
                if let Some(s) = sh.lock().book.first_reserved() {
                    next = Some(next.map_or(s, |n| n.min(s)));
                }
            }
            let mut gen = self.arm.lock();
            if *gen != snapshot {
                continue;
            }
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            match next {
                None => {
                    // Nothing reserved: doze until a reservation arrives.
                    self.nudge.wait_for(&mut gen, Duration::from_millis(20));
                }
                Some(slot) => {
                    let deadline = self.clock.wall_deadline(self.track.slot_start(slot));
                    let timed_out = self.nudge.wait_until(&mut gen, deadline).timed_out();
                    if !timed_out {
                        // Nudged: a new (possibly earlier) reservation or
                        // shutdown; re-evaluate.
                        continue;
                    }
                    drop(gen);
                    self.dispatch(slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_sim::SimDuration;
    use std::thread;
    use std::time::Instant;

    fn track_ms(delta: u64) -> SlotTrack {
        SlotTrack::new(SimDuration::from_millis(delta))
    }

    #[test]
    fn fires_reserved_slot_and_wakes_consumer() {
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let sem = Arc::new(Semaphore::new(0));
        mgr.register(0, Arc::clone(&sem));
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        // Reserve slot 2 (t = 20ms).
        mgr.reserve(2, 0);
        let got = sem.acquire_timeout(Duration::from_millis(500));
        assert!(got.is_some(), "consumer must be woken at its slot");
        assert_eq!(mgr.slot_fires(), 1);
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn earlier_reservation_preempts_armed_slot() {
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let far = Arc::new(Semaphore::new(0));
        let near = Arc::new(Semaphore::new(0));
        mgr.register(0, Arc::clone(&far));
        mgr.register(1, Arc::clone(&near));
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        mgr.reserve(30, 0); // t = 300ms
        thread::sleep(Duration::from_millis(5));
        mgr.reserve(3, 1); // t = 30ms — earlier, must preempt
        let t0 = Instant::now();
        assert!(near.acquire_timeout(Duration::from_millis(500)).is_some());
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "near slot must fire promptly, not after the far one"
        );
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn group_wake_releases_all_due_consumers() {
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(5), clock);
        let sems: Vec<Arc<Semaphore>> = (0..3).map(|_| Arc::new(Semaphore::new(0))).collect();
        for (i, s) in sems.iter().enumerate() {
            mgr.register(i, Arc::clone(s));
        }
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        for i in 0..3 {
            mgr.reserve(4, i); // all latch slot 4 (t = 20ms)
        }
        for s in &sems {
            assert!(s.acquire_timeout(Duration::from_millis(500)).is_some());
        }
        assert_eq!(mgr.slot_fires(), 1, "one timer fire served all three");
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn sharded_group_wake_crosses_shards() {
        // Consumers 0..3 land on different shards (mod 3) yet one slot
        // fire must serve all of them — the cross-shard steal pass.
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new_sharded(track_ms(5), clock, 3);
        let sems: Vec<Arc<Semaphore>> = (0..3).map(|_| Arc::new(Semaphore::new(0))).collect();
        for (i, s) in sems.iter().enumerate() {
            mgr.register(i, Arc::clone(s));
        }
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        for i in 0..3 {
            mgr.reserve(4, i); // all latch slot 4 (t = 20ms)
        }
        for s in &sems {
            assert!(s.acquire_timeout(Duration::from_millis(500)).is_some());
        }
        assert_eq!(mgr.slot_fires(), 1, "one fire served all three shards");
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn sharded_earliest_slot_wins_across_shards() {
        // Shard 1 holds the earlier reservation; the run loop must arm
        // the global minimum, not shard 0's slot.
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new_sharded(track_ms(10), clock, 2);
        let far = Arc::new(Semaphore::new(0));
        let near = Arc::new(Semaphore::new(0));
        mgr.register(0, Arc::clone(&far)); // shard 0
        mgr.register(1, Arc::clone(&near)); // shard 1
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        mgr.reserve(40, 0); // t = 400ms, shard 0
        mgr.reserve(3, 1); // t = 30ms, shard 1 — must fire first
        let t0 = Instant::now();
        assert!(near.acquire_timeout(Duration::from_millis(500)).is_some());
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "shard 1's earlier slot must preempt shard 0's"
        );
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn slot_fire_piggybacks_fullish_neighbour() {
        use pc_queues::GlobalPool;
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let due_sem = Arc::new(Semaphore::new(0));
        let neighbour_sem = Arc::new(Semaphore::new(0));
        mgr.register(0, Arc::clone(&due_sem));
        mgr.register(1, Arc::clone(&neighbour_sem));
        // Neighbour 1 has a half-full buffer but its own reservation is
        // far away; the fire for consumer 0 must carry it along.
        let pool = GlobalPool::new(50);
        let buffer = Arc::new(Mutex::new(
            ElasticBuffer::<Instant>::new(Arc::clone(&pool), 25).unwrap(),
        ));
        for _ in 0..12 {
            buffer.lock().push(Instant::now()).unwrap();
        }
        mgr.register_buffer(1, Arc::clone(&buffer));
        mgr.reserve(2, 0); // fires at 20ms
        mgr.reserve(1000, 1); // far future
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        assert!(due_sem
            .acquire_timeout(Duration::from_millis(500))
            .is_some());
        assert!(
            neighbour_sem
                .acquire_timeout(Duration::from_millis(100))
                .is_some(),
            "fullish neighbour must be piggybacked on the same fire"
        );
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn empty_neighbour_is_not_piggybacked() {
        use pc_queues::GlobalPool;
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let due_sem = Arc::new(Semaphore::new(0));
        let neighbour_sem = Arc::new(Semaphore::new(0));
        mgr.register(0, Arc::clone(&due_sem));
        mgr.register(1, Arc::clone(&neighbour_sem));
        let pool = GlobalPool::new(50);
        let buffer = Arc::new(Mutex::new(
            ElasticBuffer::<Instant>::new(Arc::clone(&pool), 25).unwrap(),
        ));
        mgr.register_buffer(1, Arc::clone(&buffer));
        mgr.reserve(2, 0);
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        assert!(due_sem
            .acquire_timeout(Duration::from_millis(500))
            .is_some());
        assert!(
            neighbour_sem
                .acquire_timeout(Duration::from_millis(50))
                .is_none(),
            "an empty buffer is not worth a dispatch"
        );
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn shutdown_terminates_idle_manager() {
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        thread::sleep(Duration::from_millis(10));
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn shutdown_terminates_sharded_manager_with_pending_work() {
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new_sharded(track_ms(10), clock, 4);
        mgr.reserve(100_000, 2); // far-future reservation on shard 2
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        thread::sleep(Duration::from_millis(10));
        mgr.shutdown();
        runner.join().unwrap();
    }
}

//! The native PBPL core-manager thread (§V-B on real threads).
//!
//! One manager thread per (virtual) core owns a [`pc_core::CoreManager`]
//! reservation book and a single armed deadline: the earliest reserved
//! slot. Consumers reserve slots through the shared handle; if a new
//! reservation is earlier than the armed deadline the manager is nudged
//! through its condvar and re-arms — the same cancel/re-arm dance the
//! simulator's `ensure_scheduled` performs. At each slot deadline the
//! manager releases every due consumer's wake semaphore: one timer
//! expiry, many consumer invocations — group latching in the flesh.

use crate::clock::ReplayClock;
use parking_lot::{Condvar, Mutex};
use pc_core::{CoreManager, PairId, SlotTrack};
use pc_queues::{ElasticBuffer, Semaphore};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use std::time::Instant;

struct State {
    book: CoreManager,
    wakers: HashMap<usize, Arc<Semaphore>>,
    /// Consumers' buffers, for the piggyback occupancy check.
    buffers: HashMap<usize, Arc<Mutex<ElasticBuffer<Instant>>>>,
}

/// Shared handle to one core's slot-reservation manager.
pub struct NativeCoreManager {
    state: Mutex<State>,
    nudge: Condvar,
    clock: ReplayClock,
    stop: AtomicBool,
    slot_fires: AtomicU64,
}

impl NativeCoreManager {
    /// Creates a manager over `track`, pacing slots with `clock`.
    pub fn new(track: SlotTrack, clock: ReplayClock) -> Arc<Self> {
        Arc::new(NativeCoreManager {
            state: Mutex::new(State {
                book: CoreManager::new(track),
                wakers: HashMap::new(),
                buffers: HashMap::new(),
            }),
            nudge: Condvar::new(),
            clock,
            stop: AtomicBool::new(false),
            slot_fires: AtomicU64::new(0),
        })
    }

    /// Registers the semaphore a consumer waits on.
    pub fn register(&self, consumer: usize, waker: Arc<Semaphore>) {
        self.state.lock().wakers.insert(consumer, waker);
    }

    /// Registers the consumer's buffer so slot fires can piggyback
    /// neighbours with meaningful batches (§V-A group latching — same
    /// rule as the simulator: occupancy ≥ capacity/8).
    pub fn register_buffer(&self, consumer: usize, buffer: Arc<Mutex<ElasticBuffer<Instant>>>) {
        self.state.lock().buffers.insert(consumer, buffer);
    }

    /// Reserves `slot` for `consumer`, nudging the manager thread in case
    /// the new slot is earlier than the armed one.
    pub fn reserve(&self, slot: u64, consumer: usize) {
        let mut st = self.state.lock();
        st.book.reserve(slot, PairId(consumer));
        drop(st);
        self.nudge.notify_one();
    }

    /// Runs a read-only query against the reservation book (used by the
    /// consumer's slot selection).
    pub fn with_book<R>(&self, f: impl FnOnce(&CoreManager) -> R) -> R {
        f(&self.state.lock().book)
    }

    /// Number of slot deadlines that actually fired.
    pub fn slot_fires(&self) -> u64 {
        self.slot_fires.load(Ordering::Relaxed)
    }

    /// Signals the manager thread to exit after waking all waiters.
    pub fn shutdown(&self) {
        // Take the state lock before notifying: otherwise the notify can
        // land in the gap between the run loop's stop-check and its
        // condvar wait, leaving the manager blocked until its armed slot
        // deadline (arbitrarily far away) instead of exiting promptly.
        let mut guard = self.state.lock();
        self.stop.store(true, Ordering::SeqCst);
        // Release buffer handles so the consumers' elastic buffers drop
        // (and return their pool units) once the pair handles go away.
        guard.buffers.clear();
        drop(guard);
        self.nudge.notify_all();
    }

    /// The manager thread body: arm the earliest reserved slot, wait, and
    /// dispatch. Returns when [`NativeCoreManager::shutdown`] is called.
    pub fn run(self: &Arc<Self>) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            let mut st = self.state.lock();
            match st.book.first_reserved() {
                None => {
                    // Nothing reserved: doze until a reservation arrives.
                    self.nudge.wait_for(&mut st, Duration::from_millis(20));
                }
                Some(slot) => {
                    let deadline = self.clock.wall_deadline(st.book.track().slot_start(slot));
                    let timed_out = self.nudge.wait_until(&mut st, deadline).timed_out();
                    if !timed_out {
                        // Nudged: a new (possibly earlier) reservation or
                        // shutdown; re-evaluate.
                        continue;
                    }
                    let due = st.book.take_due(slot);
                    let mut wakers: Vec<Arc<Semaphore>> = due
                        .iter()
                        .filter_map(|c| st.wakers.get(&c.0).cloned())
                        .collect();
                    if !wakers.is_empty() {
                        // The core is awake anyway: piggyback neighbours
                        // whose batches are worth a dispatch.
                        for (&other, buffer) in st.buffers.iter() {
                            if due.iter().any(|c| c.0 == other) {
                                continue;
                            }
                            let worth = buffer
                                .try_lock()
                                .map(|b| b.len() * 8 >= b.capacity() && !b.is_empty())
                                .unwrap_or(false);
                            if worth {
                                if let Some(w) = st.wakers.get(&other) {
                                    wakers.push(Arc::clone(w));
                                }
                            }
                        }
                    }
                    drop(st);
                    if !wakers.is_empty() {
                        self.slot_fires.fetch_add(1, Ordering::Relaxed);
                    }
                    for w in wakers {
                        w.release(1);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_sim::SimDuration;
    use std::thread;
    use std::time::Instant;

    fn track_ms(delta: u64) -> SlotTrack {
        SlotTrack::new(SimDuration::from_millis(delta))
    }

    #[test]
    fn fires_reserved_slot_and_wakes_consumer() {
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let sem = Arc::new(Semaphore::new(0));
        mgr.register(0, Arc::clone(&sem));
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        // Reserve slot 2 (t = 20ms).
        mgr.reserve(2, 0);
        let got = sem.acquire_timeout(Duration::from_millis(500));
        assert!(got.is_some(), "consumer must be woken at its slot");
        assert_eq!(mgr.slot_fires(), 1);
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn earlier_reservation_preempts_armed_slot() {
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let far = Arc::new(Semaphore::new(0));
        let near = Arc::new(Semaphore::new(0));
        mgr.register(0, Arc::clone(&far));
        mgr.register(1, Arc::clone(&near));
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        mgr.reserve(30, 0); // t = 300ms
        thread::sleep(Duration::from_millis(5));
        mgr.reserve(3, 1); // t = 30ms — earlier, must preempt
        let t0 = Instant::now();
        assert!(near.acquire_timeout(Duration::from_millis(500)).is_some());
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "near slot must fire promptly, not after the far one"
        );
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn group_wake_releases_all_due_consumers() {
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(5), clock);
        let sems: Vec<Arc<Semaphore>> = (0..3).map(|_| Arc::new(Semaphore::new(0))).collect();
        for (i, s) in sems.iter().enumerate() {
            mgr.register(i, Arc::clone(s));
        }
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        for i in 0..3 {
            mgr.reserve(4, i); // all latch slot 4 (t = 20ms)
        }
        for s in &sems {
            assert!(s.acquire_timeout(Duration::from_millis(500)).is_some());
        }
        assert_eq!(mgr.slot_fires(), 1, "one timer fire served all three");
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn slot_fire_piggybacks_fullish_neighbour() {
        use pc_queues::GlobalPool;
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let due_sem = Arc::new(Semaphore::new(0));
        let neighbour_sem = Arc::new(Semaphore::new(0));
        mgr.register(0, Arc::clone(&due_sem));
        mgr.register(1, Arc::clone(&neighbour_sem));
        // Neighbour 1 has a half-full buffer but its own reservation is
        // far away; the fire for consumer 0 must carry it along.
        let pool = GlobalPool::new(50);
        let buffer = Arc::new(Mutex::new(
            ElasticBuffer::<Instant>::new(Arc::clone(&pool), 25).unwrap(),
        ));
        for _ in 0..12 {
            buffer.lock().push(Instant::now()).unwrap();
        }
        mgr.register_buffer(1, Arc::clone(&buffer));
        mgr.reserve(2, 0); // fires at 20ms
        mgr.reserve(1000, 1); // far future
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        assert!(due_sem
            .acquire_timeout(Duration::from_millis(500))
            .is_some());
        assert!(
            neighbour_sem
                .acquire_timeout(Duration::from_millis(100))
                .is_some(),
            "fullish neighbour must be piggybacked on the same fire"
        );
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn empty_neighbour_is_not_piggybacked() {
        use pc_queues::GlobalPool;
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let due_sem = Arc::new(Semaphore::new(0));
        let neighbour_sem = Arc::new(Semaphore::new(0));
        mgr.register(0, Arc::clone(&due_sem));
        mgr.register(1, Arc::clone(&neighbour_sem));
        let pool = GlobalPool::new(50);
        let buffer = Arc::new(Mutex::new(
            ElasticBuffer::<Instant>::new(Arc::clone(&pool), 25).unwrap(),
        ));
        mgr.register_buffer(1, Arc::clone(&buffer));
        mgr.reserve(2, 0);
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        assert!(due_sem
            .acquire_timeout(Duration::from_millis(500))
            .is_some());
        assert!(
            neighbour_sem
                .acquire_timeout(Duration::from_millis(50))
                .is_none(),
            "an empty buffer is not worth a dispatch"
        );
        mgr.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn shutdown_terminates_idle_manager() {
        let clock = ReplayClock::start(1.0);
        let mgr = NativeCoreManager::new(track_ms(10), clock);
        let runner = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.run())
        };
        thread::sleep(Duration::from_millis(10));
        mgr.shutdown();
        runner.join().unwrap();
    }
}

//! Wakeup and usage instrumentation for native strategy threads.
//!
//! The paper measures its software metrics with PowerTop: *wakeups/s*
//! (how often a process's thread goes from blocked to runnable) and
//! *usage ms/s*. Native threads can count both directly: every blocking
//! primitive in `pc-queues` reports whether a call actually blocked — one
//! genuine sleep/wake cycle — and a [`UsageTimer`] accumulates busy time
//! around each drain.

use pc_sim::SimDuration;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Shared counters for one producer-consumer pair. All methods are
/// callable from any thread.
#[derive(Debug, Default)]
pub struct PairCounters {
    items_produced: AtomicU64,
    items_consumed: AtomicU64,
    /// Consumer thread blocked→runnable transitions.
    wakeups: AtomicU64,
    /// Consumer invocations (wake sessions / batch drains).
    invocations: AtomicU64,
    /// Invocations triggered by a scheduled timer or slot.
    scheduled: AtomicU64,
    /// Invocations forced by a full buffer.
    overflows: AtomicU64,
    /// Nanoseconds of consumer busy time.
    busy_ns: AtomicU64,
    /// Sum of item latencies, nanoseconds.
    latency_sum_ns: AtomicU64,
    /// Maximum item latency, nanoseconds.
    latency_max_ns: AtomicU64,
    /// Items refused by admission control (overload shedding,
    /// DESIGN.md §15). Zero unless a strategy sheds.
    items_shed: AtomicU64,
    /// Overload windows opened on this pair (admission trips).
    overload_windows: AtomicU64,
}

impl PairCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records items emitted by the producer.
    pub fn add_produced(&self, n: u64) {
        self.items_produced.fetch_add(n, Ordering::Relaxed);
    }

    /// Records items drained by the consumer.
    pub fn add_consumed(&self, n: u64) {
        self.items_consumed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one consumer thread wakeup.
    pub fn add_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one invocation, classified like the paper's §VI metrics.
    pub fn add_invocation(&self, scheduled: bool, overflow: bool) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        if scheduled {
            self.scheduled.fetch_add(1, Ordering::Relaxed);
        }
        if overflow {
            self.overflows.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records items refused by admission control.
    pub fn add_shed(&self, n: u64) {
        self.items_shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one admission trip (an overload window opening).
    pub fn add_overload_window(&self) {
        self.overload_windows.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one item's latency.
    pub fn add_latency(&self, produced_at: Instant, consumed_at: Instant) {
        let ns = consumed_at
            .saturating_duration_since(produced_at)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        self.latency_sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.latency_max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Starts a busy-time measurement; accumulated on drop.
    pub fn busy_timer(&self) -> UsageTimer<'_> {
        UsageTimer {
            sink: &self.busy_ns,
            start: Instant::now(),
        }
    }

    /// A consistent snapshot (relaxed reads; exact once threads joined).
    pub fn snapshot(&self) -> PairStats {
        PairStats {
            items_produced: self.items_produced.load(Ordering::Relaxed),
            items_consumed: self.items_consumed.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            invocations: self.invocations.load(Ordering::Relaxed),
            scheduled: self.scheduled.load(Ordering::Relaxed),
            overflows: self.overflows.load(Ordering::Relaxed),
            busy: SimDuration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
            latency_sum: SimDuration::from_nanos(self.latency_sum_ns.load(Ordering::Relaxed)),
            latency_max: SimDuration::from_nanos(self.latency_max_ns.load(Ordering::Relaxed)),
            items_shed: self.items_shed.load(Ordering::Relaxed),
            overload_windows: self.overload_windows.load(Ordering::Relaxed),
        }
    }
}

/// RAII busy-time accumulator from [`PairCounters::busy_timer`].
pub struct UsageTimer<'a> {
    sink: &'a AtomicU64,
    start: Instant,
}

impl Drop for UsageTimer<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.sink.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Snapshot of one pair's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairStats {
    /// Items the producer emitted.
    pub items_produced: u64,
    /// Items the consumer drained.
    pub items_consumed: u64,
    /// Consumer thread wakeups.
    pub wakeups: u64,
    /// Consumer invocations.
    pub invocations: u64,
    /// Scheduled (timer/slot) invocations.
    pub scheduled: u64,
    /// Overflow-forced invocations.
    pub overflows: u64,
    /// Total consumer busy time.
    pub busy: SimDuration,
    /// Sum of item latencies.
    pub latency_sum: SimDuration,
    /// Worst item latency.
    pub latency_max: SimDuration,
    /// Items refused by admission control (zero unless shedding).
    pub items_shed: u64,
    /// Overload windows opened (admission trips).
    pub overload_windows: u64,
}

impl PairStats {
    /// Mean item latency.
    pub fn mean_latency(&self) -> SimDuration {
        if self.items_consumed == 0 {
            SimDuration::ZERO
        } else {
            self.latency_sum / self.items_consumed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_accumulate() {
        let c = PairCounters::new();
        c.add_produced(10);
        c.add_consumed(7);
        c.add_wakeup();
        c.add_invocation(true, false);
        c.add_invocation(false, true);
        let s = c.snapshot();
        assert_eq!(s.items_produced, 10);
        assert_eq!(s.items_consumed, 7);
        assert_eq!(s.wakeups, 1);
        assert_eq!(s.invocations, 2);
        assert_eq!(s.scheduled, 1);
        assert_eq!(s.overflows, 1);
    }

    #[test]
    fn shed_and_admission_counters_accumulate() {
        let c = PairCounters::new();
        assert_eq!(c.snapshot().items_shed, 0);
        assert_eq!(c.snapshot().overload_windows, 0);
        c.add_shed(3);
        c.add_shed(2);
        c.add_overload_window();
        let s = c.snapshot();
        assert_eq!(s.items_shed, 5);
        assert_eq!(s.overload_windows, 1);
    }

    #[test]
    fn busy_timer_measures() {
        let c = PairCounters::new();
        {
            let _t = c.busy_timer();
            std::thread::sleep(Duration::from_millis(5));
        }
        let busy = c.snapshot().busy;
        assert!(busy >= SimDuration::from_millis(4), "busy {busy}");
    }

    #[test]
    fn latency_tracks_sum_and_max() {
        let c = PairCounters::new();
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_micros(100);
        let t2 = t0 + Duration::from_micros(300);
        c.add_latency(t0, t1);
        c.add_latency(t0, t2);
        c.add_consumed(2);
        let s = c.snapshot();
        assert_eq!(s.mean_latency(), SimDuration::from_micros(200));
        assert_eq!(s.latency_max, SimDuration::from_micros(300));
    }

    #[test]
    fn reversed_latency_clamps_to_zero() {
        let c = PairCounters::new();
        let t0 = Instant::now();
        c.add_latency(t0 + Duration::from_millis(1), t0);
        assert_eq!(c.snapshot().latency_sum, SimDuration::ZERO);
    }

    #[test]
    fn concurrent_updates_sum() {
        let c = std::sync::Arc::new(PairCounters::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.add_produced(1);
                    c.add_wakeup();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.items_produced, 40_000);
        assert_eq!(s.wakeups, 40_000);
    }
}
